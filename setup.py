"""Packaging metadata.

Kept in setup.py (not [project] in pyproject.toml) because the offline
execution environment lacks the `wheel` package: with a [project] table,
pip insists on the PEP 517 path and fails at `bdist_wheel`. The legacy
`setup.py develop` path works with plain setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "BLEND: A Unified Data Discovery System - full Python reproduction (ICDE 2025)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
