"""JOSIE and MATE baselines: correctness against exact ground truth and
the Table V precision relationship."""

import pytest

from repro import Blend
from repro.baselines import JosieIndex, MateIndex
from repro.lake.generators import (
    make_join_benchmark,
    make_multicolumn_benchmark,
)


@pytest.fixture(scope="module")
def join_bench():
    return make_join_benchmark(num_tables=30, query_sizes=(5, 30), queries_per_size=3)


@pytest.fixture(scope="module")
def josie(join_bench):
    return JosieIndex(join_bench.lake)


@pytest.fixture(scope="module")
def mc_bench():
    return make_multicolumn_benchmark(num_queries=3, distractor_tables=8)


@pytest.fixture(scope="module")
def mate(mc_bench):
    return MateIndex(mc_bench.lake)


class TestJosie:
    def test_matches_exact_ground_truth(self, join_bench, josie):
        for query in join_bench.queries:
            assert (
                josie.search(list(query.values), k=10).table_ids()
                == join_bench.ground_truth(query, 10)
            )

    def test_matches_blend_sc_seeker(self, join_bench, josie):
        """Fig. 6: 'BLEND and Josie achieve the same results as their
        outputs are identical'."""
        blend = Blend(join_bench.lake, backend="column")
        blend.build_index()
        for query in join_bench.queries[:4]:
            assert (
                josie.search(list(query.values), k=10).table_ids()
                == blend.join_search(query.values, k=10).table_ids()
            )

    def test_scores_are_overlaps(self, join_bench, josie):
        query = join_bench.queries[0]
        result = josie.search(list(query.values), k=5)
        overlaps = dict(join_bench.exact_overlaps(query))
        for hit in result:
            assert hit.score == overlaps[hit.table_id]

    def test_unknown_values_empty(self, josie):
        assert len(josie.search(["no-such-token-anywhere"], k=5)) == 0

    def test_stats_populated(self, join_bench, josie):
        josie.search(list(join_bench.queries[0].values), k=5)
        assert josie.last_stats.tokens_processed > 0
        assert josie.last_stats.postings_scanned > 0

    def test_storage_positive(self, josie):
        assert josie.storage_bytes() > 0


class TestMate:
    def test_finds_aligned_tables(self, mc_bench, mate):
        query = mc_bench.queries[0]
        result = mate.search(query.table.rows, k=10)
        aligned = {
            mc_bench.lake.id_of(f"mc_bench_q0_aligned{i}") for i in range(3)
        }
        assert aligned <= set(result.table_ids())

    def test_recall_100_percent_vs_blend(self, mc_bench, mate):
        """Both systems must find every truly joinable table (Table V:
        'Recall for both approaches is 100 % due to bloom filter
        character')."""
        blend = Blend(mc_bench.lake, backend="column")
        blend.build_index()
        for query in mc_bench.queries:
            truly_joinable = {
                table_id
                for table_id in mc_bench.lake.table_ids()
                if mc_bench.joinable_rows(query, table_id) > 0
            }
            mate_ids = set(mate.search(query.table.rows, k=100).table_ids())
            blend_ids = set(
                blend.multi_column_join_search(query.table.rows, k=100).table_ids()
            )
            assert truly_joinable <= mate_ids
            assert truly_joinable <= blend_ids

    def test_mate_has_more_false_positives_than_blend(self, mc_bench, mate):
        """The Table V relationship: BLEND's SQL join prunes candidates
        that MATE's single-column fetch admits."""
        blend = Blend(mc_bench.lake, backend="column")
        blend.build_index()
        mate_fp = 0
        blend_fp = 0
        for query in mc_bench.queries:
            mate.search(query.table.rows, k=10)
            mate_fp += mate.last_stats.false_positives

            from repro.core.seekers import MultiColumnSeeker

            seeker = MultiColumnSeeker(query.table.rows, k=10)
            context = blend.context()
            candidates = seeker.fetch_candidates(context)
            filtered = seeker.superkey_filter(candidates, context)
            validated = set(seeker.validate(filtered, context))
            blend_fp += len([c for c in filtered if c not in validated])
        assert mate_fp > blend_fp

    def test_counts_joinable_rows(self, mc_bench, mate):
        query = mc_bench.queries[0]
        result = mate.search(query.table.rows, k=10)
        for hit in result:
            assert hit.score == mc_bench.joinable_rows(query, hit.table_id)

    def test_storage_positive(self, mate):
        assert mate.storage_bytes() > 0
