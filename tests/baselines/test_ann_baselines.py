"""Embeddings, HNSW, Starmie, and DeepJoin baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DeepJoinIndex,
    HnswIndex,
    StarmieIndex,
    cosine_similarity,
    embed_tokens,
    embed_values,
)
from repro.lake.generators import make_join_benchmark, make_union_benchmark


class TestEmbeddings:
    def test_deterministic(self):
        a = embed_tokens(["berlin", "hannover"])
        b = embed_tokens(["berlin", "hannover"])
        assert np.allclose(a, b)

    def test_unit_norm(self):
        vector = embed_tokens(["x", "y", "z"])
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert not np.any(embed_tokens([]))

    def test_order_invariant(self):
        assert np.allclose(embed_tokens(["a", "b"]), embed_tokens(["b", "a"]))

    def test_similar_bags_are_close(self):
        base = embed_tokens([f"token{i}" for i in range(20)])
        near = embed_tokens([f"token{i}" for i in range(18)] + ["other", "thing"])
        far = embed_tokens([f"zz{i}" for i in range(20)])
        assert cosine_similarity(base, near) > cosine_similarity(base, far)

    def test_trigram_component_gives_soft_similarity(self):
        """Morphologically close vocabularies embed closer than unrelated
        ones even with zero exact token overlap."""
        a = embed_tokens(["customer_1", "customer_2", "customer_3"])
        b = embed_tokens(["customer_4", "customer_5", "customer_6"])
        c = embed_tokens(["xq9", "zw7", "kv3"])
        assert cosine_similarity(a, b) > cosine_similarity(a, c)

    def test_embed_values_normalises_cells(self):
        assert np.allclose(embed_values(["Berlin ", None]), embed_tokens(["berlin"]))


class TestHnsw:
    def _random_vectors(self, n, dims=16, seed=0):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(n, dims))
        return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)

    def test_exact_on_small_sets(self):
        vectors = self._random_vectors(30)
        index = HnswIndex(16, m=8, ef_construction=64)
        for i, vector in enumerate(vectors):
            index.add(i, vector)
        query = vectors[7]
        hits = index.search(query, k=1, ef=64)
        assert hits[0][0] == 7
        assert hits[0][1] == pytest.approx(1.0)

    def test_high_recall_vs_brute_force(self):
        vectors = self._random_vectors(300, seed=2)
        index = HnswIndex(16, m=12, ef_construction=100, seed=1)
        for i, vector in enumerate(vectors):
            index.add(i, vector)
        rng = np.random.default_rng(5)
        recalls = []
        for _ in range(20):
            query = rng.normal(size=16)
            query /= np.linalg.norm(query)
            truth = np.argsort(-vectors @ query)[:10]
            found = {key for key, _ in index.search(query, k=10, ef=120)}
            recalls.append(len(found & set(truth)) / 10)
        assert np.mean(recalls) >= 0.8

    def test_empty_index(self):
        assert HnswIndex(8).search(np.zeros(8), k=3) == []

    def test_wrong_dimension_rejected(self):
        index = HnswIndex(8)
        with pytest.raises(ValueError):
            index.add(0, np.zeros(4))

    def test_bad_m_rejected(self):
        with pytest.raises(ValueError):
            HnswIndex(8, m=1)

    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_search_returns_k_when_available(self, seed):
        vectors = self._random_vectors(50, seed=seed)
        index = HnswIndex(16, m=8, seed=seed)
        for i, vector in enumerate(vectors):
            index.add(i, vector)
        hits = index.search(vectors[0], k=5)
        assert len(hits) == 5
        similarities = [s for _, s in hits]
        assert similarities == sorted(similarities, reverse=True)

    def test_storage_positive(self):
        index = HnswIndex(8)
        index.add(0, np.ones(8) / np.sqrt(8))
        assert index.storage_bytes() > 0


class TestStarmie:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_union_benchmark(num_seeds=4, partitions_per_seed=3, distractor_tables=8)

    @pytest.fixture(scope="class")
    def starmie(self, bench):
        return StarmieIndex(bench.lake)

    def test_family_members_rank_first(self, bench, starmie):
        hits_at_2 = 0
        for query_name in bench.queries:
            query_table = bench.lake.by_name(query_name)
            result = starmie.search(
                query_table, k=4, exclude_table_id=bench.lake.id_of(query_name)
            )
            truth = bench.ground_truth(query_name)
            hits_at_2 += len(set(result.table_ids()[:2]) & truth)
        assert hits_at_2 >= len(bench.queries)  # at least half the slots

    def test_exclude_self(self, bench, starmie):
        query_name = bench.queries[0]
        result = starmie.search(
            bench.lake.by_name(query_name),
            k=10,
            exclude_table_id=bench.lake.id_of(query_name),
        )
        assert bench.lake.id_of(query_name) not in result.table_ids()

    def test_scores_descending(self, bench, starmie):
        result = starmie.search(bench.lake.by_name(bench.queries[0]), k=10)
        scores = [hit.score for hit in result]
        assert scores == sorted(scores, reverse=True)

    def test_storage_positive(self, starmie):
        assert starmie.storage_bytes() > 0


class TestDeepJoin:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_join_benchmark(num_tables=25, query_sizes=(10, 30), queries_per_size=3)

    @pytest.fixture(scope="class")
    def deepjoin(self, bench):
        return DeepJoinIndex(bench.lake)

    def test_reasonable_overlap_with_ground_truth(self, bench, deepjoin):
        """DeepJoin is approximate+semantic: expect solid but not perfect
        agreement with exact overlap ranking."""
        overlap = 0
        total = 0
        for query in bench.queries:
            truth = set(bench.ground_truth(query, 10))
            found = set(deepjoin.search(list(query.values), k=10).table_ids())
            overlap += len(truth & found)
            total += min(len(truth), 10)
        assert overlap / total >= 0.4

    def test_empty_query(self, deepjoin):
        assert len(deepjoin.search([None], k=5)) == 0

    def test_storage_positive(self, deepjoin):
        assert deepjoin.storage_bytes() > 0
