"""QCR sketch baseline and the federated Table III pipelines."""

import pytest

from repro import Blend
from repro.baselines import (
    JosieIndex,
    MateIndex,
    QcrIndex,
    imputation_baseline,
    loc_of,
    negative_examples_baseline,
)
from repro.baselines.federation import TASK_PROFILES
from repro.lake.generators import (
    make_correlation_benchmark,
    make_imputation_benchmark,
)


@pytest.fixture(scope="module")
def corr_bench():
    return make_correlation_benchmark(
        num_queries=3, num_entities=60, tables_per_query=5, rows_per_table=50,
        distractor_tables=5,
    )


@pytest.fixture(scope="module")
def qcr(corr_bench):
    return QcrIndex(corr_bench.lake, h=128)


class TestQcrBaseline:
    def test_finds_planted_correlations(self, corr_bench, qcr):
        query = corr_bench.queries[0]
        truth = set(corr_bench.ground_truth(query, 5))
        found = set(qcr.search(list(query.keys), list(query.targets), k=5).table_ids())
        assert len(truth & found) >= 3

    def test_numeric_keys_unsupported(self, qcr):
        """The paper's stated limitation: numeric join keys break the
        categorical-only sketch."""
        result = qcr.search([1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0], k=5)
        assert len(result) == 0

    def test_mismatched_inputs_rejected(self, qcr):
        with pytest.raises(ValueError):
            qcr.search(["a"], [1.0, 2.0], k=5)

    def test_non_numeric_targets_empty(self, qcr):
        assert len(qcr.search(["a", "b"], ["x", "y"], k=5)) == 0

    def test_bad_h_rejected(self, corr_bench):
        with pytest.raises(ValueError):
            QcrIndex(corr_bench.lake, h=0)

    def test_sketch_count_is_quadratic_per_table(self, corr_bench, qcr):
        """One sketch per (categorical, numeric) column pair -- the
        storage blow-up BLEND's Quadrant column avoids."""
        expected = 0
        for table in corr_bench.lake:
            flags = table.numeric_columns()
            categorical = sum(1 for f in flags if not f)
            numeric = sum(1 for f in flags if f)
            expected += categorical * numeric
        assert qcr.num_sketches <= expected
        assert qcr.num_sketches > 0

    def test_blend_beats_qcr_on_numeric_keys(self):
        """Table VII's NYC (All) effect in miniature."""
        bench = make_correlation_benchmark(
            num_queries=4, num_entities=50, rows_per_table=40,
            key_regime="mixed", distractor_tables=3,
        )
        qcr_index = QcrIndex(bench.lake, h=128)
        blend = Blend(bench.lake, backend="column")
        blend.build_index()
        numeric_queries = [q for q in bench.queries if q.key_is_numeric]
        assert numeric_queries
        for query in numeric_queries:
            truth = set(bench.ground_truth(query, 5))
            qcr_found = set(
                qcr_index.search(list(query.keys), list(query.targets), k=5).table_ids()
            )
            blend_found = set(
                blend.correlation_search(
                    list(query.keys), list(query.targets), k=5, h=256
                ).table_ids()
            )
            assert len(blend_found & truth) > len(qcr_found & truth)

    def test_storage_positive(self, qcr):
        assert qcr.storage_bytes() > 0


class TestFederationPipelines:
    @pytest.fixture(scope="class")
    def impute_bench(self):
        return make_imputation_benchmark(num_queries=2, distractor_tables=6)

    def test_imputation_baseline_finds_complete_tables(self, impute_bench):
        mate = MateIndex(impute_bench.lake)
        josie = JosieIndex(impute_bench.lake)
        query = impute_bench.queries[0]
        result = imputation_baseline(
            mate, josie, list(query.examples), list(query.query_keys), k=10
        )
        truth = impute_bench.ground_truth(query)
        assert truth <= set(result.table_ids())

    def test_imputation_baseline_matches_blend_plan(self, impute_bench):
        from repro.core.tasks import imputation_plan

        mate = MateIndex(impute_bench.lake)
        josie = JosieIndex(impute_bench.lake)
        blend = Blend(impute_bench.lake, backend="column")
        blend.build_index()
        query = impute_bench.queries[0]
        baseline_ids = set(
            imputation_baseline(
                mate, josie, list(query.examples), list(query.query_keys), k=10
            ).table_ids()
        )
        blend_ids = set(
            blend.run(imputation_plan(list(query.examples), list(query.query_keys), k=10))
            .output.table_ids()
        )
        truth = impute_bench.ground_truth(query)
        assert truth <= baseline_ids
        assert truth <= blend_ids

    def test_negative_examples_baseline_drops_contaminated(self, impute_bench):
        """Using imputation lake tables: positive examples from the full
        mapping, negatives chosen from one specific table."""
        mate = MateIndex(impute_bench.lake)
        query = impute_bench.queries[0]
        positive = list(query.examples)
        # Negative examples: pairs that exist in ALL full tables -> every
        # full table is contaminated and must be excluded.
        negative = [(query.query_keys[0], query.answers[0])]
        result = negative_examples_baseline(
            mate, impute_bench.lake, positive, negative, k=10
        )
        for copy in range(3):
            full_id = impute_bench.lake.id_of(f"impute_bench_q0_full{copy}")
            assert full_id not in result.table_ids()

    def test_loc_counts_effective_lines(self):
        def tiny():
            """Docstring is not counted."""
            # neither are comments
            return 1

        assert loc_of(tiny) == 2  # def line + return line

    def test_blend_plans_are_much_shorter(self):
        """The Table III LOC relationship, measured on real source."""
        from repro.core import tasks

        blend_loc = loc_of(tasks.negative_examples_plan)
        baseline_loc = loc_of(negative_examples_baseline)
        assert baseline_loc > 2 * blend_loc

    def test_task_profiles_cover_all_tasks(self):
        assert set(TASK_PROFILES) == {
            "negative_examples",
            "imputation",
            "feature_discovery",
            "multi_objective",
        }
        for profile in TASK_PROFILES.values():
            assert profile.blend_systems == 1
            assert profile.blend_indexes == "Single"
            assert profile.baseline_indexes == "Multi"
