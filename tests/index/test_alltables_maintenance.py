"""Randomized lifecycle property suite for index maintenance.

The headline invariant of the mutable-lake refactor: after ANY
interleaving of ``add_table`` / ``remove_table`` / ``replace_table``,

* every seeker (SC / KW / MC / correlation) returns results identical to
  a from-scratch ``build_alltables`` over the final lake state, on both
  storage backends and both hash widths, and
* after compaction, the stored ``AllTables`` relation is byte-identical
  to the fresh build (same sealed arrays / rows, same re-encoded text
  dictionaries, same index postings),

plus the guard rails around it: stale contexts raise
``StaleContextError`` instead of silently serving dead table ids,
threshold deletes auto-compact, ``shuffle_rows`` (BLEND (rand)) configs
are maintainable via the per-table seeded permutation, and the scalar
maintenance path agrees with the vectorised one.
"""

import random

import pytest

from repro import Blend
from repro.core.seekers import SeekerContext, Seekers
from repro.engine import Database
from repro.engine.storage.column_store import ColumnTable
from repro.errors import IndexingError, LakeError, StaleContextError
from repro.index import IndexConfig, build_alltables, deindex_table, index_table, reindex_table
from repro.index.stats import LakeStatistics
from repro.lake import DataLake, Table
from repro.lake.generators import CorpusConfig, generate_corpus


def _base_lake(seed: int):
    return generate_corpus(
        CorpusConfig(
            name=f"maint{seed}", num_tables=16, min_rows=6, max_rows=24, seed=seed
        )
    )


def _random_table(rng: random.Random, name: str) -> Table:
    """A small mixed-type table (text keys, numeric column, some NULLs
    and bool/int-duality hazards)."""
    num_rows = rng.randint(3, 12)
    rows = []
    for i in range(num_rows):
        key = f"k{rng.randint(0, 30)}"
        num = rng.choice([rng.randint(0, 50), rng.random() * 10, 0, 1, None])
        extra = rng.choice(["shared", "x", True, False, None, f"tok{rng.randint(0, 9)}"])
        rows.append((key, num, extra))
    return Table(name, ["key", "num", "extra"], rows)


def _mutate(blend: Blend, rng: random.Random, ops: int, tag: str) -> None:
    """Apply a random interleaving of lifecycle operations."""
    counter = 0
    for _ in range(ops):
        live = blend.lake.table_ids()
        op = rng.choice(["add", "remove", "replace"])
        if op == "add" or len(live) <= 4:
            counter += 1
            blend.add_table(_random_table(rng, f"{tag}_add{counter}"))
        elif op == "remove":
            blend.remove_table(rng.choice(live))
        else:
            counter += 1
            blend.replace_table(
                rng.choice(live), _random_table(rng, f"{tag}_repl{counter}")
            )


def _query_seekers(lake):
    """One seeker per template, built from a surviving lake table."""
    table = lake.by_id(lake.table_ids()[0])
    values = [v for v in table.column_values(table.columns[0]) if v is not None]
    seekers = {
        "SC": Seekers.SC(values[:8], k=10),
        "KW": Seekers.KW(values[:8], k=10),
    }
    wide = [r[:2] for r in table.rows if all(v is not None for v in r[:2])]
    if table.num_columns >= 2 and len(wide) >= 2:
        seekers["MC"] = Seekers.MC(wide[:6], k=10)
    flags = table.numeric_columns()
    if any(flags) and not all(flags):
        seekers["C"] = Seekers.Correlation(
            table.column_values(table.columns[flags.index(False)]),
            table.column_values(table.columns[flags.index(True)]),
            k=10,
            min_support=2,
        )
    return seekers


def _results(context, seekers) -> dict:
    return {
        kind: [(hit.table_id, hit.score) for hit in seeker.execute(context)]
        for kind, seeker in seekers.items()
    }


def _column_storage_state(table: ColumnTable) -> list[tuple]:
    """Byte-level fingerprint of a column table's sealed storage."""
    state = []
    for column in table._seal():
        state.append(
            (
                None if column.codes is None else (column.codes.dtype.str, column.codes.tolist()),
                None if column.dictionary is None else list(column.dictionary),
                None if column.data is None else (column.data.dtype.str, column.data.tolist()),
                None if column.null is None else column.null.tolist(),
            )
        )
    return state


def _index_state(db: Database, table_name: str, columns) -> dict:
    """Materialised secondary-index postings, forced fresh."""
    table = db.table(table_name)
    state = {}
    for column in columns:
        table.index_lookup(column, [])  # forces lazy materialisation
        postings = table._indexes[column.lower()]
        state[column] = {
            value: list(positions) for value, positions in postings.items()
        }
    return state


@pytest.mark.parametrize(
    "backend,hash_size,shuffle",
    [
        ("row", 63, False),
        ("row", 128, False),
        ("column", 63, False),
        # BLEND (rand): the per-table seeded permutation makes shuffled
        # configs maintainable -- same invariant, shuffled RowIds.
        ("row", 128, True),
        ("column", 63, True),
    ],
)
@pytest.mark.parametrize("seed", [11, 47])
def test_lifecycle_rebuild_parity(backend, hash_size, shuffle, seed):
    """Random add/remove/replace sequences preserve seeker parity with a
    from-scratch build; post-compaction storage is byte-identical."""
    rng = random.Random(seed * 1000 + hash_size)
    config = IndexConfig(hash_size=hash_size, shuffle_rows=shuffle, shuffle_seed=5)
    blend = Blend(_base_lake(seed), backend=backend, index_config=config)
    blend.build_index()
    stale_context = blend.context()

    _mutate(blend, rng, ops=10, tag=f"{backend}{hash_size}s{seed}")

    # Stale contexts must refuse, not silently serve dead ids.
    seekers = _query_seekers(blend.lake)
    with pytest.raises(StaleContextError):
        next(iter(seekers.values())).execute(stale_context)

    # From-scratch build over the final lake state.
    fresh_db = Database(backend=backend)
    build_alltables(blend.lake, fresh_db, config)
    fresh_context = SeekerContext(
        db=fresh_db, lake=blend.lake, hash_size=hash_size
    )

    maintained = _results(blend.context(), seekers)
    rebuilt = _results(fresh_context, seekers)
    assert maintained == rebuilt

    # Same logical row SET even before compaction...
    sql = "SELECT * FROM AllTables"
    assert sorted(blend.db.execute(sql).rows) == sorted(fresh_db.execute(sql).rows)

    # ...and byte-identical storage after it.
    blend.compact_index()
    assert blend.db.execute(sql).rows == fresh_db.execute(sql).rows
    if backend == "column":
        assert _column_storage_state(blend.db.table("AllTables")) == (
            _column_storage_state(fresh_db.table("AllTables"))
        )
    else:
        assert blend.db.table("AllTables")._rows == fresh_db.table("AllTables")._rows
    assert _index_state(blend.db, "AllTables", ["CellValue", "TableId"]) == (
        _index_state(fresh_db, "AllTables", ["CellValue", "TableId"])
    )

    # Statistics stayed exact through the whole interleaving.
    fresh_stats = LakeStatistics.from_lake(blend.lake)
    assert blend.stats == fresh_stats


@pytest.mark.parametrize("backend", ["row", "column"])
def test_scalar_maintenance_path_agrees(backend):
    """IndexConfig(vectorized=False) maintenance produces the same
    AllTables row set as the vectorised path."""
    results = {}
    for vectorized in (True, False):
        config = IndexConfig(vectorized=vectorized)
        blend = Blend(_base_lake(3), backend=backend, index_config=config)
        blend.build_index()
        rng = random.Random(99)
        _mutate(blend, rng, ops=6, tag=f"sv{vectorized}")
        results[vectorized] = sorted(
            blend.db.execute("SELECT * FROM AllTables").rows
        )
    assert results[True] == results[False]


def test_threshold_deletes_auto_compact():
    """Removing most tables crosses the dead-row threshold and compacts
    without an explicit compact_index() call."""
    lake = DataLake("auto")
    for i in range(6):
        lake.add(Table(f"t{i}", ["a"], [(f"v{i}_{j}",) for j in range(10)]))
    blend = Blend(lake, backend="column")
    blend.build_index()
    storage = blend.db.table("AllTables")
    assert storage.compactions == 0
    for table_id in range(4):
        blend.remove_table(table_id)
    assert storage.compactions >= 1
    assert storage._deleted is None  # tombstones physically gone
    assert blend.db.num_rows("AllTables") == 20


def test_remove_leaves_other_super_keys_untouched():
    """Deindexing one table must not alter any other table's rows."""
    lake = DataLake("keys")
    lake.add(Table("a", ["x", "y"], [("p", 1), ("q", 2)]))
    lake.add(Table("b", ["x", "y"], [("r", 3), ("s", 4)]))
    lake.add(Table("c", ["x", "y"], [("t", 5), ("u", 6)]))
    blend = Blend(lake, backend="column")
    blend.build_index()
    sql = "SELECT * FROM AllTables WHERE TableId IN (:ids) ORDER BY RowId, ColumnId"
    before = blend.db.execute(sql, {"ids": [0, 2]}).rows
    blend.remove_table(1)
    assert blend.db.execute(sql, {"ids": [0, 2]}).rows == before
    assert blend.db.execute(sql, {"ids": [1]}).rows == []


def test_replace_serves_new_contents_immediately():
    lake = DataLake("swap")
    lake.add(Table("t0", ["k"], [("old_token",)]))
    lake.add(Table("t1", ["k"], [("other",)]))
    blend = Blend(lake, backend="column")
    blend.build_index()
    assert blend.keyword_search(["old_token"]).table_ids() == [0]
    blend.replace_table(0, Table("t0v2", ["k"], [("new_token",)]))
    assert blend.keyword_search(["old_token"]).table_ids() == []
    assert blend.keyword_search(["new_token"]).table_ids() == [0]
    assert blend.lake.name_of(0) == "t0v2"


def test_generation_and_cache_stats_surface_mutations():
    lake = DataLake("gen")
    lake.add(Table("t0", ["k"], [("a",)]))
    blend = Blend(lake, backend="column")
    blend.build_index()
    generation = blend.lake.generation
    epoch = blend.db.cache_stats()["data_epoch"]
    blend.add_table(Table("t1", ["k"], [("b",)]))
    assert blend.lake.generation == generation + 1
    assert blend.db.cache_stats()["data_epoch"] > epoch
    epoch = blend.db.cache_stats()["data_epoch"]
    blend.remove_table(0)
    assert blend.lake.generation == generation + 2
    assert blend.db.cache_stats()["data_epoch"] > epoch


def test_fresh_context_after_mutation_serves():
    """Blend.run always stamps a fresh context, so discovery keeps
    working across mutations without any caller-side ceremony."""
    blend = Blend(_base_lake(7), backend="column")
    blend.build_index()
    blend.remove_table(blend.lake.table_ids()[0])
    table = blend.lake.by_id(blend.lake.table_ids()[0])
    values = [v for v in table.column_values(table.columns[0]) if v is not None]
    assert blend.keyword_search(values[:4], k=5) is not None  # no raise


def test_shuffle_maintenance_matches_rebuild():
    """The BLEND (rand) permutation is a per-table seeded hash of the
    stable table id, so maintenance on shuffled configs reproduces
    exactly what a from-scratch shuffled build assigns."""
    lake = DataLake("shuf")
    lake.add(Table("t0", ["k"], [(f"a{i}",) for i in range(9)]))
    lake.add(Table("t1", ["k"], [(f"b{i}",) for i in range(7)]))
    config = IndexConfig(shuffle_rows=True, shuffle_seed=13)
    db = Database(backend="column")
    build_alltables(lake, db, config)
    # add / replace / remove through the maintenance entry points
    lake.add(Table("t2", ["k"], [(f"c{i}",) for i in range(8)]))
    index_table(2, lake.by_id(2), db, config)
    replacement = Table("t1v2", ["k"], [(f"d{i}",) for i in range(6)])
    lake.replace(1, replacement)
    reindex_table(1, replacement, db, config)
    lake.remove(0)
    deindex_table(0, db, config)

    fresh = Database(backend="column")
    build_alltables(lake, fresh, config)
    sql = "SELECT * FROM AllTables"
    assert sorted(db.execute(sql).rows) == sorted(fresh.execute(sql).rows)
    db.compact("AllTables")
    assert db.execute(sql).rows == fresh.execute(sql).rows


def test_shuffle_permutation_is_table_local():
    """The permutation of one table id must not depend on which other
    tables exist (that independence IS the maintainability argument)."""
    from repro.index.alltables import shuffle_permutation

    perm = shuffle_permutation(13, 4, 20)
    assert sorted(perm) == list(range(20))
    assert perm == shuffle_permutation(13, 4, 20)  # deterministic
    assert perm != shuffle_permutation(13, 5, 20)  # table-id keyed
    assert perm != shuffle_permutation(14, 4, 20)  # seed keyed


def test_deindex_requires_existing_relation():
    db = Database(backend="column")
    with pytest.raises(IndexingError):
        deindex_table(0, db)


def test_lifecycle_refusal_is_atomic():
    """On an unmaintainable deployment (here: the AllTables relation is
    gone), lifecycle methods must refuse BEFORE touching the lake -- a
    half-applied mutation would leave a fresh-generation context
    silently serving the desynced index."""
    lake = DataLake("atomic")
    lake.add(Table("t0", ["k"], [("a",), ("b",)]))
    lake.add(Table("t1", ["k"], [("c",), ("d",)]))
    blend = Blend(lake, backend="column")
    blend.build_index()
    blend.db.drop_table("AllTables")
    generation = lake.generation
    with pytest.raises(IndexingError):
        blend.remove_table(1)
    with pytest.raises(IndexingError):
        blend.replace_table(0, Table("t0v2", ["k"], [("e",)]))
    with pytest.raises(IndexingError):
        blend.add_table(Table("t2", ["k"], [("f",)]))
    # the lake is exactly as before: no desync, no stale stats
    assert lake.generation == generation
    assert lake.table_ids() == [0, 1]
    assert "t2" not in lake and "t0v2" not in lake


class TestLakeLifecycle:
    """DataLake-level semantics the index layers rely on."""

    def test_ids_stable_under_removal(self):
        lake = DataLake("ids")
        for i in range(4):
            lake.add(Table(f"t{i}", ["a"], [(i,)]))
        lake.remove(1)
        assert lake.table_ids() == [0, 2, 3]
        assert len(lake) == 3
        assert [i for i, _ in lake.items()] == [0, 2, 3]
        assert lake.by_id(2).name == "t2"
        with pytest.raises(LakeError):
            lake.by_id(1)
        # removed ids are never reused
        assert lake.add(Table("t4", ["a"], [(4,)])) == 4

    def test_replace_keeps_id_and_remaps_name(self):
        lake = DataLake("repl")
        lake.add(Table("t0", ["a"], [(0,)]))
        lake.add(Table("t1", ["a"], [(1,)]))
        previous = lake.replace(0, Table("t0v2", ["a"], [(9,)]))
        assert previous.name == "t0"
        assert lake.id_of("t0v2") == 0
        assert "t0" not in lake
        with pytest.raises(LakeError):
            lake.replace(1, Table("t0v2", ["a"], [(7,)]))  # name collision

    def test_generation_monotone(self):
        lake = DataLake("g")
        assert lake.generation == 0
        lake.add(Table("t0", ["a"], [(0,)]))
        lake.add(Table("t1", ["a"], [(1,)]))
        assert lake.generation == 2
        lake.replace(0, Table("t0b", ["a"], [(2,)]))
        lake.remove(1)
        assert lake.generation == 4

    def test_shard_plan_skips_holes(self):
        lake = DataLake("shards")
        for i in range(6):
            lake.add(Table(f"t{i}", ["a"], [(j,) for j in range(5)]))
        lake.remove(2)
        shards = lake.shard_plan(3)
        covered = [tid for shard in shards for tid in shard.table_ids]
        assert covered == [0, 1, 3, 4, 5]
        assert all(shard.tables for shard in shards)

    def test_stats_cover_live_tables_only(self):
        lake = DataLake("stats")
        lake.add(Table("t0", ["a", "b"], [(1, 2)]))
        lake.add(Table("t1", ["a"], [(3,), (4,)]))
        lake.remove(0)
        stats = lake.stats()
        assert stats.num_tables == 1
        assert stats.num_cells == 2


def test_parallel_build_on_mutated_lake_byte_identical():
    """The sharded build handles lakes with id holes (explicit shard
    table ids), byte-identical to the serial pipelines."""
    blend = Blend(_base_lake(13), backend="column")
    blend.build_index()
    _mutate(blend, random.Random(5), ops=6, tag="par")
    lake = blend.lake
    rows = {}
    for name, config in {
        "scalar": IndexConfig(vectorized=False),
        "vectorized": IndexConfig(),
        "parallel": IndexConfig(workers=3),
        "parallel_pinned": IndexConfig(workers=2, pin_workers=True),
    }.items():
        db = Database(backend="column")
        build_alltables(lake, db, config)
        rows[name] = db.execute("SELECT * FROM AllTables").rows
    assert rows["vectorized"] == rows["scalar"]
    assert rows["parallel"] == rows["scalar"]
    assert rows["parallel_pinned"] == rows["scalar"]


def test_semantic_extension_maintained():
    """AllVectors rows and SS results follow the lifecycle."""
    blend = Blend(_base_lake(21), backend="column")
    blend.build_index()
    blend.enable_semantic(dimensions=16)
    removed_id = blend.lake.table_ids()[0]
    blend.remove_table(removed_id)
    new_id = blend.add_table(
        Table("sem_new", ["a", "b"], [(f"alpha{i}", f"beta{i}") for i in range(6)])
    )
    vec_ids = {
        row[0]
        for row in blend.db.execute("SELECT TableId FROM AllVectors").rows
    }
    assert removed_id not in vec_ids
    assert new_id in vec_ids
    hits = blend.semantic_search(["alpha1", "alpha2"], k=5)
    assert removed_id not in hits.table_ids()
