"""Determinism suite for the sharded parallel AllTables build.

The acceptance bar mirrors the PR 1 vectorised-vs-scalar pin: for any
worker count, both scheduling modes (adaptive in-process degradation and
a pinned real process pool), both storage backends, and both hash
widths, ``build_alltables(..., IndexConfig(workers=N))`` must produce
**byte-identical** ``AllTables`` relations (same values, same physical
order) and identical build reports. A worker-process crash must surface
as a clear :class:`IndexingError`, never a hang, and must not poison
subsequent builds.
"""

import random

import pytest

from repro.engine import Database
from repro.errors import IndexingError
from repro.index import IndexConfig, build_alltables
from repro.index.alltables import (
    _FastFactorizer,
    _TokenFactorizer,
    _shutdown_pools,
    index_table,
)
from repro.lake import DataLake, Table
from repro.lake.generators import CorpusConfig, generate_corpus


class _UnstringableCell:
    """A picklable cell whose ``__str__`` raises -- drives an ordinary
    exception out of a worker's normalize kernel."""

    def __str__(self):
        raise TypeError("unstringable cell")


def _random_lake(rng: random.Random, num_tables: int = 12) -> DataLake:
    """Adversarial random lakes: shared skewed vocabulary, numeric and
    mixed columns, NULL/empty/whitespace cells, bool/int collisions
    (``True == 1``), 0/1-valued cells (the fast factoriser's memo
    exclusion set), floats that normalise to ints, NaN, and tiny or
    single-column tables."""
    vocabulary = [f"tok{i}" for i in range(30)] + ["Mixed Case", " pad ", "1", "0"]
    lake = DataLake("parallel_prop")
    for t in range(num_tables):
        width = rng.randint(1, 5)
        rows = []
        for _ in range(rng.randint(0, 18)):
            row = []
            for _ in range(width):
                roll = rng.random()
                if roll < 0.08:
                    row.append(None)
                elif roll < 0.16:
                    row.append(rng.randint(0, 3))
                elif roll < 0.24:
                    row.append(rng.choice([True, False]))
                elif roll < 0.34:
                    row.append(
                        rng.choice([0.0, 1.0, 2.5, 20.0, float("nan"), -7.125])
                    )
                elif roll < 0.40:
                    row.append(rng.choice(["", "  ", "42", "3.5"]))
                else:
                    row.append(rng.choice(vocabulary))
            rows.append(tuple(row))
        lake.add(Table(f"t{t}", [f"c{i}" for i in range(width)], rows))
    return lake


def _alltables_rows(lake, config, backend="column"):
    db = Database(backend=backend)
    report = build_alltables(lake, db, config)
    return db.execute("SELECT * FROM AllTables").rows, report


class TestByteIdenticalAcrossWorkerCounts:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_random_lakes_all_worker_counts(self, seed):
        lake = _random_lake(random.Random(seed))
        reference_rows, reference_report = _alltables_rows(lake, IndexConfig())
        for workers in (1, 2, 4):
            rows, report = _alltables_rows(lake, IndexConfig(workers=workers))
            assert rows == reference_rows, f"workers={workers} diverged"
            assert report == reference_report

    def test_pinned_pool_matches_adaptive_and_serial(self):
        """Force a real process pool (pin_workers) even on a single-CPU
        host: results must match the in-process degradation and the
        serial build bit for bit."""
        lake = _random_lake(random.Random(91))
        reference_rows, reference_report = _alltables_rows(lake, IndexConfig())
        for workers in (2, 3):
            rows, report = _alltables_rows(
                lake, IndexConfig(workers=workers, pin_workers=True)
            )
            assert rows == reference_rows
            assert report == reference_report

    @pytest.mark.parametrize("backend", ["row", "column"])
    def test_both_backends_generated_corpus(self, backend):
        lake = generate_corpus(
            CorpusConfig(name="par", num_tables=25, min_rows=4, max_rows=30, seed=13)
        )
        reference_rows, _ = _alltables_rows(lake, IndexConfig(), backend)
        rows, _ = _alltables_rows(
            lake, IndexConfig(workers=2, pin_workers=True), backend
        )
        assert rows == reference_rows

    def test_128_bit_hashes_row_backend(self):
        lake = _random_lake(random.Random(5))
        reference_rows, _ = _alltables_rows(lake, IndexConfig(hash_size=128), "row")
        assert any(row[4] >= 2**63 for row in reference_rows)  # real 128-bit keys
        for workers, pin in ((1, False), (2, True)):
            rows, _ = _alltables_rows(
                lake, IndexConfig(hash_size=128, workers=workers, pin_workers=pin), "row"
            )
            assert rows == reference_rows

    def test_128_bit_rejected_on_column_store(self):
        lake = _random_lake(random.Random(5))
        db = Database(backend="column")
        with pytest.raises(IndexingError, match="int64 SuperKey"):
            build_alltables(lake, db, IndexConfig(hash_size=128, workers=2))

    def test_shuffle_rows_parity(self):
        lake = _random_lake(random.Random(31))
        reference_rows, _ = _alltables_rows(
            lake, IndexConfig(shuffle_rows=True, shuffle_seed=17)
        )
        for workers, pin in ((1, False), (4, False), (2, True)):
            rows, _ = _alltables_rows(
                lake,
                IndexConfig(
                    shuffle_rows=True, shuffle_seed=17, workers=workers, pin_workers=pin
                ),
            )
            assert rows == reference_rows

    def test_scalar_oracle_agreement(self):
        lake = _random_lake(random.Random(47))
        scalar_rows, _ = _alltables_rows(lake, IndexConfig(vectorized=False))
        parallel_rows, _ = _alltables_rows(lake, IndexConfig(workers=2, pin_workers=True))
        assert parallel_rows == scalar_rows

    def test_empty_and_all_null_lakes(self):
        empty = DataLake("empty")
        rows, report = _alltables_rows(empty, IndexConfig(workers=2))
        assert rows == [] and report.num_index_rows == 0
        nulls = DataLake("nulls", [Table("n", ["a", "b"], [(None, None)] * 5)])
        reference_rows, reference_report = _alltables_rows(nulls, IndexConfig())
        rows, report = _alltables_rows(nulls, IndexConfig(workers=2, pin_workers=True))
        assert rows == reference_rows == []
        assert report == reference_report
        assert report.num_null_cells == 10


class TestFastFactorizerParity:
    """The sharded pipeline's factoriser against the serial one, on the
    exact value classes where Python equality lies (``True == 1``,
    ``1 == 1.0``, NaN)."""

    def test_codes_match_token_for_token(self):
        rows = [
            (True, 1, "1", 1.0),
            (False, 0, "0", 0.0),
            (None, "", "  ", "x"),
            (2.0, 2, "2", float("nan")),
            (True, 1, "1", 1.0),  # repeats: memo-hit path
        ]
        slow, fast = _TokenFactorizer(), _FastFactorizer()
        slow_codes = slow.factorize(rows, 20)
        fast_codes = fast.factorize(rows, 20)
        slow_tokens = [None if c < 0 else slow.tokens[c] for c in slow_codes]
        fast_tokens = [None if c < 0 else fast.tokens[c] for c in fast_codes]
        assert fast_tokens == slow_tokens
        assert fast_tokens[:4] == ["true", "1", "1", "1"]
        assert fast_tokens[4:8] == ["false", "0", "0", "0"]

    def test_zero_one_values_never_memoised(self):
        fast = _FastFactorizer()
        fast.factorize([(1, True, 0.0, "z")], 4)
        assert all(not (key == 0 or key == 1) for key in fast.memo if key is not None)


class TestWorkerFailureModes:
    def test_worker_crash_surfaces_as_indexing_error(self, monkeypatch):
        """A hard worker death (os._exit in the entrypoint) must raise a
        clear IndexingError promptly -- not hang -- and the next build on
        a fresh pool must succeed."""
        lake = _random_lake(random.Random(3))
        # Worker processes snapshot the environment when they start, so
        # drop any pool cached by earlier builds before poisoning it.
        _shutdown_pools()
        monkeypatch.setenv("REPRO_INDEX_WORKER_CRASH", "1")
        db = Database(backend="column")
        with pytest.raises(IndexingError, match="worker process died"):
            build_alltables(lake, db, IndexConfig(workers=2, pin_workers=True))
        monkeypatch.delenv("REPRO_INDEX_WORKER_CRASH")
        recovered = Database(backend="column")
        report = build_alltables(
            lake, recovered, IndexConfig(workers=2, pin_workers=True)
        )
        reference_rows, _ = _alltables_rows(lake, IndexConfig())
        assert recovered.execute("SELECT * FROM AllTables").rows == reference_rows
        assert report.num_index_rows == len(reference_rows)

    def test_worker_exception_propagates(self):
        """An ordinary exception inside a worker (a cell whose __str__
        raises, exploding inside the normalize kernel) is re-raised in
        the parent, original type intact. Two tables, so the build really
        fans out instead of degrading to the inline path. (Unhashable
        cells -- the old trigger -- no longer raise: the token kernel
        normalises them via str() exactly like the scalar oracle.)"""
        lake = DataLake(
            "bad",
            [
                Table("ok", ["a"], [("fine",)] * 3),
                Table("t", ["a"], [(_UnstringableCell(),)] * 3),
            ],
        )
        db = Database(backend="column")
        with pytest.raises(TypeError, match="unstringable"):
            build_alltables(lake, db, IndexConfig(workers=2, pin_workers=True))

    def test_unhashable_cells_index_like_the_scalar_oracle(self):
        """Unhashable cells (lists) used to TypeError in the vectorised
        factoriser's value memo while the scalar oracle happily tokenised
        them via ``str()``; the token kernel removed the divergence --
        every pipeline now agrees with the oracle."""
        lake = DataLake(
            "unhashable",
            [Table("t", ["a", "b"], [(["x", 1], "plain"), (["x", 1], None)] * 3)],
        )
        reference = Database(backend="column")
        build_alltables(lake, reference, IndexConfig(vectorized=False))
        expected = reference.execute("SELECT * FROM AllTables").rows
        assert expected, "scalar oracle indexed the unhashable cells"
        for config in (IndexConfig(), IndexConfig(workers=2, pin_workers=True)):
            db = Database(backend="column")
            build_alltables(lake, db, config)
            assert db.execute("SELECT * FROM AllTables").rows == expected

    def test_invalid_worker_counts_rejected(self):
        lake = _random_lake(random.Random(2))
        for bad in (0, -3):
            with pytest.raises(IndexingError, match="workers must be >= 1"):
                build_alltables(lake, Database(), IndexConfig(workers=bad))
        with pytest.raises(IndexingError, match="requires the vectorized"):
            build_alltables(
                lake, Database(), IndexConfig(workers=2, vectorized=False)
            )


class TestMaintenanceAfterParallelBuild:
    def test_index_table_appends_identically(self):
        lake = _random_lake(random.Random(11))
        extra = Table("t_extra", ["a", "b"], [("p", 1), (None, 2.5), ("q", None)])
        results = {}
        for label, config in (
            ("serial", IndexConfig()),
            ("parallel", IndexConfig(workers=2, pin_workers=True)),
        ):
            db = Database(backend="column")
            build_alltables(lake, db, config)
            added = index_table(len(lake), extra, db, config)
            assert added == 4  # six cells, two NULLs
            results[label] = db.execute("SELECT * FROM AllTables").rows
        assert results["parallel"] == results["serial"]
