"""Vectorised AllTables ingest vs the scalar reference oracle.

The acceptance bar for the columnar fast path: *byte-identical*
``AllTables`` rows (same values, same physical order) and identical
seeker rankings, under both storage backends and both shuffle modes.
"""

import pytest

from repro.core.seekers import SeekerContext, Seekers
from repro.engine import Database
from repro.index import IndexConfig, build_alltables
from repro.index.alltables import index_table
from repro.lake import DataLake, Table
from repro.lake.generators import CorpusConfig, generate_corpus


def _edge_lake() -> DataLake:
    """Hand-built tables exercising every normalisation edge: NULLs,
    empty/whitespace strings, bools (True == 1 hazards), numeric strings,
    floats that normalise to ints, NaN/inf, all-null rows, repeated
    values, and a 1-column table."""
    lake = DataLake("edges")
    lake.add(
        Table(
            "mixed",
            ["name", "value", "flag"],
            [
                ("Alice", 10, True),
                ("bob ", 20.0, False),
                ("", None, None),
                (None, None, None),
                ("alice", "30", True),
                ("carol", float("nan"), False),
                ("dave", float("inf"), True),
                ("1", 1, True),  # token collision with bool/int forms
            ],
        )
    )
    lake.add(Table("single", ["only"], [("x",), (None,), ("x",), ("Y",)]))
    lake.add(
        Table(
            "numbers",
            ["k", "n", "m"],
            [(f"k{i}", i, i * 1.5) for i in range(25)],
        )
    )
    return lake


def _generated_lake() -> DataLake:
    return generate_corpus(
        CorpusConfig(name="vec_parity", num_tables=40, min_rows=10, max_rows=60, seed=77)
    )


@pytest.fixture(scope="module", params=["edge", "generated"])
def parity_lake(request):
    return _edge_lake() if request.param == "edge" else _generated_lake()


class TestBitIdenticalBuild:
    @pytest.mark.parametrize("backend", ["row", "column"])
    @pytest.mark.parametrize("shuffle", [False, True])
    def test_rows_identical(self, parity_lake, backend, shuffle):
        results = {}
        for vectorized in (False, True):
            db = Database(backend=backend)
            report = build_alltables(
                parity_lake,
                db,
                IndexConfig(vectorized=vectorized, shuffle_rows=shuffle, shuffle_seed=11),
            )
            # Physical insertion order, no ORDER BY: byte-identical means
            # identical storage order too.
            results[vectorized] = (db.execute("SELECT * FROM AllTables").rows, report)
        rows_scalar, report_scalar = results[False]
        rows_vector, report_vector = results[True]
        assert rows_vector == rows_scalar
        assert report_vector == report_scalar

    def test_report_counts(self, parity_lake):
        db = Database(backend="column")
        report = build_alltables(parity_lake, db, IndexConfig(vectorized=True))
        assert report.num_index_rows == db.num_rows("AllTables")
        assert report.num_tables == len(parity_lake)


class TestIncrementalParity:
    def test_index_table_matches_scalar(self):
        new_table = Table(
            "t_new", ["a", "b"], [("p", 1), (None, 2), ("q", None), (None, None)]
        )
        rows = {}
        for vectorized in (False, True):
            lake = _edge_lake()
            db = Database(backend="column")
            build_alltables(lake, db, IndexConfig(vectorized=vectorized))
            added = index_table(len(lake), new_table, db, IndexConfig(vectorized=vectorized))
            assert added == 4
            rows[vectorized] = db.execute("SELECT * FROM AllTables").rows
        assert rows[True] == rows[False]

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_128_bit_rejected_on_column_store_up_front(self, vectorized):
        from repro.errors import IndexingError

        lake = _edge_lake()
        db = Database(backend="column")
        with pytest.raises(IndexingError, match="int64 SuperKey"):
            build_alltables(lake, db, IndexConfig(hash_size=128, vectorized=vectorized))

    def test_128_bit_builds_on_row_store(self):
        lake = _edge_lake()
        rows = {}
        for vectorized in (False, True):
            db = Database(backend="row")
            build_alltables(lake, db, IndexConfig(hash_size=128, vectorized=vectorized))
            rows[vectorized] = db.execute("SELECT * FROM AllTables").rows
        assert rows[True] == rows[False]
        assert any(row[4] >= 2**63 for row in rows[True])  # real 128-bit keys

    def test_index_empty_table_is_noop(self):
        lake = _edge_lake()
        db = Database(backend="column")
        build_alltables(lake, db)
        before = db.num_rows("AllTables")
        assert index_table(99, Table("empty", ["c"], []), db) == 0
        assert db.num_rows("AllTables") == before


class TestSeekerRankingsIdentical:
    """The end-to-end bar: both build paths must give every seeker the
    same answer."""

    @pytest.fixture(scope="class")
    def contexts(self):
        lake = _generated_lake()
        out = []
        for vectorized in (False, True):
            db = Database(backend="column")
            build_alltables(lake, db, IndexConfig(vectorized=vectorized))
            out.append(SeekerContext(db=db, lake=lake))
        return out

    def _query_values(self, lake):
        table = lake.by_id(0)
        column = table.columns[0]
        return [v for v in table.column_values(column) if v is not None][:8]

    def test_sc_and_kw(self, contexts):
        values = self._query_values(contexts[0].lake)
        for seeker in (Seekers.SC(values, k=5), Seekers.KW(values, k=5)):
            ranked = [seeker.execute(ctx).table_ids() for ctx in contexts]
            assert ranked[0] == ranked[1]

    def test_mc(self, contexts):
        table = contexts[0].lake.by_id(0)
        rows = [r for r in table.rows if all(v is not None for v in r[:2])][:6]
        seeker = Seekers.MC([r[:2] for r in rows], k=5)
        ranked = [seeker.execute(ctx).table_ids() for ctx in contexts]
        assert ranked[0] == ranked[1]

    def test_correlation(self, contexts):
        lake = contexts[0].lake
        pair = None
        for table in lake:
            flags = table.numeric_columns()
            if any(flags) and not all(flags):
                key_col = table.columns[flags.index(False)]
                num_col = table.columns[flags.index(True)]
                pair = (table.column_values(key_col), table.column_values(num_col))
                break
        if pair is None:
            pytest.skip("generated lake has no (text, numeric) column pair")
        seeker = Seekers.Correlation(pair[0], pair[1], k=5, min_support=2)
        ranked = [seeker.execute(ctx).table_ids() for ctx in contexts]
        assert ranked[0] == ranked[1]
