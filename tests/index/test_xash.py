"""XASH super-key properties, including the bloom-filter guarantee."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.xash import may_contain, super_key, tuple_hash, xash

TOKENS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 -", min_size=1, max_size=12
).map(str.strip).filter(bool)


class TestXashBasics:
    def test_deterministic(self):
        assert xash("tom riddle") == xash("tom riddle")

    def test_empty_token_is_zero(self):
        assert xash("") == 0

    def test_fits_hash_size(self):
        for token in ("a", "zz", "tom riddle", "1234567890"):
            assert 0 <= xash(token, hash_size=63) < 2**63
            assert 0 <= xash(token, hash_size=128) < 2**128

    def test_popcount_bounded_by_num_chars(self):
        for token in ("alpha", "beta", "x"):
            assert bin(xash(token, num_chars=2)).count("1") <= 2
            assert bin(xash(token, num_chars=4)).count("1") <= 4

    def test_different_tokens_usually_differ(self):
        tokens = ["hr", "it", "marketing", "finance", "sales", "r&d"]
        hashes = {xash(t) for t in tokens}
        assert len(hashes) >= len(tokens) - 1  # collisions possible but rare

    def test_length_sensitivity(self):
        # Same rare chars, different length -> rotation differs.
        assert xash("zq") != xash("zqaaaa")


class TestSuperKey:
    def test_super_key_is_or_of_cell_hashes(self):
        row = ["hr", "firenze", 2022]
        key = super_key(row)
        for value in row:
            from repro.lake.table import normalize_cell

            assert key | xash(normalize_cell(value)) == key

    def test_nulls_ignored(self):
        assert super_key(["hr", None, ""]) == super_key(["hr"])

    def test_tuple_hash_alias(self):
        assert tuple_hash(["a", "b"]) == super_key(["a", "b"])


class TestBloomFilterGuarantee:
    """The load-bearing property: no false negatives, ever."""

    @given(row=st.lists(TOKENS, min_size=1, max_size=8), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_no_false_negatives(self, row, data):
        subset_size = data.draw(st.integers(min_value=1, max_value=len(row)))
        subset = data.draw(
            st.lists(st.sampled_from(row), min_size=subset_size, max_size=subset_size)
        )
        row_key = super_key(row)
        query_hash = tuple_hash(subset)
        assert may_contain(row_key, query_hash)

    @given(row=st.lists(TOKENS, min_size=1, max_size=4), extra=TOKENS)
    @settings(max_examples=100, deadline=None)
    def test_disjoint_value_often_rejected(self, row, extra):
        """Not a guarantee (bloom filters have FPs), but rejection must be
        consistent: if may_contain is False the value is truly absent."""
        row_key = super_key(row)
        if not may_contain(row_key, xash_of(extra)):
            from repro.lake.table import normalize_cell

            assert normalize_cell(extra) not in {
                normalize_cell(v) for v in row
            }


def xash_of(token: str) -> int:
    from repro.lake.table import normalize_cell

    normalized = normalize_cell(token)
    return xash(normalized) if normalized else 0
