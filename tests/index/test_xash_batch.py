"""Batch-XASH equivalence: ``xash_batch`` must be bit-identical to the
scalar ``xash`` / ``super_key`` reference for arbitrary tokens, row widths,
and both the 63-bit (column-store) and 128-bit (MATE) hash sizes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.xash import super_key, xash, xash_batch
from repro.lake.table import normalize_cell

# Unicode-heavy token alphabet: frequency-table characters, characters
# outside the table, multi-byte code points, and the null character.
TOKENS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 -._/ABCÉØπ中文ß\x00",
    min_size=1,
    max_size=24,
)

HASH_SIZES = st.sampled_from([63, 128])
NUM_CHARS = st.integers(min_value=1, max_value=4)


class TestBatchEqualsScalar:
    @given(tokens=st.lists(TOKENS, min_size=1, max_size=40), hash_size=HASH_SIZES, num_chars=NUM_CHARS)
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_xash(self, tokens, hash_size, num_chars):
        batch = xash_batch(tokens, hash_size, num_chars)
        assert len(batch) == len(tokens)
        for token, hashed in zip(tokens, batch):
            assert int(hashed) == xash(token, hash_size, num_chars)

    @given(hash_size=HASH_SIZES)
    @settings(max_examples=10, deadline=None)
    def test_empty_batch(self, hash_size):
        out = xash_batch([], hash_size)
        assert len(out) == 0

    def test_dtype_by_hash_size(self):
        assert xash_batch(["alpha"], 63).dtype == np.int64
        assert xash_batch(["alpha"], 128).dtype == object

    def test_63_bit_fits_signed_int64(self):
        tokens = [f"token-{i}" for i in range(500)]
        batch = xash_batch(tokens, 63)
        assert int(batch.max()) < 2**63
        assert int(batch.min()) >= 0

    def test_128_bit_values_match_and_exceed_64_bits(self):
        tokens = [f"value {i} xyz" for i in range(200)]
        batch = xash_batch(tokens, 128)
        assert all(int(h) == xash(t, 128) for t, h in zip(tokens, batch))
        assert any(int(h) >= 2**64 for h in batch)  # rotation reaches high bits

    def test_duplicate_chars_deduplicated_like_scalar(self):
        # "zza": the duplicate 'z' must not displace 'a' from the top-2.
        for token in ("zza", "aabbcc", "zzzzzz", "abab"):
            assert int(xash_batch([token])[0]) == xash(token)

    def test_accepts_object_arrays(self):
        tokens = np.array(["x", "yy", "zzz"], dtype=object)
        assert [int(v) for v in xash_batch(tokens)] == [xash("x"), xash("yy"), xash("zzz")]

    @pytest.mark.parametrize("hash_size", [63, 128])
    def test_outlier_long_tokens_fall_back_to_scalar(self, hash_size):
        # One huge token must not inflate the padded batch matrix -- long
        # tokens take the scalar path, still bit-identical.
        tokens = ["short", "x" * 65, "y" * 5000, "z" * 64]
        batch = xash_batch(tokens, hash_size)
        assert [int(v) for v in batch] == [xash(t, hash_size) for t in tokens]

    def test_all_long_tokens(self):
        tokens = ["a" * 100, "b" * 200]
        assert [int(v) for v in xash_batch(tokens)] == [xash(t) for t in tokens]


class TestBatchSuperKeys:
    """OR-reduction over batch hashes equals the scalar super_key."""

    @given(
        rows=st.lists(
            st.lists(TOKENS, min_size=1, max_size=6), min_size=1, max_size=12
        ),
        hash_size=HASH_SIZES,
    )
    @settings(max_examples=100, deadline=None)
    def test_row_or_reduction(self, rows, hash_size):
        for row in rows:
            tokens = [normalize_cell(v) for v in row]
            tokens = [t for t in tokens if t is not None]
            expected = super_key(row, hash_size)
            if not tokens:
                assert expected == 0
                continue
            hashes = xash_batch(tokens, hash_size)
            key = 0
            for hashed in hashes:
                key |= int(hashed)
            assert key == expected
