"""AllTables construction, quadrants, lake statistics, storage model."""

import pytest

from repro.engine import Database
from repro.errors import IndexingError
from repro.index import (
    IndexConfig,
    LakeStatistics,
    StorageBreakdown,
    build_alltables,
    column_means,
    format_bytes,
    quadrant_bit,
    split_keys_by_target,
)
from repro.lake import DataLake, Table


@pytest.fixture
def small_lake():
    lake = DataLake("small")
    lake.add(Table("t0", ["name", "value"], [("a", 10), ("b", 20), ("c", None)]))
    lake.add(Table("t1", ["name"], [("a",), ("",), (None,)]))
    return lake


class TestQuadrants:
    def test_column_means(self, small_lake):
        means = column_means(small_lake.by_id(0))
        assert means[0] is None  # text column
        assert means[1] == 15.0

    def test_quadrant_bit(self):
        assert quadrant_bit(20, 15.0) is True
        assert quadrant_bit(15, 15.0) is True  # >= mean
        assert quadrant_bit(10, 15.0) is False
        assert quadrant_bit("x", 15.0) is None
        assert quadrant_bit(10, None) is None

    def test_split_keys_by_target(self):
        below, above = split_keys_by_target(["a", "b", "c", "d"], [1, 2, 9, 10])
        assert below == ["a", "b"]
        assert above == ["c", "d"]

    def test_split_drops_non_numeric_targets(self):
        below, above = split_keys_by_target(["a", "b"], ["x", 5])
        assert below == [] and above == ["b"]

    def test_split_keeps_first_occurrence(self):
        below, above = split_keys_by_target(["a", "a"], [1, 100])
        assert below == ["a"] and above == []


class TestBuildAllTables:
    @pytest.mark.parametrize("backend", ["row", "column"])
    def test_row_counts_exclude_nulls(self, small_lake, backend):
        db = Database(backend=backend)
        report = build_alltables(small_lake, db)
        # t0: 5 non-null cells (c,None drops 1); t1: 1 non-null cell.
        assert report.num_index_rows == 6
        assert report.num_null_cells == 3
        assert db.num_rows("AllTables") == 6

    def test_quadrant_column_contents(self, small_lake):
        db = Database(backend="column")
        build_alltables(small_lake, db)
        rows = db.execute(
            "SELECT CellValue, Quadrant FROM AllTables "
            "WHERE TableId = 0 AND ColumnId = 1 ORDER BY RowId"
        ).rows
        assert rows == [("10", False), ("20", True)]

    def test_indexes_created(self, small_lake):
        db = Database(backend="column")
        build_alltables(small_lake, db)
        table = db.table("AllTables")
        assert table.has_index("CellValue")
        assert table.has_index("TableId")

    def test_double_build_rejected(self, small_lake):
        db = Database(backend="column")
        build_alltables(small_lake, db)
        with pytest.raises(IndexingError):
            build_alltables(small_lake, db)

    def test_shuffle_preserves_row_alignment(self):
        lake = DataLake("s")
        lake.add(
            Table(
                "t",
                ["a", "b"],
                [(f"k{i}", f"v{i}") for i in range(20)],
            )
        )
        db = Database(backend="column")
        build_alltables(lake, db, IndexConfig(shuffle_rows=True, shuffle_seed=3))
        rows = db.execute(
            "SELECT CellValue, RowId, ColumnId FROM AllTables ORDER BY RowId, ColumnId"
        ).rows
        by_row: dict[int, dict[int, str]] = {}
        for value, row_id, column_id in rows:
            by_row.setdefault(row_id, {})[column_id] = value
        for cells in by_row.values():
            # k7 must stay aligned with v7 regardless of the permutation.
            assert cells[0].replace("k", "") == cells[1].replace("v", "")

    def test_shuffle_changes_physical_order(self):
        lake = DataLake("s")
        lake.add(Table("t", ["a"], [(f"k{i}",) for i in range(30)]))
        plain = Database(backend="column")
        build_alltables(lake, plain)
        shuffled = Database(backend="column")
        build_alltables(lake, shuffled, IndexConfig(shuffle_rows=True, shuffle_seed=3))
        order_plain = plain.execute("SELECT CellValue FROM AllTables WHERE RowId < 5 ORDER BY RowId").rows
        order_shuffled = shuffled.execute("SELECT CellValue FROM AllTables WHERE RowId < 5 ORDER BY RowId").rows
        assert order_plain != order_shuffled


class TestLakeStatistics:
    def test_frequencies(self, small_lake):
        stats = LakeStatistics.from_lake(small_lake)
        assert stats.frequency("a") == 2
        assert stats.frequency("10") == 1
        assert stats.frequency("ghost") == 0
        assert stats.num_cells == 6

    def test_average_frequency(self, small_lake):
        stats = LakeStatistics.from_lake(small_lake)
        assert stats.average_frequency(["a", "10"]) == pytest.approx(1.5)
        assert stats.average_frequency([]) == 0.0

    def test_selectivity_bounded(self, small_lake):
        stats = LakeStatistics.from_lake(small_lake)
        assert 0.0 <= stats.selectivity(["a"]) <= 1.0


class TestStorageModel:
    def test_breakdown_saving(self):
        breakdown = StorageBreakdown(
            lake_name="demo",
            blend_bytes=400,
            dataxformer_bytes=300,
            josie_bytes=200,
            mate_bytes=300,
            starmie_bytes=100,
            qcr_bytes=100,
        )
        assert breakdown.combined_sota_bytes == 1000
        assert breakdown.saving_fraction == pytest.approx(0.6)

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(5 * 1024**3) == "5.0 GB"


class TestIncrementalMaintenance:
    def test_index_table_appends(self, small_lake):
        from repro.index.alltables import index_table
        from repro.lake import Table

        db = Database(backend="column")
        build_alltables(small_lake, db)
        before = db.num_rows("AllTables")
        new_table = Table("t2", ["name", "value"], [("d", 5), ("e", None)])
        added = index_table(2, new_table, db)
        assert added == 3  # 'd', 5, 'e' (one NULL skipped)
        assert db.num_rows("AllTables") == before + 3

    def test_index_table_requires_existing_relation(self, small_lake):
        from repro.index.alltables import index_table
        from repro.lake import Table

        db = Database(backend="column")
        with pytest.raises(IndexingError):
            index_table(0, Table("t", ["a"], [("x",)]), db)

    def test_blend_add_table_is_queryable(self):
        from repro import Blend, DataLake, Table

        lake = DataLake("maint")
        lake.add(Table("t0", ["c"], [("alpha",), ("beta",)]))
        blend = Blend(lake, backend="column")
        blend.build_index()
        assert blend.join_search(["gamma"], k=5).table_ids() == []

        new_id = blend.add_table(Table("t1", ["c"], [("gamma",), ("delta",)]))
        assert blend.join_search(["gamma", "delta"], k=5).table_ids() == [new_id]
        # Statistics were maintained too (cost-model feature path).
        assert blend.stats.frequency("gamma") == 1
        assert blend.stats.num_tables == 2

    def test_add_table_on_row_backend(self):
        from repro import Blend, DataLake, Table

        lake = DataLake("maint_row")
        lake.add(Table("t0", ["c"], [("alpha",)]))
        blend = Blend(lake, backend="row")
        blend.build_index()
        new_id = blend.add_table(Table("t1", ["c"], [("omega",)]))
        assert blend.join_search(["omega"], k=5).table_ids() == [new_id]
