"""Streaming ingest: the base+delta write path.

Headline invariants:

* mutations on a loaded deployment never touch the base snapshot's
  memory-mapped arrays (no promote-to-private-copy -- N workers keep
  sharing one on-disk base forever),
* every read over base ∪ delta is byte-identical to a from-scratch
  build of the final lake (the rebuild-parity matrix, extended to the
  frozen-base mode),
* ``save()`` against the base is incremental -- it writes only the
  per-slot diff (``delta.json`` + payloads) and round-trips exactly,
* ``load(delta=False)`` recovers the bare base without reading a byte
  of the delta layer.
"""

import random
from pathlib import Path

import numpy as np
import pytest

from repro import Blend, Database, Table
from repro.core.seekers import SeekerContext
from repro.errors import BlendError, SnapshotError
from repro.index import IndexConfig, build_alltables
from repro.index.stats import LakeStatistics
from repro.lake.generators import CorpusConfig, generate_corpus
from repro.snapshot import read_delta_manifest, read_manifest

from tests.index.test_snapshot import (
    BACKEND_HASH,
    _query_seekers,
    _random_table,
    _results,
    _storage_identical,
)


def _lake(seed: int, num_tables: int = 12):
    return generate_corpus(
        CorpusConfig(
            name=f"delta{seed}",
            num_tables=num_tables,
            min_rows=5,
            max_rows=20,
            seed=seed,
        )
    )


def _mutate(blend: Blend, rng: random.Random, rounds: int = 8) -> None:
    counter = 0
    for _ in range(rounds):
        live = blend.lake.table_ids()
        op = rng.choice(["add", "remove", "replace"])
        if op == "add" or len(live) <= 4:
            counter += 1
            blend.add_table(_random_table(rng, f"dmut{counter}{rng.randint(0, 999)}"))
        elif op == "remove":
            blend.remove_table(rng.choice(live))
        else:
            counter += 1
            blend.replace_table(
                rng.choice(live), _random_table(rng, f"drep{counter}{rng.randint(0, 999)}")
            )


# --------------------------------------------------------------------------
# The base never stops being a shared read-only memmap
# --------------------------------------------------------------------------


def test_mutations_never_promote_the_base(tmp_path):
    """Arbitrary lifecycle mutations leave every base array exactly the
    memory-mapped object the load produced -- the delta path appends
    beside the base instead of copying it."""
    blend = Blend(_lake(3), backend="column")
    blend.build_index()
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)

    storage = loaded.db.table("AllTables")
    base_before = storage._seal()
    base_arrays = [
        arr
        for column in base_before
        for arr in (column.codes, column.data, column.null)
        if arr is not None
    ]
    assert base_arrays and all(isinstance(arr, np.memmap) for arr in base_arrays)

    rng = random.Random(5)
    _mutate(loaded, rng, rounds=10)

    assert storage._frozen_base
    stats = loaded.delta_stats()
    assert stats["frozen"] and (stats["delta_rows"] > 0 or stats["deleted_rows"] > 0)
    base_after = storage._seal()
    for before, after in zip(base_before, base_after):
        for name in ("codes", "data", "null"):
            old_arr = getattr(before, name)
            if old_arr is not None:
                # same object: never copied, never replaced
                assert getattr(after, name) is old_arr
    # ... and never written through: bytes on disk are untouched.
    manifest = read_manifest(path)
    import zlib

    for rel, record in manifest["files"].items():
        assert record["crc32"] == zlib.crc32((path / rel).read_bytes()), rel


# --------------------------------------------------------------------------
# Base ∪ delta parity with a from-scratch build, then incremental save
# --------------------------------------------------------------------------


@pytest.mark.parametrize("backend,hash_size", BACKEND_HASH)
@pytest.mark.parametrize("seed", [41, 59])
def test_incremental_save_round_trip_parity(backend, hash_size, seed, tmp_path):
    """build -> save -> load -> random mutation stream -> incremental
    save -> reload: every stage serves results identical to a
    from-scratch build of the final lake, and compaction converges to
    byte-identical storage."""
    rng = random.Random(seed * 13 + hash_size)
    config = IndexConfig(hash_size=hash_size)
    blend = Blend(_lake(seed), backend=backend, index_config=config)
    blend.build_index()

    path = blend.save(tmp_path / "snap")
    manifest_bytes = (Path(path) / "manifest.json").read_bytes()
    loaded = Blend.load(path)
    _mutate(loaded, rng)

    # Incremental: the save is a delta beside an unchanged base manifest.
    assert loaded.save(path) == path
    assert (Path(path) / "manifest.json").read_bytes() == manifest_bytes
    assert read_delta_manifest(path) is not None

    reloaded = Blend.load(path)
    assert reloaded.lake.table_ids() == loaded.lake.table_ids()
    assert reloaded.lake.generation == loaded.lake.generation
    seekers = _query_seekers(reloaded.lake)
    assert _results(reloaded.context(), seekers) == _results(loaded.context(), seekers)

    fresh_db = Database(backend=backend)
    build_alltables(reloaded.lake, fresh_db, config)
    fresh_context = SeekerContext(db=fresh_db, lake=reloaded.lake, hash_size=hash_size)
    assert _results(reloaded.context(), seekers) == _results(fresh_context, seekers)

    sql = "SELECT * FROM AllTables"
    assert sorted(reloaded.db.execute(sql).rows) == sorted(fresh_db.execute(sql).rows)
    reloaded.compact_index()
    assert reloaded.db.execute(sql).rows == fresh_db.execute(sql).rows
    _storage_identical(reloaded.db, fresh_db, "AllTables")
    assert reloaded.stats == LakeStatistics.from_lake(reloaded.lake)

    # The bare base is still recoverable, bit-for-bit.
    base_only = Blend.load(path, delta=False)
    original = Blend(_lake(seed), backend=backend, index_config=config)
    original.build_index()
    assert sorted(base_only.db.execute(sql).rows) == sorted(
        original.db.execute(sql).rows
    )


def test_repeated_delta_saves_supersede_payloads(tmp_path):
    """Each save rewrites the full diff-from-base; payloads no earlier
    manifest references are collected, and replaying always lands on the
    writer's exact lake."""
    blend = Blend(_lake(7, num_tables=6), backend="column")
    blend.build_index()
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)

    added = loaded.add_table(Table("wave1", ["a"], [("x",), ("y",)]))
    loaded.save(path)
    first = {p.name for p in (path / "delta").glob("*.pkl")}
    assert len(first) == 1

    loaded.replace_table(added, Table("wave1", ["a"], [("z",)]))
    loaded.remove_table(loaded.lake.table_ids()[0])
    loaded.save(path)
    second = {p.name for p in (path / "delta").glob("*.pkl")}
    assert len(second) == 1 and not (first & second)  # superseded payload gone

    reloaded = Blend.load(path)
    assert reloaded.lake.table_ids() == loaded.lake.table_ids()
    sql = "SELECT * FROM AllTables"
    assert sorted(reloaded.db.execute(sql).rows) == sorted(loaded.db.execute(sql).rows)

    # A reloaded deployment is itself a first-class delta writer.
    reloaded.add_table(Table("wave2", ["b"], [("w",)]))
    reloaded.save(path)
    final = Blend.load(path)
    assert final.lake.table_ids() == reloaded.lake.table_ids()


def test_delta_stats_tracks_churn(tmp_path):
    blend = Blend(_lake(9, num_tables=6), backend="column")
    blend.build_index()
    assert blend.delta_stats()["frozen"] is False
    assert blend.delta_stats()["delta_fraction"] == 0.0
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    assert loaded.delta_stats()["delta_fraction"] == 0.0
    loaded.add_table(Table("churn", ["a"], [(f"c{i}",) for i in range(9)]))
    stats = loaded.delta_stats()
    assert stats["frozen"] and stats["delta_rows"] > 0
    assert 0.0 < stats["delta_fraction"] < 1.0


# --------------------------------------------------------------------------
# Guard rails around the incremental writer
# --------------------------------------------------------------------------


def test_save_delta_requires_a_base(tmp_path):
    blend = Blend(_lake(11, num_tables=4), backend="column")
    blend.build_index()
    with pytest.raises(BlendError, match="no base snapshot"):
        blend.save_delta()
    with pytest.raises(BlendError, match="incremental='always'"):
        blend.save(tmp_path / "snap", incremental="always")
    with pytest.raises(BlendError, match="incremental must be"):
        blend.save(tmp_path / "snap", incremental="sometimes")


def test_save_delta_refuses_foreign_directory(tmp_path):
    blend = Blend(_lake(13, num_tables=4), backend="column")
    blend.build_index()
    blend.save(tmp_path / "snap")
    other = Blend(_lake(15, num_tables=4), backend="column")
    other.build_index()
    other.save(tmp_path / "other")
    with pytest.raises(SnapshotError, match="not.*loaded from"):
        blend.save_delta(tmp_path / "other")


def test_save_delta_refuses_changed_base(tmp_path):
    blend = Blend(_lake(17, num_tables=4), backend="column")
    blend.build_index()
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    loaded.add_table(Table("late", ["a"], [("v",)]))

    usurper = Blend(_lake(19, num_tables=4), backend="column")
    usurper.build_index()
    usurper.save(path, overwrite=True)

    with pytest.raises(SnapshotError, match="changed since"):
        loaded.save_delta()


def test_metadata_only_base_cannot_anchor_a_delta(tmp_path):
    lake = _lake(21, num_tables=4)
    blend = Blend(lake, backend="column")
    blend.build_index()
    path = blend.save(tmp_path / "snap", include_lake=False)
    assert blend._snapshot_base is None  # never adopted as a base
    loaded = Blend.load(path, lake=lake)
    loaded.add_table(Table("late", ["a"], [("v",)]))
    with pytest.raises(SnapshotError, match="include_lake=False"):
        loaded.save_delta(path)


def test_supplied_lake_refused_when_delta_present(tmp_path):
    lake = _lake(23, num_tables=4)
    blend = Blend(lake, backend="column")
    blend.build_index()
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    loaded.add_table(Table("late", ["a"], [("v",)]))
    loaded.save(path)
    with pytest.raises(SnapshotError, match="delta layer"):
        Blend.load(path, lake=lake)
    # delta=False restores the supplied-lake path (the base matches it).
    base_only = Blend.load(path, lake=lake, delta=False)
    assert base_only.lake is lake


# --------------------------------------------------------------------------
# Atomic full-save replace
# --------------------------------------------------------------------------


def test_overwrite_replaces_snapshot_atomically(tmp_path):
    first = Blend(_lake(25, num_tables=4), backend="column")
    first.build_index()
    path = first.save(tmp_path / "snap")
    first_id = read_manifest(path)["snapshot_id"]

    second = Blend(_lake(27, num_tables=5), backend="column")
    second.build_index()
    with pytest.raises(SnapshotError, match="non-empty"):
        second.save(path)
    second.save(path, overwrite=True)

    manifest = read_manifest(path)
    assert manifest["snapshot_id"] != first_id
    # no staging/retired residue beside the target
    assert [p.name for p in tmp_path.iterdir()] == ["snap"]
    loaded = Blend.load(path)
    assert loaded.lake.table_ids() == second.lake.table_ids()
    sql = "SELECT * FROM AllTables"
    assert sorted(loaded.db.execute(sql).rows) == sorted(second.db.execute(sql).rows)


def test_overwrite_replace_drops_stale_delta(tmp_path):
    """A full overwrite-save starts a clean generation: the old delta
    layer must not survive to be replayed over the new base."""
    blend = Blend(_lake(29, num_tables=4), backend="column")
    blend.build_index()
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    loaded.add_table(Table("late", ["a"], [("v",)]))
    loaded.save(path)
    assert read_delta_manifest(path) is not None

    loaded.save(path, overwrite=True, incremental="never")
    assert read_delta_manifest(path) is None
    reloaded = Blend.load(path)
    assert reloaded.lake.table_ids() == loaded.lake.table_ids()
