"""Snapshot subsystem tests: round-trip fidelity and failure modes.

The headline invariant: ``Blend.load(Blend.save(...))`` yields a system
functionally identical to the in-memory build it was saved from -- same
seeker results, exact ``LakeStatistics``, byte-identical sealed storage
arrays and (lazily rematerialised) index postings -- on both storage
backends and both hash widths; and a loaded deployment keeps its full
lifecycle (mutations after load preserve rebuild parity, with the
on-disk snapshot untouched -- copy-on-write).

The guard rails: corrupted, truncated, or version-mismatched snapshots
raise ``SnapshotError`` naming the offending file; so do backend /
hash-width / lake mismatches at load time. A bad snapshot must never
load into garbage results.
"""

import json
import random
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro import Blend, Database, Plan, Table
from repro.core.seekers import SeekerContext, Seekers
from repro.engine.storage.column_store import ColumnTable
from repro.errors import SnapshotError
from repro.index import IndexConfig, build_alltables
from repro.index.stats import LakeStatistics
from repro.lake import DataLake
from repro.lake.generators import CorpusConfig, generate_corpus
from repro.snapshot import FORMAT_VERSION, read_manifest

BACKEND_HASH = [("row", 63), ("row", 128), ("column", 63)]


def _lake(seed: int, num_tables: int = 12):
    lake = generate_corpus(
        CorpusConfig(
            name=f"snap{seed}", num_tables=num_tables, min_rows=5, max_rows=20, seed=seed
        )
    )
    return lake


def _random_table(rng: random.Random, name: str) -> Table:
    rows = []
    for _ in range(rng.randint(3, 10)):
        rows.append(
            (
                f"k{rng.randint(0, 25)}",
                rng.choice([rng.randint(0, 40), rng.random() * 5, 0, 1, None]),
                rng.choice(["shared", True, False, None, f"tok{rng.randint(0, 9)}"]),
            )
        )
    return Table(name, ["key", "num", "extra"], rows)


def _query_seekers(lake):
    table = lake.by_id(lake.table_ids()[0])
    values = [v for v in table.column_values(table.columns[0]) if v is not None]
    seekers = {
        "SC": Seekers.SC(values[:8], k=10),
        "KW": Seekers.KW(values[:8], k=10),
    }
    wide = [r[:2] for r in table.rows if all(v is not None for v in r[:2])]
    if table.num_columns >= 2 and len(wide) >= 2:
        seekers["MC"] = Seekers.MC(wide[:6], k=10)
    flags = table.numeric_columns()
    if any(flags) and not all(flags):
        seekers["C"] = Seekers.Correlation(
            table.column_values(table.columns[flags.index(False)]),
            table.column_values(table.columns[flags.index(True)]),
            k=10,
            min_support=2,
        )
    return seekers


def _results(context, seekers):
    return {
        kind: [(hit.table_id, hit.score) for hit in seeker.execute(context)]
        for kind, seeker in seekers.items()
    }


def _column_storage_state(table: ColumnTable) -> list[tuple]:
    state = []
    for column in table._seal():
        state.append(
            (
                None if column.codes is None else (column.codes.dtype.str, column.codes.tolist()),
                None if column.dictionary is None else list(column.dictionary),
                None if column.data is None else (column.data.dtype.str, column.data.tolist()),
                None if column.null is None else np.asarray(column.null).tolist(),
            )
        )
    return state


def _index_state(db: Database, table_name: str, columns) -> dict:
    table = db.table(table_name)
    state = {}
    for column in columns:
        table.index_lookup(column, [])  # forces lazy materialisation
        postings = table._indexes[column.lower()]
        state[column] = {value: list(positions) for value, positions in postings.items()}
    return state


def _storage_identical(db_a: Database, db_b: Database, table_name: str) -> None:
    if isinstance(db_a.table(table_name), ColumnTable):
        assert _column_storage_state(db_a.table(table_name)) == _column_storage_state(
            db_b.table(table_name)
        )
    else:
        assert db_a.table(table_name)._rows == db_b.table(table_name)._rows
    assert _index_state(db_a, table_name, ["CellValue", "TableId"]) == _index_state(
        db_b, table_name, ["CellValue", "TableId"]
    )


# --------------------------------------------------------------------------
# Round-trip fidelity
# --------------------------------------------------------------------------


@pytest.mark.parametrize("backend,hash_size", BACKEND_HASH)
def test_round_trip_identical(backend, hash_size, tmp_path):
    """save -> load reproduces seeker results, stats, and storage bytes."""
    config = IndexConfig(hash_size=hash_size)
    blend = Blend(_lake(3), backend=backend, index_config=config)
    blend.build_index()
    blend.train_optimizer(samples_per_type=3, seed=1)

    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)

    seekers = _query_seekers(blend.lake)
    assert _results(blend.context(), seekers) == _results(loaded.context(), seekers)
    assert loaded.stats == LakeStatistics.from_lake(blend.lake)
    assert loaded.lake.generation == blend.lake.generation
    assert loaded.lake.table_ids() == blend.lake.table_ids()
    assert loaded.index_config == config
    _storage_identical(blend.db, loaded.db, "AllTables")
    # the trained cost model travelled with the snapshot
    assert loaded.optimizer.cost_model.snapshot_state() == (
        blend.optimizer.cost_model.snapshot_state()
    )
    # optimizer behaviour is identical on a representative plan
    plan_before = blend.plan_for(Plan().add("kw", seekers["KW"]))
    plan_after = loaded.plan_for(Plan().add("kw", seekers["KW"]))
    assert plan_before.order == plan_after.order


@pytest.mark.parametrize("backend,hash_size", BACKEND_HASH)
@pytest.mark.parametrize("seed", [17, 29])
def test_round_trip_then_mutate_matches_fresh_build(backend, hash_size, seed, tmp_path):
    """Randomized property: build -> save -> load -> random lifecycle ops
    -> parity with a from-scratch build of the final lake (the loaded
    system is a first-class deployment, not a read-only replica)."""
    rng = random.Random(seed * 31 + hash_size)
    config = IndexConfig(hash_size=hash_size)
    blend = Blend(_lake(seed), backend=backend, index_config=config)
    blend.build_index()

    path = blend.save(tmp_path / "snap")
    manifest_bytes = (Path(path) / "manifest.json").read_bytes()
    loaded = Blend.load(path)

    counter = 0
    for _ in range(8):
        live = loaded.lake.table_ids()
        op = rng.choice(["add", "remove", "replace"])
        if op == "add" or len(live) <= 4:
            counter += 1
            loaded.add_table(_random_table(rng, f"snapmut{counter}"))
        elif op == "remove":
            loaded.remove_table(rng.choice(live))
        else:
            counter += 1
            loaded.replace_table(rng.choice(live), _random_table(rng, f"snaprep{counter}"))

    fresh_db = Database(backend=backend)
    build_alltables(loaded.lake, fresh_db, config)
    fresh_context = SeekerContext(db=fresh_db, lake=loaded.lake, hash_size=hash_size)
    seekers = _query_seekers(loaded.lake)
    assert _results(loaded.context(), seekers) == _results(fresh_context, seekers)

    sql = "SELECT * FROM AllTables"
    assert sorted(loaded.db.execute(sql).rows) == sorted(fresh_db.execute(sql).rows)
    loaded.compact_index()
    assert loaded.db.execute(sql).rows == fresh_db.execute(sql).rows
    _storage_identical(loaded.db, fresh_db, "AllTables")
    assert loaded.stats == LakeStatistics.from_lake(loaded.lake)

    # Copy-on-write: all that mutation never wrote a byte to the snapshot.
    assert (Path(path) / "manifest.json").read_bytes() == manifest_bytes
    reloaded = Blend.load(path)
    original = Blend(_lake(seed), backend=backend, index_config=config)
    original.build_index()
    assert sorted(reloaded.db.execute(sql).rows) == sorted(original.db.execute(sql).rows)


def test_load_with_supplied_lake_and_mismatch(tmp_path):
    """lake= skips the cell payload but is validated against the
    manifest's lake metadata (generation, slots, shapes)."""
    lake = _lake(5)
    blend = Blend(lake, backend="column")
    blend.build_index()
    path = blend.save(tmp_path / "snap", include_lake=False)

    loaded = Blend.load(path, lake=lake)
    seekers = _query_seekers(lake)
    assert _results(blend.context(), seekers) == _results(loaded.context(), seekers)

    with pytest.raises(SnapshotError, match="without the lake payload"):
        Blend.load(path)

    other = _lake(5)
    other.add(Table("drift", ["a"], [("x",)]))
    with pytest.raises(SnapshotError, match="does not match snapshot"):
        Blend.load(path, lake=other)


def test_snapshot_preserves_lifecycle_state(tmp_path):
    """A mid-lifecycle deployment (holes, tombstones not yet compacted)
    snapshots and restores exactly -- including the tombstone mask."""
    lake = DataLake("life")
    for i in range(8):
        lake.add(Table(f"t{i}", ["a"], [(f"v{i}_{j}",) for j in range(6)]))
    blend = Blend(lake, backend="column")
    blend.build_index()
    storage = blend.db.table("AllTables")
    storage.compact_threshold = 1.1  # keep tombstones resident
    blend.remove_table(2)
    blend.remove_table(5)
    assert storage._deleted is not None

    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    assert loaded.lake.table_ids() == blend.lake.table_ids()
    loaded_storage = loaded.db.table("AllTables")
    assert loaded_storage._num_deleted == storage._num_deleted
    assert np.array_equal(loaded_storage._deleted, storage._deleted)
    sql = "SELECT * FROM AllTables"
    assert loaded.db.execute(sql).rows == blend.db.execute(sql).rows
    # ids keep never-reusing after load
    new_id = loaded.add_table(Table("fresh", ["a"], [("y",)]))
    assert new_id == 8


def test_semantic_extension_round_trips(tmp_path):
    lake = _lake(7)
    blend = Blend(lake, backend="column")
    blend.build_index()
    blend.enable_semantic(dimensions=16)
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    probe = ["alpha", "beta"]
    assert loaded.semantic_search(probe, k=5).table_ids() == (
        blend.semantic_search(probe, k=5).table_ids()
    )
    assert loaded._semantic.snapshot_meta() == blend._semantic.snapshot_meta()


def test_semantic_config_flows_through_snapshot(tmp_path):
    """``IndexConfig(semantic=True)`` makes the vector extension part of
    the build contract: ``build_index`` constructs it, the manifest
    records it, and a load restores it without any ``enable_semantic``
    call -- identical to the explicitly-enabled deployment."""
    lake = _lake(19)
    config = IndexConfig(semantic=True, semantic_dimensions=16)
    blend = Blend(lake, backend="column", index_config=config)
    blend.build_index()
    assert blend._semantic is not None
    assert blend.db.has_table("AllVectors")

    explicit = Blend(_lake(19), backend="column")
    explicit.build_index()
    explicit.enable_semantic(dimensions=16)
    # enable_semantic back-fills the config, so both spellings converge.
    assert explicit.index_config.semantic is True
    assert explicit.index_config.semantic_dimensions == 16

    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    assert loaded.index_config == config
    probe = ["alpha", "beta"]
    assert (
        loaded.semantic_search(probe, k=5).table_ids()
        == blend.semantic_search(probe, k=5).table_ids()
        == explicit.semantic_search(probe, k=5).table_ids()
    )


@pytest.mark.parametrize("seed", [23, 41])
def test_semantic_delta_replay_matches_fresh_build(seed, tmp_path):
    """AllVectors is part of the base+delta lifecycle contract: mutations
    after load maintain the vector extension, an incremental save records
    them, and replaying the delta reproduces semantic results identical
    to a from-scratch build of the final lake (compared through the
    deterministic exact lane, which depends only on the stored vectors,
    not on graph insertion order)."""
    rng = random.Random(seed)
    config = IndexConfig(semantic=True, semantic_dimensions=16)
    blend = Blend(_lake(seed), backend="column", index_config=config)
    blend.build_index()
    path = blend.save(tmp_path / "snap")

    loaded = Blend.load(path)
    counter = 0
    for _ in range(6):
        live = loaded.lake.table_ids()
        op = rng.choice(["add", "remove", "replace"])
        if op == "add" or len(live) <= 4:
            counter += 1
            loaded.add_table(_random_table(rng, f"semmut{counter}"))
        elif op == "remove":
            loaded.remove_table(rng.choice(live))
        else:
            counter += 1
            loaded.replace_table(rng.choice(live), _random_table(rng, f"semrep{counter}"))
    loaded.save(path)  # incremental: delta.json beside the base

    replayed = Blend.load(path)
    fresh = Blend(replayed.lake, backend="column", index_config=config)
    fresh.build_index()

    probe = ["shared", "tok3", "k7"]
    for deployment in (loaded, replayed):
        assert (
            deployment.discover(probe, modalities=("semantic",), k=6, exact=True).table_ids()
            == fresh.discover(probe, modalities=("semantic",), k=6, exact=True).table_ids()
        )
    # The persisted relation itself replayed to the same sparse rows.
    sql = "SELECT * FROM AllVectors"
    assert sorted(replayed.db.execute(sql).rows) == sorted(fresh.db.execute(sql).rows)
    # Compaction is semantic-neutral.
    before = replayed.discover(probe, modalities=("semantic",), k=6, exact=True).table_ids()
    replayed.compact_index()
    assert (
        replayed.discover(probe, modalities=("semantic",), k=6, exact=True).table_ids()
        == before
    )


def test_allvectors_payload_corruption_names_file(tmp_path):
    """The AllVectors relation rides the same size+CRC gate as every
    other snapshot payload: a same-size bit flip in a vector payload is
    refused by file name, never loaded into silently-wrong similarity."""
    config = IndexConfig(semantic=True, semantic_dimensions=16)
    blend = Blend(_lake(31), backend="column", index_config=config)
    blend.build_index()
    path = Path(blend.save(tmp_path / "snap"))

    manifest = json.loads((path / "manifest.json").read_text())
    vectors_meta = next(
        meta for meta in manifest["tables"] if meta["name"] == "AllVectors"
    )
    rel = next(
        column_meta[key]
        for column_meta in vectors_meta["payload"]
        for key in ("data", "codes")
        if key in column_meta
    )
    target = path / rel
    raw = bytearray(target.read_bytes())
    raw[-1] ^= 0xFF
    target.write_bytes(bytes(raw))
    with pytest.raises(SnapshotError, match="checksum mismatch") as excinfo:
        Blend.load(path)
    assert rel in str(excinfo.value)


def test_shuffled_config_round_trips(tmp_path):
    config = IndexConfig(shuffle_rows=True, shuffle_seed=9)
    blend = Blend(_lake(11), backend="column", index_config=config)
    blend.build_index()
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    assert loaded.index_config == config
    sql = "SELECT * FROM AllTables"
    assert loaded.db.execute(sql).rows == blend.db.execute(sql).rows
    # maintenance on the loaded shuffled deployment still matches rebuild
    loaded.add_table(Table("shufadd", ["a"], [(f"s{i}",) for i in range(7)]))
    fresh = Database(backend="column")
    build_alltables(loaded.lake, fresh, config)
    assert sorted(loaded.db.execute(sql).rows) == sorted(fresh.execute(sql).rows)


# --------------------------------------------------------------------------
# Failure modes: every bad snapshot names its offending file
# --------------------------------------------------------------------------


@pytest.fixture()
def saved(tmp_path):
    blend = Blend(_lake(13), backend="column")
    blend.build_index()
    path = Path(blend.save(tmp_path / "snap"))
    return blend, path


def _payload_named(path: Path, suffix: str) -> str:
    manifest = json.loads((path / "manifest.json").read_text())
    return next(rel for rel in manifest["files"] if rel.endswith(suffix))


def test_missing_manifest_refused(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(SnapshotError, match="manifest.json"):
        Blend.load(tmp_path / "empty")


def test_truncated_payload_names_file(saved):
    _, path = saved
    rel = _payload_named(path, ".codes.npy")
    target = path / rel
    target.write_bytes(target.read_bytes()[:-7])
    with pytest.raises(SnapshotError, match="truncated") as excinfo:
        Blend.load(path)
    assert rel in str(excinfo.value)


def test_missing_payload_names_file(saved):
    _, path = saved
    rel = _payload_named(path, "counts.npy")
    (path / rel).unlink()
    with pytest.raises(SnapshotError, match="missing") as excinfo:
        Blend.load(path)
    assert rel in str(excinfo.value)


def test_checksum_mismatch_names_file(saved):
    """A same-size bit flip -- invisible to the size check -- fails the
    CRC verification instead of loading into garbage."""
    _, path = saved
    rel = _payload_named(path, ".data.npy")
    target = path / rel
    raw = bytearray(target.read_bytes())
    raw[-1] ^= 0xFF
    target.write_bytes(bytes(raw))
    with pytest.raises(SnapshotError, match="checksum mismatch") as excinfo:
        Blend.load(path)
    assert rel in str(excinfo.value)
    # verify=False skips the CRC pass by contract (mmap-only warm start);
    # the size gate still holds.
    Blend.load(path, verify=False)


def test_delisted_payload_refused(saved):
    """Removing a payload's manifest entry must not smuggle it past the
    size/CRC gate: unlisted files are refused, not loaded unverified."""
    _, path = saved
    rel = _payload_named(path, ".codes.npy")
    manifest = json.loads((path / "manifest.json").read_text())
    del manifest["files"][rel]
    (path / "manifest.json").write_text(json.dumps(manifest))
    target = path / rel
    raw = bytearray(target.read_bytes())
    raw[-1] ^= 0xFF  # same-size corruption the delisting would have hidden
    target.write_bytes(bytes(raw))
    with pytest.raises(SnapshotError, match="not listed") as excinfo:
        Blend.load(path)
    assert rel in str(excinfo.value)


def test_unpersisted_semantic_extension_round_trips(tmp_path):
    """enable_semantic(persist=False) keeps vectors in memory only;
    save() must persist them (a snapshot is the entire built system)
    rather than writing semantic parameters with no relation behind
    them."""
    blend = Blend(_lake(19), backend="column")
    blend.build_index()
    blend.enable_semantic(dimensions=16, persist=False)
    assert not blend.db.has_table("AllVectors")
    path = blend.save(tmp_path / "snap")
    loaded = Blend.load(path)
    assert loaded.db.has_table("AllVectors")
    probe = ["alpha", "beta"]
    assert loaded.semantic_search(probe, k=5).table_ids() == (
        blend.semantic_search(probe, k=5).table_ids()
    )


def test_version_bump_refused(saved):
    _, path = saved
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["format_version"] = FORMAT_VERSION + 1
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="format version") as excinfo:
        Blend.load(path)
    assert "manifest.json" in str(excinfo.value)


def test_manifest_garbage_refused(saved):
    _, path = saved
    (path / "manifest.json").write_text("{not json")
    with pytest.raises(SnapshotError, match="manifest"):
        Blend.load(path)


def test_backend_mismatch_refused(saved):
    _, path = saved
    with pytest.raises(SnapshotError, match="backend mismatch"):
        Blend.load(path, backend="row")


def test_hash_width_mismatch_refused(saved):
    _, path = saved
    with pytest.raises(SnapshotError, match="hash-width mismatch"):
        Blend.load(path, hash_size=128)


def test_inconsistent_manifest_hash_width_refused(saved):
    """A (tampered) manifest claiming 128-bit keys in a column-backend
    snapshot is structurally impossible and refused outright."""
    _, path = saved
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["index_config"]["hash_size"] = 128
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="cannot exist"):
        Blend.load(path)


# --------------------------------------------------------------------------
# Delta-layer corruption: crash recovery never loses the base
# --------------------------------------------------------------------------


@pytest.fixture()
def saved_delta(saved):
    """A base snapshot with one incremental save on top of it."""
    blend, path = saved
    loaded = Blend.load(path)
    loaded.add_table(Table("fresh_delta", ["a"], [(f"d{i}",) for i in range(5)]))
    loaded.remove_table(loaded.lake.table_ids()[0])
    loaded.save(path)
    return loaded, path


def _delta_payload(path: Path) -> str:
    delta = json.loads((path / "delta.json").read_text())
    return next(rel for rel in delta["files"] if rel.endswith(".pkl"))


def test_truncated_delta_payload_names_file_and_base_survives(saved_delta):
    _, path = saved_delta
    rel = _delta_payload(path)
    target = path / rel
    target.write_bytes(target.read_bytes()[:-5])
    with pytest.raises(SnapshotError, match="truncated") as excinfo:
        Blend.load(path)
    assert rel in str(excinfo.value)
    base = Blend.load(path, delta=False)  # crash recovery: base intact
    assert "fresh_delta" not in base.lake


def test_bitflipped_delta_payload_names_file_and_base_survives(saved_delta):
    _, path = saved_delta
    rel = _delta_payload(path)
    target = path / rel
    raw = bytearray(target.read_bytes())
    raw[-1] ^= 0xFF
    target.write_bytes(bytes(raw))
    with pytest.raises(SnapshotError, match="checksum mismatch") as excinfo:
        Blend.load(path)
    assert rel in str(excinfo.value)
    Blend.load(path, delta=False)


def test_missing_delta_payload_names_file_and_base_survives(saved_delta):
    _, path = saved_delta
    rel = _delta_payload(path)
    (path / rel).unlink()
    with pytest.raises(SnapshotError, match="missing") as excinfo:
        Blend.load(path)
    assert rel in str(excinfo.value)
    Blend.load(path, delta=False)


def test_half_written_delta_manifest_refused_and_base_survives(saved_delta):
    """A torn delta.json (the crash the write-to-temp + rename protocol
    prevents, simulated anyway) is refused by name, never half-replayed."""
    _, path = saved_delta
    target = path / "delta.json"
    target.write_text(target.read_text()[: len(target.read_text()) // 2])
    with pytest.raises(SnapshotError, match="delta.json"):
        Blend.load(path)
    Blend.load(path, delta=False)


def test_delta_version_bump_refused(saved_delta):
    _, path = saved_delta
    delta = json.loads((path / "delta.json").read_text())
    delta["format_version"] += 1
    (path / "delta.json").write_text(json.dumps(delta))
    with pytest.raises(SnapshotError, match="delta format version") as excinfo:
        Blend.load(path)
    assert "delta.json" in str(excinfo.value)
    Blend.load(path, delta=False)


def test_delta_base_id_mismatch_refused(saved_delta):
    """A delta.json copied beside a different base must never replay --
    its ops were diffed against another snapshot's slots."""
    _, path = saved_delta
    delta = json.loads((path / "delta.json").read_text())
    delta["base_id"] = "0" * 16
    (path / "delta.json").write_text(json.dumps(delta))
    with pytest.raises(SnapshotError, match="written against base snapshot"):
        Blend.load(path)
    Blend.load(path, delta=False)


def test_malformed_delta_op_refused(saved_delta):
    _, path = saved_delta
    delta = json.loads((path / "delta.json").read_text())
    delta["ops"].append({"op": "explode", "table_id": 3})
    (path / "delta.json").write_text(json.dumps(delta))
    with pytest.raises(SnapshotError, match="malformed op"):
        Blend.load(path)
    Blend.load(path, delta=False)


def test_dangling_delta_op_refused(saved_delta):
    """Structurally valid ops that don't fit the base (removing a slot
    that is already a hole) fail the load as a delta error, not as an
    internal lake crash."""
    _, path = saved_delta
    delta = json.loads((path / "delta.json").read_text())
    removed = next(op["table_id"] for op in delta["ops"] if op["op"] == "remove")
    delta["ops"].append({"op": "remove", "table_id": removed})
    (path / "delta.json").write_text(json.dumps(delta))
    with pytest.raises(SnapshotError, match="cannot replay"):
        Blend.load(path)
    Blend.load(path, delta=False)


def test_save_refuses_non_empty_directory(saved, tmp_path):
    """A full save into a populated directory that is NOT this
    deployment's base refuses rather than risk a torn overwrite (the
    base itself gets an incremental save instead -- see the delta
    tests)."""
    blend, path = saved
    other = tmp_path / "occupied"
    other.mkdir()
    (other / "precious.txt").write_text("do not clobber")
    with pytest.raises(SnapshotError, match="non-empty"):
        blend.save(other)
    assert (other / "precious.txt").read_text() == "do not clobber"


def test_save_requires_built_index(tmp_path):
    blend = Blend(_lake(2), backend="column")
    with pytest.raises(SnapshotError, match="build_index"):
        blend.save(tmp_path / "nope")


def test_read_manifest_reports_files(saved):
    """read_manifest is the cheap inspection path: version-checked
    structure with per-file size + CRC records."""
    _, path = saved
    manifest = read_manifest(path)
    assert manifest["format_version"] == FORMAT_VERSION
    assert manifest["backend"] == "column"
    for record in manifest["files"].values():
        assert set(record) == {"bytes", "crc32"}
    rel, record = next(iter(manifest["files"].items()))
    assert record["crc32"] == zlib.crc32((path / rel).read_bytes())
