"""End-to-end property pin for the tokenisation kernel (PR 7).

Randomised lakes -- with real BOOLEAN columns, bool/int duality
collisions, NULLs, numeric strings, and huge integral floats -- are
indexed through every ingest pipeline (scalar oracle, vectorised kernel,
sharded worker pool) on every valid backend x hash-width combination.
The bar: **byte-identical** ``AllTables`` relations and identical seeker
results, regardless of which pipeline built the index or which backend
stores it. This is the contract the README's "Ingest contract" section
promises: one canonical tokenisation, pipeline choice is invisible.
"""

import random

import pytest

from repro.core.seekers import SeekerContext, Seekers
from repro.engine import Database
from repro.index import IndexConfig, build_alltables
from repro.lake import DataLake, Table

# column backend + 128-bit hashes is rejected by the builder (128-bit
# super keys exceed the int64 SuperKey column) -- same valid matrix as
# the snapshot compatibility suite.
BACKEND_HASH = [("row", 63), ("row", 128), ("column", 63)]

PIPELINES = {
    "scalar": lambda hash_size: IndexConfig(vectorized=False, hash_size=hash_size),
    "vectorized": lambda hash_size: IndexConfig(hash_size=hash_size),
    "sharded": lambda hash_size: IndexConfig(
        workers=2, pin_workers=True, hash_size=hash_size
    ),
}


def _random_lake(seed: int, num_tables: int = 8) -> DataLake:
    """Lakes biased toward the kernel's hard cases: a guaranteed
    all-bool BOOLEAN column per table, 0/1-valued cells (the memo
    exclusion set), floats that normalise to ints, integral floats past
    2**53, NaN, numeric strings, and unicode casing traps."""
    rng = random.Random(seed)
    vocabulary = [f"tok{i}" for i in range(20)] + ["Mixed Case", " pad ", "İ", "ß"]
    lake = DataLake(f"kernel_prop_{seed}")
    for t in range(num_tables):
        width = rng.randint(2, 5)
        rows = []
        for _ in range(rng.randint(2, 16)):
            row = [rng.choice([True, False, None])]  # typed BOOLEAN column
            for _ in range(width - 1):
                roll = rng.random()
                if roll < 0.08:
                    row.append(None)
                elif roll < 0.18:
                    row.append(rng.choice([0, 1, rng.randint(0, 5), 2**60]))
                elif roll < 0.28:
                    row.append(rng.choice([True, False]))
                elif roll < 0.40:
                    row.append(
                        rng.choice(
                            [0.0, 1.0, 2.5, 20.0, float(2**53 + 2), float("nan")]
                        )
                    )
                elif roll < 0.48:
                    row.append(rng.choice(["", "  ", "42", "3.0", "3.5"]))
                else:
                    row.append(rng.choice(vocabulary))
            rows.append(tuple(row))
        lake.add(Table(f"t{t}", [f"c{i}" for i in range(width)], rows))
    return lake


def _build(lake, backend, config):
    db = Database(backend=backend)
    build_alltables(lake, db, config)
    return db


def _query_seekers(lake):
    """One seeker of each family, probing values drawn from the lake --
    including the BOOLEAN column, so boolean tokens flow through the
    online phase too."""
    table = lake.by_id(lake.table_ids()[0])
    strings = [v for v in table.column_values(table.columns[-1]) if v is not None]
    bools = [v for v in table.column_values(table.columns[0]) if v is not None]
    seekers = {
        "SC": Seekers.SC((strings + bools + [True, False])[:8], k=10),
        "KW": Seekers.KW((strings or ["tok0"])[:8], k=10),
    }
    wide = [r[:2] for r in table.rows if all(v is not None for v in r[:2])]
    if len(wide) >= 2:
        seekers["MC"] = Seekers.MC(wide[:6], k=10)
    return seekers


def _results(db, lake, hash_size):
    context = SeekerContext(db=db, lake=lake, hash_size=hash_size)
    return {
        kind: [(hit.table_id, hit.score) for hit in seeker.execute(context)]
        for kind, seeker in _query_seekers(lake).items()
    }


class TestPipelineParityProperty:
    @pytest.mark.parametrize("seed", [3, 17, 88])
    @pytest.mark.parametrize(
        "backend,hash_size", BACKEND_HASH, ids=lambda v: str(v)
    )
    def test_alltables_and_seekers_identical_across_pipelines(
        self, seed, backend, hash_size
    ):
        lake = _random_lake(seed)
        reference_db = _build(lake, backend, PIPELINES["scalar"](hash_size))
        reference_rows = reference_db.execute("SELECT * FROM AllTables").rows
        assert reference_rows, "property lake produced an empty index"
        reference_results = _results(reference_db, lake, hash_size)
        for name in ("vectorized", "sharded"):
            db = _build(lake, backend, PIPELINES[name](hash_size))
            rows = db.execute("SELECT * FROM AllTables").rows
            assert rows == reference_rows, f"{name} diverged from the scalar oracle"
            assert _results(db, lake, hash_size) == reference_results, name

    @pytest.mark.parametrize("seed", [3, 17, 88])
    def test_boolean_tokens_identical_across_backends(self, seed):
        """The tentpole regression pin, end to end: the BOOLEAN column's
        tokens ('true'/'false') and every seeker answer must be the same
        whether the lake is indexed into the row store or the column
        store (which surfaces booleans as a typed logical view)."""
        lake = _random_lake(seed)
        per_backend = {}
        for backend in ("row", "column"):
            db = _build(lake, backend, IndexConfig())
            per_backend[backend] = (
                db.execute("SELECT * FROM AllTables").rows,
                _results(db, lake, 63),
            )
        assert per_backend["row"] == per_backend["column"]
        tokens = {row[0] for row in per_backend["row"][0]}
        assert "true" in tokens or "false" in tokens  # booleans really indexed
        assert not tokens & {"True", "False", "0.0", "1.0"}

    def test_boolean_seeker_probe_hits_both_backends(self):
        """Probing with Python bools must find the tables that contain
        them, identically on both backends."""
        lake = DataLake(
            "bool_probe",
            [
                Table("flags", ["f"], [(True,), (False,), (None,)] * 4),
                Table("words", ["w"], [("x",), ("y",)] * 4),
            ],
        )
        hits = {}
        for backend in ("row", "column"):
            db = _build(lake, backend, IndexConfig())
            context = SeekerContext(db=db, lake=lake, hash_size=63)
            hits[backend] = [
                (h.table_id, h.score)
                for h in Seekers.SC([True, False], k=5).execute(context)
            ]
        assert hits["row"] == hits["column"]
        assert hits["row"], "boolean probe found no tables"
        assert hits["row"][0][0] == 0  # the flags table wins
