"""Smoke tests for the micro-benchmark harness (``bench_index_build.py``,
``bench_seeker.py``, ``bench_maintenance.py``, ``bench_snapshot.py``,
``bench_sharded.py``, ``run_bench.py``): tiny lakes, well-formed JSON
payloads, and the committed artefacts' schemas and acceptance bars."""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS_DIR))

import bench_maintenance  # noqa: E402
import bench_seeker  # noqa: E402
import bench_sharded  # noqa: E402
import bench_snapshot  # noqa: E402
from bench_index_build import PHASES, format_report, run_benchmark  # noqa: E402


@pytest.fixture(scope="module")
def results():
    return run_benchmark(seed=3, scale=0.05)


def test_all_phases_present(results):
    assert set(results) >= set(PHASES)


def test_payload_well_formed(results, tmp_path):
    for numbers in results.values():
        assert numbers["seconds"] >= 0
        assert numbers["rows_per_sec"] > 0
    payload = json.dumps(results, indent=2)
    (tmp_path / "BENCH_index.json").write_text(payload)
    assert json.loads(payload) == results


def test_report_renders(results):
    text = format_report(results)
    assert "build speedup" in text and "ingest speedup" in text


def test_committed_artifact_schema():
    artifact = BENCHMARKS_DIR.parent / "BENCH_index.json"
    assert artifact.exists(), "BENCH_index.json must be committed (run run_bench.py)"
    payload = json.loads(artifact.read_text())
    assert set(payload) >= set(PHASES)
    for numbers in payload.values():
        assert set(numbers) == {"seconds", "rows_per_sec"}
    # The PR's acceptance bar, as measured on the committed run.
    speedup = payload["build_scalar"]["seconds"] / payload["build_vectorized"]["seconds"]
    assert speedup >= 5.0


def test_run_bench_cli(tmp_path):
    from run_bench import main

    out = tmp_path / "BENCH_index.json"
    assert main(["--seed", "3", "--scale", "0.05", "--output", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert set(payload) >= set(PHASES)


def test_workers_axis_disabled(tmp_path):
    """``--workers 0`` drops the parallel phase but keeps the rest."""
    results = run_benchmark(seed=3, scale=0.05, workers=0)
    assert not any(phase.startswith("build_parallel") for phase in results)
    assert "build_vectorized" in results


class TestCheckOnly:
    """``run_bench.py --check-only``: the CI parity smoke."""

    def test_cli_runs_all_suites(self, capsys):
        from run_bench import main

        assert main(["--check-only", "--suite", "all", "--seed", "3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "[index] index build parity OK" in out
        assert "[seeker] MC seeker oracle parity OK" in out
        assert "[maintenance] lifecycle parity OK" in out
        assert "[snapshot] snapshot round-trip parity OK" in out
        assert "[serving] serving parity OK" in out
        assert "[sharded] scatter-gather parity OK" in out

    def test_index_divergence_raises(self, monkeypatch):
        """The build-parity assertion is live: break the sharded merge
        (in the parent process, so the check is pool-independent) and the
        smoke must fail."""
        import bench_index_build
        from repro.index import alltables

        monkeypatch.setattr(alltables, "_merge_and_insert", lambda db, config, parts: 0)
        with pytest.raises(AssertionError, match="build parity violated"):
            bench_index_build.run_check(seed=3, scale=0.05)

    def test_seeker_divergence_raises(self, monkeypatch):
        from repro.core.seekers import MultiColumnSeeker

        monkeypatch.setattr(
            MultiColumnSeeker,
            "validate_batch",
            lambda self, table_ids, row_ids, context: (table_ids[:0], row_ids[:0]),
        )
        with pytest.raises(AssertionError, match="divergence"):
            bench_seeker.run_check(seed=3, scale=0.1)


class TestSeekerSuite:
    """The seeker benchmark: runs end-to-end on a tiny lake (asserting
    the scalar-oracle parity internally), and the committed
    ``BENCH_seeker.json`` meets the PR's acceptance bar."""

    @pytest.fixture(scope="class")
    def seeker_results(self):
        return bench_seeker.run_benchmark(seed=3, scale=0.1)

    def test_phases_and_schema(self, seeker_results):
        assert set(seeker_results) >= set(bench_seeker.PHASES)
        for numbers in seeker_results.values():
            assert set(numbers) == {"seconds", "queries_per_sec"}
            assert numbers["seconds"] >= 0
            assert numbers["queries_per_sec"] > 0
        assert json.loads(json.dumps(seeker_results)) == seeker_results

    def test_report_renders(self, seeker_results):
        assert "MC end-to-end speedup" in bench_seeker.format_report(seeker_results)

    def test_oracle_divergence_raises(self, monkeypatch):
        """The in-run parity assertion is live, not decorative."""
        from repro.core.seekers import MultiColumnSeeker

        monkeypatch.setattr(
            MultiColumnSeeker,
            "validate_batch",
            lambda self, table_ids, row_ids, context: (table_ids[:0], row_ids[:0]),
        )
        with pytest.raises(AssertionError, match="divergence"):
            bench_seeker.run_benchmark(seed=3, scale=0.1)

    def test_run_bench_cli_seeker_suite(self, tmp_path):
        from run_bench import main

        out = tmp_path / "BENCH_seeker.json"
        args = ["--suite", "seeker", "--seed", "3", "--scale", "0.1", "--output", str(out)]
        assert main(args) == 0
        payload = json.loads(out.read_text())
        assert set(payload) >= set(bench_seeker.PHASES)
        for numbers in payload.values():
            assert set(numbers) == {"seconds", "queries_per_sec"}

    def test_committed_artifact_meets_acceptance_bar(self):
        artifact = BENCHMARKS_DIR.parent / "BENCH_seeker.json"
        assert artifact.exists(), "BENCH_seeker.json must be committed (run_bench --suite seeker)"
        payload = json.loads(artifact.read_text())
        assert set(payload) >= set(bench_seeker.PHASES)
        for numbers in payload.values():
            assert set(numbers) == {"seconds", "queries_per_sec"}
        # >= 3x MC end-to-end throughput over the seed scalar phases.
        speedup = payload["mc_scalar"]["seconds"] / payload["mc_vectorized"]["seconds"]
        assert speedup >= 3.0

    @pytest.mark.slow
    def test_full_scale_benchmark(self):
        """Benchmark-scale run (tier-2): the speedup holds at the
        committed artefact's lake size, not just the smoke lake."""
        results = bench_seeker.run_benchmark(seed=bench_seeker.DEFAULT_SEED, scale=1.0)
        speedup = results["mc_scalar"]["seconds"] / results["mc_vectorized"]["seconds"]
        assert speedup >= 3.0


class TestMaintenanceSuite:
    """The lifecycle maintenance benchmark + its CI parity smoke."""

    @pytest.fixture(scope="class")
    def maintenance_results(self):
        return bench_maintenance.run_benchmark(seed=3, scale=0.08)

    def test_phases_and_schema(self, maintenance_results):
        assert set(maintenance_results) == set(bench_maintenance.PHASES)
        for numbers in maintenance_results.values():
            assert set(numbers) == {"seconds", "rows_per_sec"}
            assert numbers["seconds"] >= 0
            assert numbers["rows_per_sec"] > 0
        assert json.loads(json.dumps(maintenance_results)) == maintenance_results

    def test_report_renders(self, maintenance_results):
        text = bench_maintenance.format_report(maintenance_results)
        assert "maintenance" in text and "maintenance_compact" in text

    def test_committed_artifact_has_maintenance_row(self):
        payload = json.loads((BENCHMARKS_DIR.parent / "BENCH_index.json").read_text())
        assert set(payload) >= set(bench_maintenance.PHASES)
        assert payload["maintenance"]["rows_per_sec"] > 0

    def test_check_smoke_passes(self):
        summary = bench_maintenance.run_check(seed=3, scale=0.1)
        assert "lifecycle parity OK" in summary

    def test_parity_divergence_raises(self, monkeypatch):
        """The lifecycle-parity assertion is live: break deindexing and
        the smoke must fail."""
        from repro.core import system

        monkeypatch.setattr(
            system, "deindex_table", lambda table_id, db, config=None: 0
        )
        with pytest.raises(AssertionError, match="lifecycle parity violated"):
            bench_maintenance.run_check(seed=3, scale=0.1)

    def test_artifact_merge_preserves_sibling_rows(self, tmp_path, monkeypatch):
        """Suites sharing BENCH_index.json must not clobber each other."""
        import run_bench

        out = tmp_path / "BENCH_index.json"
        out.write_text(json.dumps({"build_scalar": {"seconds": 1.0, "rows_per_sec": 2.0}}))
        assert run_bench.main(
            ["--suite", "maintenance", "--seed", "3", "--scale", "0.08",
             "--output", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["build_scalar"] == {"seconds": 1.0, "rows_per_sec": 2.0}
        assert set(payload) >= set(bench_maintenance.PHASES)


class TestSnapshotSuite:
    """The snapshot benchmark (save / mmap warm start) + its CI smoke."""

    @pytest.fixture(scope="class")
    def snapshot_results(self):
        return bench_snapshot.run_benchmark(seed=3, scale=0.08)

    def test_phases_and_schema(self, snapshot_results):
        assert set(snapshot_results) == set(bench_snapshot.PHASES)
        for numbers in snapshot_results.values():
            assert set(numbers) == {"seconds", "rows_per_sec"}
            assert numbers["seconds"] >= 0
            assert numbers["rows_per_sec"] > 0
        assert json.loads(json.dumps(snapshot_results)) == snapshot_results

    def test_report_renders(self, snapshot_results):
        text = bench_snapshot.format_report(snapshot_results)
        assert "warm-start speedup" in text

    def test_committed_artifact_meets_acceptance_bar(self):
        payload = json.loads((BENCHMARKS_DIR.parent / "BENCH_index.json").read_text())
        assert set(payload) >= set(bench_snapshot.PHASES)
        # The PR's acceptance bar: mmap load >= 10x the vectorized cold
        # build on the committed bench lake (seed 71).
        speedup = (
            payload["snapshot_cold_build"]["seconds"]
            / payload["snapshot_load"]["seconds"]
        )
        assert speedup >= 10.0

    def test_check_smoke_passes(self):
        summary = bench_snapshot.run_check(seed=3, scale=0.1)
        assert "snapshot round-trip parity OK" in summary

    def test_round_trip_divergence_raises(self, monkeypatch):
        """The round-trip assertion is live: a loader that mangles the
        restored index must fail the smoke."""
        import repro.snapshot as snapshot_module

        real = snapshot_module.load_blend

        def mangled(cls, path, **kwargs):
            blend = real(cls, path, **kwargs)
            blend.db.delete_rows("AllTables", "TableId", [0])
            return blend

        monkeypatch.setattr(snapshot_module, "load_blend", mangled)
        with pytest.raises(AssertionError, match="diverge"):
            bench_snapshot.run_check(seed=3, scale=0.1)


class TestShardedSuite:
    """The scatter-gather benchmark: end-to-end on a tiny lake (asserting
    coordinator-vs-oracle parity internally) + its CI smoke."""

    @pytest.fixture(scope="class")
    def sharded_results(self):
        return bench_sharded.run_benchmark(seed=3, scale=0.08)

    def test_phases_and_schema(self, sharded_results):
        assert set(sharded_results) == set(bench_sharded.PHASES)
        for numbers in sharded_results.values():
            assert numbers["seconds"] >= 0
            assert numbers["queries_per_sec"] > 0
        assert json.loads(json.dumps(sharded_results)) == sharded_results

    def test_report_renders(self, sharded_results):
        text = bench_sharded.format_report(sharded_results)
        assert "scatter-gather over 4 shards" in text

    def test_committed_artifact_has_sharded_rows(self):
        payload = json.loads((BENCHMARKS_DIR.parent / "BENCH_serving.json").read_text())
        assert set(payload) >= set(bench_sharded.PHASES)
        for phase in bench_sharded.PHASES:
            assert payload[phase]["queries_per_sec"] > 0

    def test_check_smoke_passes(self):
        summary = bench_sharded.run_check(seed=3, scale=0.1)
        assert "scatter-gather parity OK" in summary

    def test_merge_divergence_raises(self, monkeypatch):
        """The parity assertion is live: a coordinator that silently
        drops one shard's partials from the merge must fail the smoke."""
        from repro.serving import sharded as sharded_module

        real = sharded_module.merge_partials
        monkeypatch.setattr(
            sharded_module,
            "merge_partials",
            lambda parts, k: real(parts[:-1], k) if len(parts) > 1 else real(parts, k),
        )
        with pytest.raises(AssertionError, match="diverged"):
            bench_sharded.run_check(seed=3, scale=0.1)
