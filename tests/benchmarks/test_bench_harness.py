"""Smoke test for the indexing micro-benchmark harness
(``benchmarks/bench_index_build.py`` + ``run_bench.py``): tiny lake,
well-formed ``BENCH_index.json`` payload, and the committed artefact's
schema."""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS_DIR))

from bench_index_build import PHASES, format_report, run_benchmark  # noqa: E402


@pytest.fixture(scope="module")
def results():
    return run_benchmark(seed=3, scale=0.05)


def test_all_phases_present(results):
    assert set(results) >= set(PHASES)


def test_payload_well_formed(results, tmp_path):
    for numbers in results.values():
        assert numbers["seconds"] >= 0
        assert numbers["rows_per_sec"] > 0
    payload = json.dumps(results, indent=2)
    (tmp_path / "BENCH_index.json").write_text(payload)
    assert json.loads(payload) == results


def test_report_renders(results):
    text = format_report(results)
    assert "build speedup" in text and "ingest speedup" in text


def test_committed_artifact_schema():
    artifact = BENCHMARKS_DIR.parent / "BENCH_index.json"
    assert artifact.exists(), "BENCH_index.json must be committed (run run_bench.py)"
    payload = json.loads(artifact.read_text())
    assert set(payload) >= set(PHASES)
    for numbers in payload.values():
        assert set(numbers) == {"seconds", "rows_per_sec"}
    # The PR's acceptance bar, as measured on the committed run.
    speedup = payload["build_scalar"]["seconds"] / payload["build_vectorized"]["seconds"]
    assert speedup >= 5.0


def test_run_bench_cli(tmp_path):
    from run_bench import main

    out = tmp_path / "BENCH_index.json"
    assert main(["--seed", "3", "--scale", "0.05", "--output", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert set(payload) >= set(PHASES)
