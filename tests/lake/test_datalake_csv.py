"""DataLake container and CSV round-trips."""

import pytest

from repro.errors import LakeError
from repro.lake import DataLake, Table
from repro.lake.csvio import parse_cell, read_table, render_cell, write_table


@pytest.fixture
def lake():
    lake = DataLake("demo")
    lake.add(Table("alpha", ["a"], [(1,), (2,)]))
    lake.add(Table("beta", ["b", "c"], [("x", 1.5)]))
    return lake


class TestDataLake:
    def test_ids_are_insertion_ordered(self, lake):
        assert lake.id_of("alpha") == 0
        assert lake.id_of("beta") == 1
        assert lake.name_of(1) == "beta"

    def test_by_id_and_name(self, lake):
        assert lake.by_id(0) is lake.by_name("alpha")

    def test_contains_and_len(self, lake):
        assert "alpha" in lake
        assert "gamma" not in lake
        assert len(lake) == 2

    def test_duplicate_name_rejected(self, lake):
        with pytest.raises(LakeError):
            lake.add(Table("alpha", ["z"], []))

    def test_unknown_lookups(self, lake):
        with pytest.raises(LakeError):
            lake.by_id(99)
        with pytest.raises(LakeError):
            lake.by_name("ghost")

    def test_stats(self, lake):
        stats = lake.stats()
        assert stats.num_tables == 2
        assert stats.num_columns == 3
        assert stats.num_rows == 3
        assert stats.num_cells == 4

    def test_save_load_round_trip(self, lake, tmp_path):
        lake.save(tmp_path)
        loaded = DataLake.load(tmp_path)
        assert len(loaded) == 2
        assert loaded.by_name("alpha").rows == [(1,), (2,)]
        assert loaded.by_name("beta").rows == [("x", 1.5)]

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(LakeError):
            DataLake.load(tmp_path / "missing")


class TestCsvCells:
    def test_parse_int_float_text_null(self):
        assert parse_cell("3") == 3
        assert parse_cell("3.5") == 3.5
        assert parse_cell("abc") == "abc"
        assert parse_cell("") is None

    def test_render_inverse(self):
        for value in (3, 3.5, "abc", None):
            assert parse_cell(render_cell(value)) == value

    def test_render_integral_float(self):
        assert render_cell(4.0) == "4"


class TestCsvTables:
    def test_round_trip_with_nulls(self, tmp_path):
        table = Table("t", ["a", "b"], [(1, None), (None, "x")])
        path = tmp_path / "t.csv"
        write_table(table, path)
        loaded = read_table(path)
        assert loaded.rows == [(1, None), (None, "x")]
        assert loaded.name == "t"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(LakeError):
            read_table(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        table = read_table(path)
        assert table.columns == ["a", "b"]
        assert table.num_rows == 0
