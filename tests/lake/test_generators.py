"""Benchmark generators: determinism, structure, and ground-truth sanity."""

import pytest

from repro.lake.generators import (
    CorpusConfig,
    generate_corpus,
    make_correlation_benchmark,
    make_imputation_benchmark,
    make_join_benchmark,
    make_multicolumn_benchmark,
    make_union_benchmark,
    value_frequencies,
)
from repro.lake.generators.vocabulary import POOLS, Vocabulary
from repro.lake.table import normalize_cell


class TestVocabulary:
    def test_deterministic_under_seed(self):
        a = Vocabulary(7)
        b = Vocabulary(7)
        assert [a.person_name() for _ in range(5)] == [b.person_name() for _ in range(5)]

    def test_synthetic_pool_distinct(self):
        pool = Vocabulary(1).synthetic_pool(200)
        assert len(pool) == len(set(pool)) == 200

    def test_zipf_skews_towards_head(self):
        vocab = Vocabulary(3)
        pool = POOLS["city"]
        draws = [vocab.zipf_choice(pool, alpha=1.5) for _ in range(500)]
        head = sum(1 for d in draws if d == pool[0])
        tail = sum(1 for d in draws if d == pool[-1])
        assert head > tail

    def test_code_format(self):
        assert Vocabulary(0).code("sku", 4).startswith("sku-")


class TestCorpusGenerator:
    def test_deterministic(self):
        a = generate_corpus(CorpusConfig(num_tables=10, seed=5))
        b = generate_corpus(CorpusConfig(num_tables=10, seed=5))
        assert [t.rows for t in a] == [t.rows for t in b]

    def test_different_seeds_differ(self):
        a = generate_corpus(CorpusConfig(num_tables=10, seed=5))
        b = generate_corpus(CorpusConfig(num_tables=10, seed=6))
        assert [t.rows for t in a] != [t.rows for t in b]

    def test_shape_bounds(self):
        config = CorpusConfig(num_tables=15, min_rows=3, max_rows=9, min_columns=2, max_columns=4)
        lake = generate_corpus(config)
        assert len(lake) == 15
        for table in lake:
            assert 3 <= table.num_rows <= 9
            assert 2 <= table.num_columns <= 4

    def test_vocabularies_shared_across_tables(self):
        """Cross-table token overlap must exist, else discovery is moot."""
        lake = generate_corpus(CorpusConfig(num_tables=20, seed=1))
        frequencies = value_frequencies(lake)
        assert any(count >= 5 for count in frequencies.values())


class TestJoinBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_join_benchmark(num_tables=25, query_sizes=(5, 25), queries_per_size=3)

    def test_query_sizes_respected(self, bench):
        sizes = sorted({q.size for q in bench.queries})
        assert sizes[0] <= 5 and sizes[-1] >= 20

    def test_ground_truth_ranked_by_overlap(self, bench):
        query = bench.queries[0]
        truth = bench.ground_truth(query, 10)
        overlaps = dict(bench.exact_overlaps(query))
        scores = [overlaps[t] for t in truth]
        assert scores == sorted(scores, reverse=True)
        assert all(score > 0 for score in scores)

    def test_ground_truth_nonempty(self, bench):
        assert bench.ground_truth(bench.queries[0], 5)


class TestMultiColumnBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_multicolumn_benchmark(num_queries=2, distractor_tables=5)

    def test_aligned_tables_have_joinable_rows(self, bench):
        query = bench.queries[0]
        aligned_id = bench.lake.id_of("mc_bench_q0_aligned0")
        assert bench.joinable_rows(query, aligned_id) > 0

    def test_shuffled_tables_rarely_joinable(self, bench):
        query = bench.queries[0]
        shuffled_id = bench.lake.id_of("mc_bench_q0_shuffled0")
        aligned_id = bench.lake.id_of("mc_bench_q0_aligned0")
        assert bench.joinable_rows(query, shuffled_id) < bench.joinable_rows(
            query, aligned_id
        )


class TestUnionBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_union_benchmark(num_seeds=4, partitions_per_seed=3, distractor_tables=6)

    def test_families_have_expected_size(self, bench):
        for query in bench.queries:
            assert len(bench.ground_truth(query)) == 2  # 3 partitions - self

    def test_queries_are_in_lake(self, bench):
        for query in bench.queries:
            assert query in bench.lake

    def test_family_members_share_values(self, bench):
        query = bench.queries[0]
        query_tokens = {
            normalize_cell(v)
            for _, _, v in bench.lake.by_name(query).iter_cells()
        }
        for member_id in bench.ground_truth(query):
            member_tokens = {
                normalize_cell(v)
                for _, _, v in bench.lake.by_id(member_id).iter_cells()
            }
            assert query_tokens & member_tokens


class TestCorrelationBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_correlation_benchmark(
            num_queries=2, num_entities=50, tables_per_query=4, rows_per_table=40,
            distractor_tables=4,
        )

    def test_ground_truth_prefers_planted_tables(self, bench):
        query = bench.queries[0]
        truth = bench.ground_truth(query, 3)
        planted = {
            bench.lake.id_of(f"corr_bench_q0_t{i}") for i in range(4)
        }
        assert set(truth) <= planted

    def test_exact_correlations_bounded(self, bench):
        for _, _, coefficient in bench.exact_correlations(bench.queries[0]):
            assert 0.0 <= coefficient <= 1.0 + 1e-9

    def test_mixed_regime_has_numeric_keys(self):
        bench = make_correlation_benchmark(
            num_queries=2, num_entities=30, key_regime="mixed", rows_per_table=20,
            distractor_tables=2,
        )
        assert bench.queries[1].key_is_numeric
        assert not bench.queries[0].key_is_numeric


class TestImputationBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_imputation_benchmark(num_queries=2, distractor_tables=5)

    def test_complete_tables_in_ground_truth(self, bench):
        query = bench.queries[0]
        truth = bench.ground_truth(query)
        for copy in range(3):
            assert bench.lake.id_of(f"impute_bench_q0_full{copy}") in truth

    def test_answers_align_with_query_keys(self, bench):
        query = bench.queries[0]
        assert len(query.answers) == len(query.query_keys)
