"""Table model, cell normalisation, and type inference."""

import pytest

from repro.errors import LakeError
from repro.lake.table import (
    Table,
    is_numeric_cell,
    normalize_cell,
    numeric_value,
)


class TestNormalizeCell:
    def test_strings_lowercased_and_stripped(self):
        assert normalize_cell("  Tom Riddle ") == "tom riddle"

    def test_empty_and_none_are_null(self):
        assert normalize_cell(None) is None
        assert normalize_cell("") is None
        assert normalize_cell("   ") is None

    def test_integers(self):
        assert normalize_cell(42) == "42"

    def test_integral_floats_minimal_form(self):
        assert normalize_cell(3.0) == "3"

    def test_fractional_floats(self):
        assert normalize_cell(2.5) == "2.5"

    def test_nan_and_inf_are_null(self):
        assert normalize_cell(float("nan")) is None
        assert normalize_cell(float("inf")) is None

    def test_booleans(self):
        assert normalize_cell(True) == "true"
        assert normalize_cell(False) == "false"


class TestNumericCells:
    def test_numbers(self):
        assert is_numeric_cell(3)
        assert is_numeric_cell(2.5)
        assert is_numeric_cell("17.5")

    def test_non_numbers(self):
        assert not is_numeric_cell("abc")
        assert not is_numeric_cell(True)
        assert not is_numeric_cell(None)

    def test_numeric_value(self):
        assert numeric_value("3.5") == 3.5
        assert numeric_value(4) == 4.0
        assert numeric_value("x") is None
        assert numeric_value(None) is None
        assert numeric_value(True) is None


class TestTable:
    @pytest.fixture
    def table(self):
        return Table(
            "t",
            ["name", "count", "mixed"],
            [("a", 1, "x"), ("b", 2, 3), ("c", 3, 4), ("d", None, 5)],
        )

    def test_shape(self, table):
        assert table.num_rows == 4
        assert table.num_columns == 3

    def test_column_values(self, table):
        assert table.column_values("count") == [1, 2, 3, None]

    def test_unknown_column(self, table):
        with pytest.raises(LakeError):
            table.column_values("ghost")

    def test_iter_cells(self, table):
        cells = list(table.iter_cells())
        assert len(cells) == 12
        assert cells[0] == (0, 0, "a")

    def test_project(self, table):
        projected = table.project(["count", "name"], name="p")
        assert projected.columns == ["count", "name"]
        assert projected.rows[0] == (1, "a")

    def test_head(self, table):
        assert table.head(2).num_rows == 2

    def test_numeric_inference(self, table):
        # 'mixed' is 3/4 numeric = 75 % < 80 % threshold.
        assert table.numeric_columns() == [False, True, False]

    def test_numeric_inference_with_numeric_strings(self):
        table = Table("t", ["c"], [("1",), ("2",), ("3",)])
        assert table.is_numeric_column("c")

    def test_distinct_count_normalises(self):
        table = Table("t", ["c"], [("A",), ("a ",), ("b",), (None,)])
        assert table.distinct_count("c") == 2

    def test_ragged_rows_rejected(self):
        with pytest.raises(LakeError):
            Table("t", ["a", "b"], [(1,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(LakeError):
            Table("t", ["a", "a"], [])

    def test_empty_name_rejected(self):
        with pytest.raises(LakeError):
            Table("", ["a"], [])
