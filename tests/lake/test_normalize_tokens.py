"""Parity suite for the batched tokenisation kernel (PR 7).

``normalize_cell`` is the per-cell oracle; ``normalize_tokens`` (the
memoised C-map lane) and ``_normalize_tokens_typed`` (the NumPy
type-dispatched lane) must both be byte-identical to it cell-for-cell,
on adversarial inputs chosen to break exactly the shortcuts a batch
kernel is tempted to take: unicode whitespace and casing traps, NULs
(where NumPy's fixed-width U dtype silently diverges from ``str``),
bool/int duality collisions, numeric strings vs numbers, and
integer-valued floats beyond 2**53 and 2**63.
"""

import math
import random
from decimal import Decimal
from fractions import Fraction

import numpy as np
import pytest

from repro.lake.table import (
    Table,
    _normalize_tokens_typed,
    normalize_cell,
    normalize_tokens,
)

KERNELS = [normalize_tokens, _normalize_tokens_typed]


def _assert_matches_oracle(kernel, cells):
    got = kernel(cells)
    want = [normalize_cell(v) for v in cells]
    diverging = [
        (i, repr(cells[i]), got[i], want[i])
        for i in range(len(cells))
        if got[i] != want[i]
    ]
    assert not diverging, f"{kernel.__name__} diverged: {diverging[:5]}"


# Padded out beyond the kernel's small-batch scalar shortcut (n < 32) so
# the batch lanes really run.
_PAD = [f"pad{i}" for i in range(40)]


class TestAdversarialTokens:
    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_unicode_whitespace_and_casing(self, kernel):
        """str.strip() strips more than ASCII space (\\x1c-\\x1f, \\x85,
        NBSP, ideographic space); str.lower() expands U+0130 'İ' to two
        codepoints and leaves ß alone. The kernel must agree exactly."""
        cells = _PAD + [
            "  Mixed Case  ",
            "\x1c\x1d\x1e\x1ftok\x1c",
            "\x85leading-next-line",
            "\xa0nbsp\xa0",
            "　ideographic　",
            "İstanbul",
            "İ",
            "ı",  # dotless i lowers to itself
            "STRASSE",
            "straße",
            "ß",  # lower() keeps ß (casefold would expand -- not used)
            "ǅungla",  # titlecase digraph
            "ȺȾ",  # lowering grows UTF-8 byte length
            "　ＦＵＬＬ　Ｗｉｄｔｈ　",  # full-width forms stay full-width
            "",
            " ",
            "\t\n\r\v\f",
        ]
        _assert_matches_oracle(kernel, cells)

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_nul_bytes_survive_exactly(self, kernel):
        """NULs are where NumPy U-dtype round trips lose data (trailing
        NUL) or strip wrongly (interior NUL): every placement must still
        match Python ``str.strip().lower()`` exactly."""
        cells = _PAD + ["a\x00", "\x00a", "  \x00  ", "\x00", "ab\x00cd", "a\x00\x00"]
        _assert_matches_oracle(kernel, cells)

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_numeric_strings_vs_numbers(self, kernel):
        """'3.0' the string keeps its decimal point; 3.0 the float takes
        the minimal integer rendering. The kernel must keep them apart."""
        cells = _PAD + ["3.0", 3.0, "3", 3, "3.5", 3.5, " 3.0 ", "0", 0, "1", 1]
        tokens = kernel(cells)
        _assert_matches_oracle(kernel, cells)
        assert tokens[len(_PAD) : len(_PAD) + 4] == ["3.0", "3", "3", "3"]

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_bool_int_duality_never_aliases(self, kernel):
        """True == 1 and False == 0 in Python; the tokens must still be
        'true'/'1' and 'false'/'0' no matter how the batch interleaves
        and repeats them (the memo-aliasing trap)."""
        cells = _PAD + [True, 1, 1.0, "1", False, 0, 0.0, "0"] * 8
        tokens = kernel(cells)
        _assert_matches_oracle(kernel, cells)
        assert tokens[len(_PAD) : len(_PAD) + 8] == [
            "true", "1", "1", "1", "false", "0", "0", "0",
        ]

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_non_finite_floats_are_null(self, kernel):
        cells = _PAD + [float("nan"), float("inf"), float("-inf"), -0.0, 0.0]
        tokens = kernel(cells)
        _assert_matches_oracle(kernel, cells)
        assert tokens[len(_PAD) : len(_PAD) + 3] == [None, None, None]
        assert tokens[len(_PAD) + 3 :] == ["0", "0"]

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_exotic_types_take_the_oracle(self, kernel):
        """Types outside the cell contract -- including ones whose
        equality collides with numbers the kernel may have memoised
        (Decimal('2.50') == 2.5) and NumPy scalars -- must still token
        exactly like normalize_cell."""
        cells = _PAD + [
            2.5,
            Decimal("2.50"),
            Decimal("2"),
            Fraction(5, 2),
            np.int64(7),
            np.float64(2.0),
            np.bool_(True),
            b"bytes",
            (1, 2),
        ]
        _assert_matches_oracle(kernel, cells)

    def test_unhashable_cells_route_to_typed_lane(self):
        cells = _PAD + [["list"], {"d": 1}, {1, 2}, "plain", 7]
        _assert_matches_oracle(normalize_tokens, cells)

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_full_bmp_sweep(self, kernel):
        """Every BMP codepoint, bare and whitespace-wrapped: the string
        lane may not diverge from Python semantics on any of them."""
        chars = [chr(cp) for cp in range(0x0, 0x10000)]
        _assert_matches_oracle(kernel, chars)
        _assert_matches_oracle(kernel, [f"  {c}  " for c in chars])

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_randomised_mixed_batches(self, kernel):
        rng = random.Random(2025)
        pool = [
            None, True, False, 0, 1, -1, 7, 2**70, -(2**70),
            0.0, -0.0, 1.0, 2.5, float("nan"), float("inf"),
            1e16, 1e300, 5e-324, 0.1, float(2**63), float(2**64),
            "", " ", "tok", "  PAD  ", "İ", "ß", "a\x00b", "3.0",
        ]
        for _ in range(50):
            cells = [rng.choice(pool) for _ in range(rng.randint(0, 400))]
            _assert_matches_oracle(kernel, cells)


class TestHugeIntegralFloats:
    """Satellite audit: ``normalize_cell``'s float path for
    integer-valued floats beyond 2**53 (where float cannot represent
    every integer) and beyond 2**63 (where the kernel's int64 lane cannot
    hold the value).

    The pinned behavior: ``int(value)`` widening is *exact* at any
    magnitude (it returns the float's true mathematical value), so the
    token of a float always equals the token of the exactly-equal int --
    and only that int. This agrees with the engine's typed numeric-probe
    path (``normalize_numeric_probes`` keeps floats as floats and
    compares exactly), so tokenisation and numeric membership never
    disagree about which values are "the same".
    """

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_beyond_2_53_exact_rendering(self, kernel):
        f = float(2**53 + 1)  # rounds to 2**53: int(f) must say so
        cells = _PAD + [f, float(2**53), 2**53, 2**53 + 1]
        tokens = kernel(cells)
        _assert_matches_oracle(kernel, cells)
        base = len(_PAD)
        assert tokens[base] == tokens[base + 1] == str(2**53)
        assert tokens[base + 2] == str(2**53)
        assert tokens[base + 3] == str(2**53 + 1)  # the int keeps its value

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_beyond_2_63_exact_rendering(self, kernel):
        """Integral floats outside int64 range cannot take the int64
        lane; they must still render their exact integer value."""
        cells = _PAD + [float(2**63), float(2**64), -float(2**64), 1e300, -1e300]
        tokens = kernel(cells)
        _assert_matches_oracle(kernel, cells)
        base = len(_PAD)
        assert tokens[base] == str(2**63)
        assert tokens[base + 1] == str(2**64)
        assert tokens[base + 2] == str(-(2**64))
        assert tokens[base + 3] == str(int(1e300))

    def test_token_equality_tracks_exact_numeric_equality(self):
        """For any integral float f and int k: same token iff f == k
        (Python's int/float comparison is exact). Unequal neighbours
        beyond 2**53 -- which a double cannot distinguish from the float
        -- keep distinct tokens because the int lane never narrows."""
        for exponent in (53, 60, 64, 100):
            k = 2**exponent
            f = float(k)
            assert f == k and normalize_cell(f) == normalize_cell(k)
            assert f != k + 1 and normalize_cell(f) != normalize_cell(k + 1)
        # And the probe path agrees these are exact comparisons:
        from repro.engine.storage.column_store import normalize_numeric_probes

        probes = normalize_numeric_probes([float(2**53)])
        assert 2**53 + 1 not in probes and float(2**53) in probes

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.__name__)
    def test_int64_boundary_floats(self, kernel):
        """Exact int64 boundary: -2**63 is representable and must take
        the fast lane; 2**63 is out of range and must not overflow."""
        cells = _PAD + [
            -float(2**63),
            float(2**63),
            float(2**63) - 2048.0,  # largest integral double below 2**63
            math.nextafter(float(2**63), 0.0),
        ]
        _assert_matches_oracle(kernel, cells)


class TestTableIntegration:
    def test_normalized_cells_uses_kernel_and_matches_scalar(self):
        table = Table(
            "t",
            ["a", "b", "c"],
            [("  X  ", True, 2.0), (None, 0, "3.0"), ("İ", float("nan"), 2**70)] * 20,
        )
        tokens = table.normalized_cells()
        assert tokens == [
            normalize_cell(v) for row in table.rows for v in row
        ]
        assert table.tokens_if_cached() is tokens  # cached

    def test_small_batches_take_scalar_shortcut(self):
        cells = ["A ", 1, None]
        assert normalize_tokens(cells) == ["a", "1", None]
