"""The Table normalized-token cache: parity with the uncached path,
population by the indexing lifecycle, and invalidation on mutation."""

import copy
import random

import numpy as np
import pytest

from repro import Blend, DataLake, Table
from repro.index.alltables import IndexConfig
from repro.index.stats import table_token_counts
from repro.lake.table import normalize_cell


def _messy_table(name: str, seed: int) -> Table:
    rng = random.Random(seed)
    cells = [
        "alpha", "Beta ", " gamma", None, True, False, 0, 1, "1", "0",
        1.0, 0.0, 3.5, float("nan"), "", "  ", -7, "MiXeD CaSe",
    ]
    rows = [
        [rng.choice(cells), rng.choice(cells), rng.randint(0, 9)]
        for _ in range(30)
    ]
    return Table(name, ["a", "b", "c"], rows)


def _index_dump(blend: Blend):
    result = blend.db.execute(
        "SELECT CellValue, TableId, ColumnId, RowId, SuperKey, Quadrant "
        "FROM AllTables WHERE RowId >= 0"
    )
    return sorted(map(tuple, result.rows))


def test_normalized_cells_matches_scalar_loop():
    table = _messy_table("m", 1)
    tokens = table.normalized_cells()
    expected = [normalize_cell(v) for row in table.rows for v in row]
    assert tokens == expected
    assert table.tokens_if_cached() is tokens  # cached, same object


def test_set_cell_invalidates_caches():
    table = _messy_table("m", 2)
    table.normalized_cells()
    table.numeric_columns()
    table.set_cell(3, 1, "Replaced Value")
    assert table.tokens_if_cached() is None
    assert table._numeric_cache is None
    width = table.num_columns
    assert table.normalized_cells()[3 * width + 1] == "replaced value"


def test_set_cell_bounds_checked():
    table = _messy_table("m", 3)
    with pytest.raises(Exception):
        table.set_cell(999, 0, "x")
    with pytest.raises(Exception):
        table.set_cell(0, 99, "x")


@pytest.mark.parametrize("shuffle", [False, True])
def test_cached_index_build_parity(shuffle):
    """Byte-identical AllTables whether or not tables carry the cache."""
    config = IndexConfig(shuffle_rows=shuffle)
    tables = [_messy_table(f"t{i}", 10 + i) for i in range(5)]

    lake_plain = DataLake()
    for table in tables:
        lake_plain.add(copy.deepcopy(table))
    blend_plain = Blend(lake_plain, index_config=config)
    blend_plain.build_index()

    lake_cached = DataLake()
    for table in tables:
        warmed = copy.deepcopy(table)
        warmed.normalized_cells()
        lake_cached.add(warmed)
    blend_cached = Blend(lake_cached, index_config=config)
    blend_cached.build_index()

    assert _index_dump(blend_plain) == _index_dump(blend_cached)
    assert blend_plain.stats.frequencies == blend_cached.stats.frequencies


def test_index_table_populates_cache_and_readd_reuses_it():
    """Lifecycle: add_table populates the cache; remove + re-add hits it
    and stays byte-identical to a fresh build."""
    lake = DataLake()
    for i in range(3):
        lake.add(_messy_table(f"t{i}", 20 + i))
    blend = Blend(lake)
    blend.build_index()

    extra = _messy_table("extra", 99)
    assert extra.tokens_if_cached() is None
    table_id = blend.add_table(copy.deepcopy(extra))
    added = blend.lake.by_id(table_id)
    assert added.tokens_if_cached() is not None  # populated by index_table

    removed = blend.remove_table(table_id)
    assert removed.tokens_if_cached() is not None
    blend.add_table(removed)  # cached fast path

    fresh_lake = DataLake()
    for i in range(3):
        fresh_lake.add(_messy_table(f"t{i}", 20 + i))
    fresh_lake.add(copy.deepcopy(extra))
    fresh = Blend(fresh_lake)
    fresh.build_index()
    # Table ids differ (the re-add consumed an id); compare value rows
    # per table name via seeker-visible content: token counts.
    plain_counts = dict(zip(*table_token_counts(copy.deepcopy(extra))))
    cached_counts = dict(zip(*table_token_counts(removed)))
    assert plain_counts == cached_counts


def test_table_token_counts_cached_vs_uncached():
    table = _messy_table("m", 7)
    plain_tokens, plain_counts = table_token_counts(copy.deepcopy(table))
    warmed = copy.deepcopy(table)
    warmed.normalized_cells()
    cached_tokens, cached_counts = table_token_counts(warmed)
    assert plain_tokens == cached_tokens
    assert np.array_equal(plain_counts, cached_counts)
