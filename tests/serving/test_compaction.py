"""Background compaction: the delta layer folds into a fresh base
generation and reaches the serving tier through the existing hot-swap /
per-shard routing -- with zero failed requests and answers byte-identical
to a from-scratch build of the final lake."""

import random
import threading
import time

import pytest

from repro import Blend, DataLake, Seekers, Table
from repro.errors import ServingError
from repro.serving import (
    BatchScheduler,
    DeploymentManager,
    ShardCoordinator,
    SnapshotCompactor,
    compact_snapshot,
)
from repro.snapshot import read_delta_manifest, save_sharded

from tests.serving.conftest import build_blend

EXTRA_ROWS = [
    ["zanzibar", "tanzania", 5],
    ["berlin", "germany", 7],
    ["paris", "france", 9],
] * 4


def _queries():
    return [
        Seekers.SC(["berlin", "paris", "zanzibar"], k=6),
        Seekers.KW(["tanzania", "germany"], k=5),
        Seekers.MC([("berlin", "germany"), ("zanzibar", "tanzania")], k=6),
    ]


def _served_with_delta(tmp_path):
    """A deployment loaded from disk with live mutations on top."""
    blend = build_blend(seed=31)
    path = blend.save(tmp_path / "base")
    served = Blend.load(path)
    served.add_table(Table("extra", ["city", "country", "pop"], EXTRA_ROWS))
    served.remove_table(served.lake.table_ids()[0])
    return served, path


def test_compact_snapshot_rebuilds_clean_generation(tmp_path):
    served, path = _served_with_delta(tmp_path)
    served.save_delta()
    compacted = compact_snapshot(path, tmp_path / "gen")
    assert compacted.delta_stats()["delta_fraction"] == 0.0
    assert read_delta_manifest(tmp_path / "gen") is None
    assert compacted.lake.table_ids() == served.lake.table_ids()

    fresh = Blend(DataLake("oracle"), backend="column")
    for table_id in served.lake.table_ids():
        fresh.lake.add_at(table_id, served.lake.by_id(table_id))
    fresh.build_index()
    for query in _queries():
        assert list(query.execute(compacted.context())) == list(
            query.execute(fresh.context())
        )
    # The compacted deployment keeps ingesting: its base is the new dir.
    assert compacted._snapshot_base.path == str((tmp_path / "gen").resolve())


def test_compactor_threshold_and_swap(tmp_path):
    served, path = _served_with_delta(tmp_path)
    manager = DeploymentManager(served)
    compactor = SnapshotCompactor(manager, tmp_path / "gens", threshold=0.99)
    assert 0.0 < compactor.delta_fraction() < 0.99
    assert compactor.compact_once() is None  # below threshold

    report = compactor.compact_once(force=True)
    assert report is not None and report.swap is not None and report.swap.drained
    assert report.destination.endswith("gen-0001")
    current = manager.current().blend
    assert current is not served
    assert current.delta_stats()["delta_fraction"] == 0.0
    assert current.lake.table_ids() == served.lake.table_ids()
    assert compactor.reports == [report]

    # Next cycle numbers the following generation.
    current.add_table(Table("more", ["city", "country", "pop"], EXTRA_ROWS))
    report2 = compactor.compact_once(force=True)
    assert report2.destination.endswith("gen-0002")
    assert report2.source.endswith("gen-0001")


def test_compactor_refuses_baseless_deployment(tmp_path):
    manager = DeploymentManager(build_blend(seed=37))
    compactor = SnapshotCompactor(manager, tmp_path / "gens")
    with pytest.raises(ServingError, match="no base snapshot"):
        compactor.compact_once(force=True)
    with pytest.raises(ServingError, match="threshold"):
        SnapshotCompactor(manager, tmp_path / "gens", threshold=0.0)


def test_compactor_discards_superseded_rebuild(tmp_path):
    """If another swap lands while a cycle is rebuilding, the stale
    rebuild must be discarded, never deployed over the newer state."""
    served, path = _served_with_delta(tmp_path)
    manager = DeploymentManager(served)
    compactor = SnapshotCompactor(manager, tmp_path / "gens", threshold=0.01)

    interloper = build_blend(seed=41)
    original_swap = manager.swap

    def racing_swap(blend, drain_timeout=30.0):
        # runs inside compact_once, after the rebuild: simulate the race
        # by checking the guard fired instead.
        raise AssertionError("swap must not be reached once superseded")

    # Supersede mid-cycle: flip the manager right after the delta save by
    # patching compact_snapshot's entry point via the manager pointer.
    import repro.serving.compaction as compaction_module

    real_compact = compaction_module.compact_snapshot

    def compact_and_supersede(source, destination, **kwargs):
        result = real_compact(source, destination, **kwargs)
        original_swap(interloper, drain_timeout=5.0)
        return result

    compaction_module.compact_snapshot = compact_and_supersede
    try:
        manager.swap = racing_swap
        assert compactor.compact_once(force=True) is None
    finally:
        compaction_module.compact_snapshot = real_compact
        manager.swap = original_swap
    assert manager.current().blend is interloper
    assert not (tmp_path / "gens" / "gen-0001").exists()  # rebuild discarded


def test_compaction_under_sustained_load_zero_failures(tmp_path):
    """The acceptance bar: a full compaction cycle (delta save, rebuild,
    hot-swap) under concurrent query load completes with zero failed
    requests, and every post-compaction answer matches the pre-compaction
    deployment."""
    served, path = _served_with_delta(tmp_path)
    expected = {q.kind: list(q.execute(served.context())) for q in _queries()}
    manager = DeploymentManager(served)
    compactor = SnapshotCompactor(manager, tmp_path / "gens", threshold=0.01)
    failures: list[str] = []
    answered = [0]
    stop = threading.Event()

    with BatchScheduler(
        manager, workers=3, max_batch=16, batch_window=0.002
    ) as scheduler:

        def load(worker_id: int) -> None:
            i = worker_id
            while not stop.is_set():
                queries = _queries()
                query = queries[i % len(queries)]
                try:
                    outcome = scheduler.execute(query)
                except Exception as exc:  # pragma: no cover - assertion target
                    failures.append(f"{query.kind}: {type(exc).__name__}: {exc}")
                    continue
                answered[0] += 1
                if list(outcome.result) != expected[query.kind]:
                    failures.append(f"{query.kind} diverged mid-compaction")
                i += 1

        threads = [threading.Thread(target=load, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.15)
        report = compactor.compact_once(force=True)
        time.sleep(0.15)
        stop.set()
        for t in threads:
            t.join()

    assert failures == []
    assert report is not None and report.swap is not None and report.swap.drained
    assert answered[0] > 0
    # Post-swap the compacted generation serves identical answers.
    for query in _queries():
        assert list(query.execute(manager.current().blend.context())) == (
            expected[query.kind]
        )


def test_background_loop_compacts_past_threshold(tmp_path):
    served, path = _served_with_delta(tmp_path)
    manager = DeploymentManager(served)
    compactor = SnapshotCompactor(manager, tmp_path / "gens", threshold=0.01)
    compactor.start(interval=0.05)
    try:
        deadline = time.monotonic() + 10.0
        while not compactor.reports and time.monotonic() < deadline:
            time.sleep(0.02)
    finally:
        compactor.stop()
    assert compactor.reports, "background loop never compacted"
    assert manager.current().blend.delta_stats()["delta_fraction"] == 0.0
    with pytest.raises(ServingError, match="already running"):
        compactor.start()
        compactor.start()
    compactor.stop()


# --------------------------------------------------------------------------
# Sharded: per-shard compaction, independent flips
# --------------------------------------------------------------------------


def _sharded_with_mutations(tmp_path, num_shards=3):
    blend = build_blend(seed=43, tables=12)
    root = tmp_path / "shards"
    save_sharded(blend, root, num_shards=num_shards)
    coordinator = ShardCoordinator.load(root)
    rng = random.Random(7)
    coordinator.add_table(Table("extra", ["city", "country", "pop"], EXTRA_ROWS))
    coordinator.remove_table(rng.choice(coordinator.table_ids()))
    victim = rng.choice(coordinator.table_ids())
    coordinator.replace_table(
        victim, Table(f"swap{victim}", ["city", "country", "pop"], EXTRA_ROWS[:6])
    )
    return coordinator


def _solo_oracle(coordinator: ShardCoordinator) -> Blend:
    oracle = Blend(DataLake("oracle"), backend="column")
    for shard in range(coordinator.num_shards):
        shard_blend = coordinator.workers[shard].manager.current().blend
        for table_id in shard_blend.lake.table_ids():
            oracle.lake.add_at(table_id, shard_blend.lake.by_id(table_id))
    oracle.build_index()
    return oracle


def test_compact_shard_parity_and_independence(tmp_path):
    coordinator = _sharded_with_mutations(tmp_path)
    try:
        before = {
            q.kind: list(coordinator.execute(q)) for q in _queries()
        }
        generation = coordinator.generation
        # Compact every shard, one at a time -- each flips independently.
        for shard in range(coordinator.num_shards):
            stats = coordinator.shard_delta_stats(shard)
            assert stats["frozen"]
            coordinator.compact_shard(shard, tmp_path / f"gen1-shard{shard}")
            assert coordinator.shard_delta_stats(shard)["delta_fraction"] == 0.0
        assert coordinator.generation > generation
        after = {q.kind: list(coordinator.execute(q)) for q in _queries()}
        assert after == before

        oracle = _solo_oracle(coordinator)
        for query in _queries():
            assert list(coordinator.execute(query)) == list(
                query.execute(oracle.context())
            )

        # Compacted shards keep taking lifecycle ops and delta saves.
        coordinator.add_table(
            Table("post", ["city", "country", "pop"], EXTRA_ROWS[:3])
        )
        oracle2 = _solo_oracle(coordinator)
        for query in _queries():
            assert list(coordinator.execute(query)) == list(
                query.execute(oracle2.context())
            )
    finally:
        coordinator.close()


def test_compact_shard_validates_shard_index(tmp_path):
    coordinator = _sharded_with_mutations(tmp_path, num_shards=2)
    try:
        with pytest.raises(ServingError, match="no such shard"):
            coordinator.compact_shard(9, tmp_path / "nope")
        with pytest.raises(ServingError, match="no such shard"):
            coordinator.shard_delta_stats(-1)
    finally:
        coordinator.close()
