"""Batching-scheduler correctness: batches form and return exactly what
one-at-a-time execution would, deadlines fail cleanly without poisoning
workers, errors stay per-request, and coalescing answers duplicates from
one execution."""

import threading
import time

import pytest

from repro import Seekers
from repro.core.results import ResultList
from repro.errors import RequestTimeoutError, ServingError
from repro.serving import BatchScheduler, DeploymentManager

from tests.serving.conftest import CITIES, COUNTRIES, PAIRS


class SlowSeeker:
    """Unbatchable stub that holds a worker for *seconds*."""

    kind = "SLOW"
    k = 1

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds

    def execute(self, context):
        time.sleep(self.seconds)
        return ResultList([])


class BoomSeeker:
    kind = "BOOM"
    k = 1

    def execute(self, context):
        raise RuntimeError("boom")


def test_batched_results_identical_to_serial(served_blend):
    """Hold the single worker busy so queued requests form one batch;
    every answer must equal direct Seeker.execute."""
    manager = DeploymentManager(served_blend)
    context = served_blend.context()
    seekers = [
        Seekers.SC(["berlin", "paris", "rome"], k=5),
        Seekers.SC(["germany", "france"], k=4),
        Seekers.SC(["oslo", "cairo", "madrid"], k=3),
    ]
    expected = [seeker.execute(context) for seeker in seekers]
    with BatchScheduler(
        manager, workers=1, max_batch=8, batch_window=0.05
    ) as scheduler:
        blocker = scheduler.submit(SlowSeeker(0.15))
        time.sleep(0.02)  # let the worker pick the blocker up
        pending = [scheduler.submit(seeker) for seeker in seekers]
        outcomes = [p.result() for p in pending]
        blocker.result()
    for outcome, want in zip(outcomes, expected):
        assert outcome.result == want
        assert outcome.generation == served_blend.lake.generation
        assert outcome.batch_size == len(seekers)
    hist = scheduler.stats.snapshot()["batch_size_histogram"]
    assert hist.get(str(len(seekers))) == 1


def test_mixed_modalities_batch_per_kind(served_blend):
    manager = DeploymentManager(served_blend)
    context = served_blend.context()
    seekers = [
        Seekers.SC(["berlin", "paris"], k=4),
        Seekers.KW(["italy", "rome"], k=3),
        Seekers.MC([("berlin", "germany"), ("oslo", "norway")], k=5),
        Seekers.KW(["egypt"], k=2),
        Seekers.MC([("paris", "france")], k=3),
    ]
    expected = [seeker.execute(context) for seeker in seekers]
    with BatchScheduler(
        manager, workers=2, max_batch=8, batch_window=0.01
    ) as scheduler:
        pending = [scheduler.submit(seeker) for seeker in seekers]
        outcomes = [p.result() for p in pending]
    for outcome, want in zip(outcomes, expected):
        assert outcome.result == want


def test_timeout_is_clean_and_worker_survives(served_blend):
    """A request that misses its deadline raises RequestTimeoutError for
    that request only; the worker then serves the next request fine."""
    manager = DeploymentManager(served_blend)
    context = served_blend.context()
    with BatchScheduler(
        manager, workers=1, max_batch=1, batch_window=0.0
    ) as scheduler:
        blocker = scheduler.submit(SlowSeeker(0.3))
        time.sleep(0.02)
        doomed = scheduler.submit(Seekers.SC(["berlin"], k=3), timeout=0.05)
        with pytest.raises(RequestTimeoutError):
            doomed.result()
        blocker.result()
        # Worker is healthy: a fresh request completes correctly.
        seeker = Seekers.SC(["paris", "france"], k=4)
        outcome = scheduler.execute(seeker)
        assert outcome.result == seeker.execute(context)
    stats = scheduler.stats.snapshot()
    assert stats["timeouts"] == 1
    assert stats["errors"] == 0


def test_error_isolated_per_request(served_blend):
    """One failing request cannot take down its batch neighbours."""
    manager = DeploymentManager(served_blend)
    context = served_blend.context()
    good = Seekers.SC(["berlin", "rome"], k=4)
    expected = good.execute(context)
    with BatchScheduler(
        manager, workers=1, max_batch=4, batch_window=0.05
    ) as scheduler:
        blocker = scheduler.submit(SlowSeeker(0.1))
        time.sleep(0.02)
        bad = scheduler.submit(BoomSeeker())
        fine = scheduler.submit(good)
        with pytest.raises(RuntimeError):
            bad.result()
        assert fine.result().result == expected
        blocker.result()
    assert scheduler.stats.snapshot()["errors"] == 1


def test_identical_requests_coalesce(served_blend):
    manager = DeploymentManager(served_blend)
    context = served_blend.context()
    seeker_proto = Seekers.SC(["berlin", "paris"], k=5)
    expected = seeker_proto.execute(context)
    key = ("sc", tuple(seeker_proto.tokens), 5)
    with BatchScheduler(
        manager, workers=1, max_batch=16, batch_window=0.05
    ) as scheduler:
        blocker = scheduler.submit(SlowSeeker(0.15))
        time.sleep(0.02)
        pending = [
            scheduler.submit(Seekers.SC(["berlin", "paris"], k=5), key=key)
            for _ in range(5)
        ]
        outcomes = [p.result() for p in pending]
        blocker.result()
    for outcome in outcomes:
        assert outcome.result == expected
    assert scheduler.stats.snapshot()["coalesced"] == 4


def test_submit_after_close_raises(served_blend):
    manager = DeploymentManager(served_blend)
    scheduler = BatchScheduler(manager, workers=1)
    scheduler.close()
    with pytest.raises(ServingError):
        scheduler.submit(Seekers.SC(["berlin"], k=1))


def test_concurrent_mixed_load_all_correct(served_blend):
    """A burst of concurrent callers across modalities: every answer
    equals direct execution, no request is lost."""
    import random

    rng = random.Random(77)
    manager = DeploymentManager(served_blend)
    context = served_blend.context()
    queries = []
    for _ in range(40):
        roll = rng.random()
        if roll < 0.4:
            queries.append(Seekers.SC(rng.sample(CITIES + COUNTRIES, 3), k=5))
        elif roll < 0.7:
            queries.append(Seekers.KW(rng.sample(CITIES + COUNTRIES, 4), k=4))
        else:
            queries.append(Seekers.MC(rng.sample(PAIRS, 2), k=5))
    expected = [seeker.execute(context) for seeker in queries]
    outcomes = [None] * len(queries)

    with BatchScheduler(
        manager, workers=3, max_batch=16, batch_window=0.005
    ) as scheduler:

        def fire(i: int) -> None:
            outcomes[i] = scheduler.execute(queries[i])

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(len(queries))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    for i, (outcome, want) in enumerate(zip(outcomes, expected)):
        assert outcome is not None, f"request {i} lost"
        assert outcome.result == want, f"request {i} diverged"
    assert scheduler.stats.snapshot()["completed"] == len(queries)
