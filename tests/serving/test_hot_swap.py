"""Zero-downtime hot-swap: under sustained concurrent load, no request
fails, no request mixes generations (every answer matches what ITS
generation's index returns), and post-swap answers match a fresh build
of the new-generation lake."""

import copy
import threading
import time

import pytest

from repro import Blend, Seekers, Table
from repro.core.results import ResultList
from repro.errors import StaleContextError
from repro.serving import BatchScheduler, DeploymentManager

from tests.serving.conftest import build_blend, make_lake

EXTRA_ROWS = [
    ["zanzibar", "tanzania", 5],
    ["berlin", "germany", 7],
    ["paris", "france", 9],
] * 6


def _queries():
    return [
        Seekers.SC(["berlin", "paris", "zanzibar"], k=6),
        Seekers.KW(["tanzania", "germany"], k=5),
        Seekers.MC([("berlin", "germany"), ("zanzibar", "tanzania")], k=6),
    ]


@pytest.fixture(scope="module")
def generations():
    """(old blend, new blend, fresh rebuild of the new lake)."""
    old = build_blend(seed=23)
    new = build_blend(seed=23)
    new.add_table(Table("extra", ["city", "country", "pop"], copy.deepcopy(EXTRA_ROWS)))
    fresh = Blend(make_lake(23, extra_rows=copy.deepcopy(EXTRA_ROWS)), backend="column")
    fresh.build_index()
    return old, new, fresh


def test_generations_are_distinct(generations):
    old, new, fresh = generations
    assert old.lake.generation != new.lake.generation
    assert new.lake.generation == fresh.lake.generation


def test_swap_under_sustained_load_zero_failures(generations):
    old, new, fresh = generations
    expected = {
        old.lake.generation: [q.execute(old.context()) for q in _queries()],
        new.lake.generation: [q.execute(new.context()) for q in _queries()],
    }
    manager = DeploymentManager(old)
    failures: list[str] = []
    observations: list[tuple[int, int]] = []
    stop = threading.Event()

    with BatchScheduler(
        manager, workers=3, max_batch=16, batch_window=0.002
    ) as scheduler:

        def load(worker_id: int) -> None:
            i = worker_id
            while not stop.is_set():
                queries = _queries()
                qi = i % len(queries)
                try:
                    outcome = scheduler.execute(queries[qi])
                except Exception as exc:  # pragma: no cover - the assertion target
                    failures.append(f"q{qi}: {type(exc).__name__}: {exc}")
                    continue
                observations.append((outcome.generation, qi))
                if outcome.result != expected[outcome.generation][qi]:
                    failures.append(
                        f"q{qi} mixed generations: gen={outcome.generation}"
                    )
                i += 1

        threads = [threading.Thread(target=load, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        time.sleep(0.25)
        report = manager.swap(new, drain_timeout=10.0)
        time.sleep(0.25)
        stop.set()
        for t in threads:
            t.join()

        assert failures == []
        assert report.drained
        assert report.old_generation == old.lake.generation
        assert report.new_generation == new.lake.generation
        seen_generations = {generation for generation, _ in observations}
        assert seen_generations <= {old.lake.generation, new.lake.generation}
        assert new.lake.generation in seen_generations  # swap actually took

        # Post-swap: every query is served by the new generation and
        # matches a FRESH build of the new-generation lake.
        for qi, query in enumerate(_queries()):
            outcome = scheduler.execute(query)
            assert outcome.generation == new.lake.generation
            assert outcome.result == query.execute(fresh.context())


def test_swap_drains_inflight_before_returning(generations):
    old, new, _ = generations
    manager = DeploymentManager(old)
    release = threading.Event()
    entered = threading.Event()

    class Parked:
        kind = "PARKED"
        k = 1

        def execute(self, context):
            entered.set()
            release.wait(5.0)
            return ResultList([])

    with BatchScheduler(manager, workers=1, max_batch=1) as scheduler:
        pending = scheduler.submit(Parked())
        assert entered.wait(5.0)
        old_deployment = manager.current()
        assert old_deployment.inflight == 1

        done = {}

        def do_swap() -> None:
            done["report"] = manager.swap(new, drain_timeout=10.0)

        swapper = threading.Thread(target=do_swap)
        swapper.start()
        time.sleep(0.1)
        # New arrivals already see the new generation while the old one
        # drains.
        assert manager.current().generation == new.lake.generation
        assert swapper.is_alive()  # still draining the parked request
        release.set()
        swapper.join(5.0)
        assert done["report"].drained
        assert old_deployment.inflight == 0
        pending.result()


def test_stale_context_retries_once_transparently(generations):
    old, _, _ = generations
    manager = DeploymentManager(old)
    calls = {"n": 0}
    expected = ResultList([])

    class StaleOnce:
        kind = "FLAKY"
        k = 1

        def execute(self, context):
            calls["n"] += 1
            if calls["n"] == 1:
                raise StaleContextError("raced a swap")
            return expected

    with BatchScheduler(manager, workers=1, max_batch=1) as scheduler:
        outcome = scheduler.execute(StaleOnce())
    assert outcome.result == expected
    assert calls["n"] == 2
    assert scheduler.stats.snapshot()["stale_retries"] == 1


def test_snapshot_swap_roundtrip(generations, tmp_path):
    """The /swap flow's core: load a saved snapshot of the new
    generation and swap it in; answers match the source deployment."""
    old, new, _ = generations
    path = new.save(tmp_path / "snap-v2")
    loaded = Blend.load(path)
    manager = DeploymentManager(old)
    with BatchScheduler(manager, workers=2, max_batch=8) as scheduler:
        report = manager.swap(loaded, drain_timeout=5.0)
        assert report.new_generation == new.lake.generation
        for query in _queries():
            outcome = scheduler.execute(query)
            assert outcome.generation == new.lake.generation
            assert outcome.result == query.execute(new.context())
