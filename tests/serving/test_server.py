"""HTTP front-end tests: route behaviour, parity with direct execution,
error mapping, stats exposure, and the snapshot /swap endpoint."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import Blend, Seekers, Table
from repro.serving import BlendServer

from tests.serving.conftest import build_blend, make_lake


@pytest.fixture(scope="module")
def server(served_blend):
    with BlendServer(
        served_blend, workers=2, max_batch=16, batch_window=0.002
    ).start() as srv:
        yield srv


def _post(url: str, path: str, body: dict):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str, path: str):
    try:
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _hits(body: dict):
    return [(hit["table_id"], hit["score"]) for hit in body["results"]]


def _expected_hits(result):
    return [(hit.table_id, hit.score) for hit in result]


def test_query_parity_all_modalities(server, served_blend):
    context = served_blend.context()
    cases = [
        (
            {"modality": "sc", "values": ["berlin", "paris", "rome"], "k": 5},
            Seekers.SC(["berlin", "paris", "rome"], k=5),
        ),
        (
            {"modality": "kw", "values": ["germany", "france"], "k": 4},
            Seekers.KW(["germany", "france"], k=4),
        ),
        (
            {
                "modality": "mc",
                "tuples": [["berlin", "germany"], ["oslo", "norway"]],
                "k": 5,
            },
            Seekers.MC([("berlin", "germany"), ("oslo", "norway")], k=5),
        ),
    ]
    for body, seeker in cases:
        status, payload = _post(server.url, "/query", body)
        assert status == 200, payload
        assert payload["generation"] == served_blend.lake.generation
        assert _hits(payload) == _expected_hits(seeker.execute(context))


def test_concurrent_http_queries_batch_and_stay_correct(server, served_blend):
    context = served_blend.context()
    body = {"modality": "sc", "values": ["berlin", "paris"], "k": 5}
    expected = _expected_hits(Seekers.SC(["berlin", "paris"], k=5).execute(context))
    results = []

    def fire() -> None:
        results.append(_post(server.url, "/query", body))

    threads = [threading.Thread(target=fire) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == 8
    for status, payload in results:
        assert status == 200
        assert _hits(payload) == expected


def test_bad_requests_are_400(server):
    for body in (
        {"modality": "nope", "values": ["x"]},
        {"modality": "sc"},
        {"modality": "sc", "values": []},
        {"modality": "mc", "tuples": []},
        {"modality": "sc", "values": ["x"], "k": 0},
        {"modality": "sc", "values": ["x"], "timeout_ms": -5},
    ):
        status, payload = _post(server.url, "/query", body)
        assert status == 400, (body, payload)
        assert "error" in payload

    # Malformed JSON
    request = urllib.request.Request(
        server.url + "/query",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status = response.status
    except urllib.error.HTTPError as error:
        status = error.code
        error.read()
    assert status == 400


def test_unknown_route_is_404(server):
    assert _get(server.url, "/nope")[0] == 404
    assert _post(server.url, "/nope", {})[0] == 404


def test_health_and_stats(server, served_blend):
    status, health = _get(server.url, "/health")
    assert status == 200
    assert health == {"status": "ok", "generation": served_blend.lake.generation}

    status, stats = _get(server.url, "/stats")
    assert status == 200
    for field in (
        "completed",
        "queries_per_sec",
        "latency_ms",
        "batch_size_histogram",
        "by_modality",
        "plan_cache",
        "generation",
        "timeouts",
    ):
        assert field in stats, field
    assert stats["completed"] > 0
    assert 0.0 <= stats["plan_cache"]["hit_rate"] <= 1.0


def test_http_snapshot_swap(tmp_path):
    """POST /swap loads the snapshot and flips generations with traffic
    still being answered."""
    old = build_blend(seed=31, tables=6)
    new = Blend(
        make_lake(31, tables=6, extra_rows=[["quito", "ecuador", 3]] * 5),
        backend="column",
    )
    new.build_index()
    snapshot = new.save(tmp_path / "snap")

    with BlendServer(old, workers=2, max_batch=8).start() as server:
        status, before = _post(
            server.url, "/query", {"modality": "sc", "values": ["quito"], "k": 3}
        )
        assert status == 200 and before["generation"] == old.lake.generation

        status, report = _post(server.url, "/swap", {"snapshot": str(snapshot)})
        assert status == 200, report
        assert report["old_generation"] == old.lake.generation
        assert report["new_generation"] == new.lake.generation
        assert report["drained"] is True

        status, after = _post(
            server.url, "/query", {"modality": "sc", "values": ["quito"], "k": 3}
        )
        assert status == 200
        assert after["generation"] == new.lake.generation
        expected = Seekers.SC(["quito"], k=3).execute(new.context())
        assert _hits(after) == _expected_hits(expected)

        status, stats = _get(server.url, "/stats")
        assert stats["swaps"] == 1

        status, bad = _post(server.url, "/swap", {"snapshot": ""})
        assert status == 503  # ServingError: missing path

        status, missing = _post(
            server.url, "/swap", {"snapshot": str(tmp_path / "nope")}
        )
        assert status in (409, 500)  # SnapshotError surface
