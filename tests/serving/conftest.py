"""Fixtures for serving-tier tests: a small city/country lake whose MC
joins have non-trivial answers, plus a second "generation" of the same
lake produced through the mutable-lake lifecycle (so its generation
counter genuinely differs)."""

import random

import pytest

from repro import Blend, DataLake, Table

CITIES = ["berlin", "paris", "rome", "madrid", "lisbon", "vienna", "oslo", "cairo"]
COUNTRIES = [
    "germany", "france", "italy", "spain",
    "portugal", "austria", "norway", "egypt",
]
PAIRS = list(zip(CITIES, COUNTRIES))


def make_lake(seed: int, tables: int = 10, extra_rows=None) -> DataLake:
    rng = random.Random(seed)
    lake = DataLake(f"serve-{seed}")
    for t in range(tables):
        rows = []
        for _ in range(30):
            city, country = rng.choice(PAIRS)
            if rng.random() < 0.25:
                country = rng.choice(COUNTRIES)
            rows.append([city, country, rng.randint(0, 50)])
        lake.add(Table(f"t{t}", ["city", "country", "pop"], rows))
    if extra_rows is not None:
        lake.add(Table("extra", ["city", "country", "pop"], extra_rows))
    return lake


def build_blend(seed: int = 23, backend: str = "column", **kwargs) -> Blend:
    blend = Blend(make_lake(seed, **kwargs), backend=backend)
    blend.build_index()
    return blend


@pytest.fixture(scope="module")
def served_blend() -> Blend:
    return build_blend()
