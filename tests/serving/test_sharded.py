"""Shard-count invariance: a :class:`ShardCoordinator` over K shards is
byte-identical to single-process execution -- for every seeker modality,
any K, both backends, and across interleaved lifecycle mutations. The
oracle is always a plain solo :class:`Blend` driven through the exact
same operation sequence."""

import random

import pytest

from repro import Blend, DataLake, Seekers, Table
from repro.core.results import (
    ResultList,
    SeekerPartials,
    count_partials,
    merge_partials,
    ranked_partials,
    resolved_partials,
)
from repro.core.hybrid import HybridSeeker
from repro.core.semantic import SemanticSeeker
from repro.errors import (
    LakeError,
    SeekerError,
    ServingError,
    SnapshotError,
    StaleContextError,
)
from repro.serving import LocalShardWorker, ShardCoordinator
from repro.snapshot import read_shard_manifest, save_sharded

NAMES = [f"e{i}" for i in range(40)]
CITIES = [f"c{i}" for i in range(12)]


def _make_table(rng: random.Random, name: str) -> Table:
    rows = [
        [rng.choice(NAMES), rng.choice(CITIES), str(rng.randrange(60))]
        for _ in range(rng.randrange(5, 14))
    ]
    return Table(name, ["name", "city", "score"], rows)


def _build_blend(seed: int, backend: str, tables: int = 14) -> Blend:
    rng = random.Random(seed)
    lake = DataLake(f"shardlake-{seed}")
    for i in range(tables):
        lake.add(_make_table(rng, f"t{i}"))
    blend = Blend(lake, backend=backend)
    blend.build_index()
    blend.enable_semantic()
    return blend


def _queries(rng: random.Random) -> list:
    """One seeker per modality, with query values drawn from the lake's
    vocabulary so every answer is non-trivial."""
    picks = rng.sample(NAMES, 6)
    return [
        Seekers.SC(picks[:4], k=5),
        Seekers.KW([picks[0], rng.choice(CITIES)], k=4),
        Seekers.MC([(picks[1], rng.choice(CITIES)), (picks[2], rng.choice(CITIES))], k=5),
        Seekers.C(
            [rng.choice(NAMES) for _ in range(24)],
            [str(i * 3 % 7) for i in range(24)],
            k=4,
            min_support=1,
        ),
        SemanticSeeker(picks[4:], k=4),
        SemanticSeeker(picks[:2], k=3, exact=True),
        HybridSeeker(picks[:3], about=picks[3:], k=4, alpha=0.4),
    ]


def _coordinator(blend: Blend, tmp_path, num_shards: int, **kwargs) -> ShardCoordinator:
    root = tmp_path / f"shards-{num_shards}"
    save_sharded(blend, root, num_shards=num_shards)
    return ShardCoordinator.load(root, **kwargs)


def _assert_parity(coordinator: ShardCoordinator, oracle: Blend, seekers) -> None:
    context = oracle.context()
    for seeker in seekers:
        solo = seeker.execute(context)
        sharded = coordinator.execute(seeker)
        assert list(sharded) == list(solo), (
            f"{seeker.kind} diverged on {coordinator.num_shards} shard(s): "
            f"{list(sharded)} != {list(solo)}"
        )


# -- the core property: K shards == 1 process, all modalities ------------------


@pytest.mark.parametrize("backend", ["row", "column"])
@pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
def test_shard_count_invariance(tmp_path, backend, num_shards):
    blend = _build_blend(seed=101, backend=backend)
    rng = random.Random(202)
    with _coordinator(blend, tmp_path, num_shards) as coordinator:
        assert coordinator.num_shards == min(num_shards, 14)
        for _ in range(3):
            _assert_parity(coordinator, blend, _queries(rng))


def test_batched_execution_matches_serial(tmp_path):
    blend = _build_blend(seed=303, backend="column")
    rng = random.Random(404)
    seekers = _queries(rng)
    with _coordinator(blend, tmp_path, 3) as coordinator:
        batched = coordinator.execute_batch(seekers)
        context = blend.context()
        for seeker, result in zip(seekers, batched):
            assert list(result) == list(seeker.execute(context))


# -- lifecycle ops interleaved with queries ------------------------------------


def test_interleaved_lifecycle_parity(tmp_path):
    """Drive the same add/remove/replace sequence through the
    coordinator and a solo oracle; ids and rankings must stay locked
    together the whole way."""
    blend = _build_blend(seed=505, backend="column")
    rng = random.Random(606)
    with _coordinator(blend, tmp_path, 3) as coordinator:
        for step in range(6):
            action = rng.choice(["add", "remove", "replace"])
            if action == "add":
                table = _make_table(rng, f"new{step}")
                assert coordinator.add_table(table) == blend.add_table(table)
            elif action == "remove":
                victim = rng.choice(coordinator.table_ids())
                coordinator.remove_table(victim)
                blend.remove_table(victim)
            else:
                victim = rng.choice(coordinator.table_ids())
                table = _make_table(rng, f"repl{step}")
                coordinator.replace_table(victim, table)
                blend.replace_table(victim, table)
            assert coordinator.table_ids() == blend.lake.table_ids()
            _assert_parity(coordinator, blend, _queries(rng))


def test_add_routes_to_least_loaded_shard(tmp_path):
    blend = _build_blend(seed=707, backend="column", tables=6)
    with _coordinator(blend, tmp_path, 3) as coordinator:
        table_id = coordinator.add_table(_make_table(random.Random(1), "fresh"))
        shard = coordinator.table_shard(table_id)
        loads = [0] * coordinator.num_shards
        for tid in coordinator.table_ids():
            loads[coordinator.table_shard(tid)] += 1
        assert loads[shard] == min(loads) or loads[shard] == min(loads) + 1


def test_lifecycle_routing_errors(tmp_path):
    blend = _build_blend(seed=808, backend="column", tables=6)
    with _coordinator(blend, tmp_path, 2) as coordinator:
        with pytest.raises(LakeError):
            coordinator.remove_table(999)
        with pytest.raises(LakeError):
            coordinator.table_shard(999)
        with pytest.raises(ServingError):
            coordinator.add_table(_make_table(random.Random(2), "x"), shard=9)


# -- generation stamping through the coordinator -------------------------------


def test_generation_stamping_rejects_stale_readers(tmp_path):
    blend = _build_blend(seed=909, backend="column", tables=6)
    seeker = Seekers.SC(NAMES[:3], k=3)
    with _coordinator(blend, tmp_path, 2) as coordinator:
        generation = coordinator.generation
        coordinator.execute(seeker, generation=generation)  # current: fine
        coordinator.add_table(_make_table(random.Random(3), "bump"))
        assert coordinator.generation == generation + 1
        with pytest.raises(StaleContextError):
            coordinator.execute(seeker, generation=generation)
        coordinator.execute(seeker, generation=coordinator.generation)


# -- shard hot-swap ------------------------------------------------------------


def test_swap_shard_parity_and_routing(tmp_path):
    """Replace one shard's snapshot wholesale (its tables with one
    swapped out for new content); queries match an oracle that applied
    the same replacement, and routing follows the new table set."""
    blend = _build_blend(seed=111, backend="column")
    rng = random.Random(222)
    with _coordinator(blend, tmp_path, 3) as coordinator:
        shard = 1
        shard_ids = [
            tid for tid in coordinator.table_ids()
            if coordinator.table_shard(tid) == shard
        ]
        victim = shard_ids[0]
        replacement_table = _make_table(rng, "swapped-in")

        # Build the replacement shard snapshot: same tables at the same
        # global ids, except the victim's content is replaced.
        tables = dict(blend.lake.items())
        shard_lake = DataLake(f"{blend.lake.name}/shard{shard}v2")
        for tid in shard_ids:
            shard_lake.add_at(
                tid, replacement_table if tid == victim else tables[tid]
            )
        sub = Blend(shard_lake, backend="column")
        sub.build_index()
        sub.enable_semantic()
        snapshot = tmp_path / "shard-v2"
        sub.save(snapshot)

        generation = coordinator.generation
        new_ids = coordinator.swap_shard(shard, snapshot)
        assert sorted(new_ids) == sorted(shard_ids)
        assert coordinator.generation == generation + 1
        assert coordinator.table_shard(victim) == shard

        blend.replace_table(victim, replacement_table)
        _assert_parity(coordinator, blend, _queries(rng))


# -- process workers -----------------------------------------------------------


def test_process_worker_smoke(tmp_path):
    """One coordinator over child-process workers: query parity plus a
    lifecycle op crossing the pipe."""
    blend = _build_blend(seed=333, backend="column", tables=8)
    rng = random.Random(444)
    with _coordinator(blend, tmp_path, 2, processes=True) as coordinator:
        _assert_parity(coordinator, blend, _queries(rng))
        table = _make_table(rng, "piped")
        assert coordinator.add_table(table) == blend.add_table(table)
        _assert_parity(coordinator, blend, _queries(rng))
        with pytest.raises(LakeError):
            coordinator.remove_table(424242)


# -- merge_partials edge cases -------------------------------------------------


def test_merge_rejects_mixed_kinds():
    ranked = ranked_partials([(1, 2.0)], 8)
    counts = count_partials([1], [2])
    with pytest.raises(SeekerError):
        merge_partials([ranked, counts], 5)


def test_merge_rejects_multi_part_resolved():
    one = resolved_partials(ResultList.from_pairs([(1, 2.0)]))
    two = resolved_partials(ResultList.from_pairs([(2, 3.0)]))
    with pytest.raises(SeekerError):
        merge_partials([one, two], 5)


def test_merge_rejects_mixed_fetch_cuts():
    with pytest.raises(SeekerError):
        merge_partials(
            [ranked_partials([(1, 2.0)], 8), ranked_partials([(2, 1.0)], 16)], 5
        )


def test_merge_of_nothing_is_empty():
    assert len(merge_partials([], 5)) == 0
    assert len(merge_partials([None, ranked_partials([], 8)], 5)) == 0


def test_single_partial_merge_preserves_resolved_order():
    """The compatibility path: a duck-typed seeker's arbitrary ordering
    round-trips the degenerate merge verbatim (no re-sort)."""
    unsorted = ResultList.from_pairs([(5, 1.0), (2, 9.0), (7, 4.0)])
    merged = merge_partials([resolved_partials(unsorted)], 10)
    assert list(merged) == list(unsorted)


def test_partials_validation():
    with pytest.raises(SeekerError):
        SeekerPartials("bogus")
    with pytest.raises(SeekerError):
        SeekerPartials("ranked", table_ids=ranked_partials([(1, 2.0)], 8).table_ids)
    assert len(ranked_partials([(1, 2.0), (2, None)], 8, skip_none=True)) == 1


# -- sharded snapshot format ---------------------------------------------------


def test_save_sharded_manifest_round_trip(tmp_path):
    blend = _build_blend(seed=555, backend="row", tables=6)
    root = tmp_path / "snap"
    save_sharded(blend, root, num_shards=2)
    manifest = read_shard_manifest(root)
    assert manifest["backend"] == "row"
    assert manifest["num_shards"] == 2
    assert manifest["next_table_id"] == blend.lake.num_slots
    routed = sorted(int(tid) for tid in manifest["table_shard"])
    assert routed == blend.lake.table_ids()


def test_save_sharded_refuses_unindexed_and_nonempty(tmp_path):
    lake = DataLake("raw")
    lake.add(_make_table(random.Random(0), "only"))
    unindexed = Blend(lake, backend="column")
    with pytest.raises(SnapshotError):
        save_sharded(unindexed, tmp_path / "a", num_shards=2)
    occupied = tmp_path / "b"
    occupied.mkdir()
    (occupied / "junk").write_text("x")
    blend = _build_blend(seed=666, backend="column", tables=4)
    with pytest.raises(SnapshotError):
        save_sharded(blend, occupied, num_shards=2)


def test_load_checks_backend(tmp_path):
    blend = _build_blend(seed=777, backend="column", tables=4)
    root = tmp_path / "snap"
    save_sharded(blend, root, num_shards=2)
    with pytest.raises(SnapshotError):
        ShardCoordinator.load(root, backend="row")


def test_coordinator_requires_workers():
    with pytest.raises(ServingError):
        ShardCoordinator([])


def test_worker_rejects_unknown_op(tmp_path):
    blend = _build_blend(seed=888, backend="column", tables=4)
    worker = LocalShardWorker(blend)
    try:
        with pytest.raises(ServingError):
            worker.request("frobnicate")
    finally:
        worker.close()
