"""Extended SQL feature coverage on both backends: HAVING over computed
aggregates, LIKE, COALESCE, string functions, casts, and edge shapes the
seeker queries rely on."""

import pytest

from repro.engine import Database
from repro.errors import PlanningError


@pytest.fixture(params=["row", "column"])
def db(request):
    database = Database(backend=request.param)
    database.create_table(
        "orders",
        [("customer", "text"), ("product", "text"), ("qty", "integer"), ("price", "float")],
    )
    database.insert(
        "orders",
        [
            ("alice", "laptop", 1, 1200.0),
            ("alice", "mouse", 3, 25.0),
            ("bob", "laptop", 2, 1150.0),
            ("bob", "desk", 1, 300.0),
            ("carol", "mouse", None, 20.0),
            ("carol", "monitor", 2, 220.0),
        ],
    )
    return database


class TestHaving:
    def test_having_on_computed_aggregate(self, db):
        result = db.execute(
            "SELECT customer, SUM(qty * price) AS total FROM orders "
            "GROUP BY customer HAVING SUM(qty * price) > 500 ORDER BY customer"
        )
        assert result.column() == ["alice", "bob"]

    def test_having_with_conjunction(self, db):
        result = db.execute(
            "SELECT customer FROM orders GROUP BY customer "
            "HAVING COUNT(*) >= 2 AND MIN(price) < 30 ORDER BY customer"
        )
        assert result.column() == ["alice", "carol"]

    def test_having_references_group_key(self, db):
        result = db.execute(
            "SELECT product FROM orders GROUP BY product "
            "HAVING product = 'laptop'"
        )
        assert result.column() == ["laptop"]

    def test_having_without_group_by(self, db):
        assert db.execute(
            "SELECT COUNT(*) FROM orders HAVING COUNT(*) > 100"
        ).rows == []


class TestScalarFunctions:
    def test_like_wildcards(self, db):
        result = db.execute(
            "SELECT DISTINCT product FROM orders WHERE product LIKE 'm%' ORDER BY product"
        )
        assert result.column() == ["monitor", "mouse"]

    def test_like_underscore(self, db):
        result = db.execute("SELECT DISTINCT product FROM orders WHERE product LIKE 'de_k'")
        assert result.column() == ["desk"]

    def test_not_like(self, db):
        result = db.execute(
            "SELECT DISTINCT product FROM orders WHERE product NOT LIKE '%o%' ORDER BY product"
        )
        assert result.column() == ["desk"]

    def test_coalesce(self, db):
        result = db.execute(
            "SELECT customer, COALESCE(qty, 0) FROM orders WHERE product = 'mouse' "
            "ORDER BY customer"
        )
        assert result.rows == [("alice", 3), ("carol", 0)]

    def test_upper_lower_length(self, db):
        result = db.execute(
            "SELECT UPPER(customer), LOWER('ABC'), LENGTH(product) FROM orders "
            "WHERE product = 'desk'"
        )
        assert result.rows == [("BOB", "abc", 4)]

    def test_abs_and_sqrt(self, db):
        assert db.execute("SELECT ABS(-3), SQRT(16.0)").rows == [(3, 4.0)]

    def test_unknown_function(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT MAGIC(customer) FROM orders")


class TestCastsAndArithmetic:
    def test_boolean_cast_in_sum(self, db):
        assert db.execute(
            "SELECT SUM((price > 100)::int) FROM orders"
        ).scalar() == 4

    def test_float_cast(self, db):
        assert db.execute("SELECT 3::float / 2").scalar() == 1.5

    def test_division_by_zero_yields_null(self, db):
        assert db.execute("SELECT 1 / 0").scalar() is None

    def test_modulo(self, db):
        result = db.execute("SELECT qty % 2 FROM orders WHERE qty IS NOT NULL ORDER BY qty")
        assert result.column() == [1, 1, 0, 0, 1]

    def test_text_cast(self, db):
        assert db.execute("SELECT 12::text").scalar() == "12"


class TestNullPropagation:
    def test_arithmetic_with_null(self, db):
        result = db.execute(
            "SELECT qty * price FROM orders WHERE customer = 'carol' ORDER BY product"
        )
        assert result.rows == [(440.0,), (None,)]

    def test_aggregates_skip_nulls(self, db):
        result = db.execute("SELECT COUNT(qty), SUM(qty), AVG(qty) FROM orders")
        count, total, avg = result.rows[0]
        assert count == 5
        assert total == 9
        assert avg == pytest.approx(9 / 5)

    def test_where_null_comparison_drops_rows(self, db):
        assert db.execute("SELECT COUNT(*) FROM orders WHERE qty > 0").scalar() == 5


class TestSubqueryShapes:
    def test_aggregate_over_derived_table(self, db):
        result = db.execute(
            "SELECT customer, COUNT(*) FROM "
            "(SELECT * FROM orders WHERE price > 100) AS big "
            "GROUP BY customer ORDER BY customer"
        )
        assert result.rows == [("alice", 1), ("bob", 2), ("carol", 1)]

    def test_nested_derived_tables(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM (SELECT * FROM "
            "(SELECT customer FROM orders WHERE qty IS NOT NULL) AS inner_q"
            ") AS outer_q"
        )
        assert result.scalar() == 5

    def test_self_join_via_subqueries(self, db):
        result = db.execute(
            "SELECT a.customer FROM "
            "(SELECT * FROM orders WHERE product = 'laptop') AS a "
            "INNER JOIN (SELECT * FROM orders WHERE product = 'mouse') AS b "
            "ON a.customer = b.customer"
        )
        assert result.column() == ["alice"]

    def test_group_inside_subquery(self, db):
        result = db.execute(
            "SELECT MAX(total) FROM "
            "(SELECT customer, SUM(price) AS total FROM orders GROUP BY customer) AS sums"
        )
        assert result.scalar() == pytest.approx(1450.0)
