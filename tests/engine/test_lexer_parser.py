"""Unit tests for the SQL lexer and recursive-descent parser."""

import pytest

from repro.engine.sql import ast
from repro.engine.sql.lexer import tokenize
from repro.engine.sql.parser import parse
from repro.errors import SqlSyntaxError


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT TableId FROM AllTables")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [
            ("keyword", "SELECT"),
            ("identifier", "TableId"),
            ("keyword", "FROM"),
            ("identifier", "AllTables"),
        ]

    def test_string_escapes(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e2 .5")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "3e2", ".5"]

    def test_parameters(self):
        tokens = tokenize("WHERE x IN :values")
        assert tokens[3].kind == "parameter"
        assert tokens[3].value == "values"

    def test_double_colon_is_not_parameter(self):
        tokens = tokenize("x::int")
        assert [t.value for t in tokens[:-1]] == ["x", "::", "int"]

    def test_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n, 2")
        values = [t.value for t in tokens[:-1]]
        assert values == ["SELECT", "1", ",", "2"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @x")

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].kind == "eof"


class TestParserBasics:
    def test_simple_select(self):
        select = parse("SELECT a, b FROM t")
        assert len(select.items) == 2
        assert isinstance(select.source, ast.TableRef)
        assert select.source.name == "t"

    def test_star(self):
        select = parse("SELECT * FROM t")
        assert isinstance(select.items[0].expression, ast.Star)

    def test_qualified_star(self):
        select = parse("SELECT t.* FROM t")
        star = select.items[0].expression
        assert isinstance(star, ast.Star)
        assert star.table == "t"

    def test_aliases(self):
        select = parse("SELECT a AS x, b y FROM t z")
        assert select.items[0].alias == "x"
        assert select.items[1].alias == "y"
        assert select.source.alias == "z"

    def test_limit_and_order(self):
        select = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5")
        assert select.limit == ast.Literal(5)
        assert select.order_by[0].descending is True
        assert select.order_by[1].descending is False

    def test_group_by_and_having(self):
        select = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert len(select.group_by) == 1
        assert select.having is not None

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_trailing_semicolon(self):
        parse("SELECT 1;")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 SELECT 2")


class TestParserExpressions:
    def test_precedence_or_and(self):
        select = parse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
        where = select.where
        assert isinstance(where, ast.BinaryOp)
        assert where.op == "OR"
        assert isinstance(where.right, ast.BinaryOp)
        assert where.right.op == "AND"

    def test_arithmetic_precedence(self):
        select = parse("SELECT 1 + 2 * 3")
        expr = select.items[0].expression
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_in_list(self):
        select = parse("SELECT 1 FROM t WHERE a IN ('x', 'y', :more)")
        where = select.where
        assert isinstance(where, ast.InList)
        assert len(where.items) == 3
        assert where.items[2] == ast.Parameter("more")

    def test_bare_parameter_in(self):
        select = parse("SELECT 1 FROM t WHERE a IN :values")
        assert isinstance(select.where, ast.InList)

    def test_not_in(self):
        select = parse("SELECT 1 FROM t WHERE a NOT IN (1, 2)")
        assert select.where.negated is True

    def test_is_null_and_is_not_null(self):
        assert parse("SELECT 1 FROM t WHERE a IS NULL").where == ast.IsNull(
            ast.ColumnRef("a")
        )
        assert parse("SELECT 1 FROM t WHERE a IS NOT NULL").where.negated is True

    def test_between_desugars(self):
        where = parse("SELECT 1 FROM t WHERE a BETWEEN 1 AND 3").where
        assert isinstance(where, ast.BinaryOp)
        assert where.op == "AND"
        assert where.left.op == ">="
        assert where.right.op == "<="

    def test_cast(self):
        expr = parse("SELECT (a > 1)::int FROM t").items[0].expression
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "int"

    def test_count_star_and_distinct(self):
        select = parse("SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
        first, second = (item.expression for item in select.items)
        assert first == ast.Aggregate("COUNT", None)
        assert second.distinct is True

    def test_unary_minus(self):
        expr = parse("SELECT -a FROM t").items[0].expression
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "-"

    def test_function_call(self):
        expr = parse("SELECT ABS(a - b) FROM t").items[0].expression
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "ABS"

    def test_qualified_column(self):
        expr = parse("SELECT k.TableId FROM t k").items[0].expression
        assert expr == ast.ColumnRef(name="TableId", table="k")

    def test_scalar_subquery_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT (SELECT 1) FROM t")


class TestParserJoins:
    def test_inner_join(self):
        select = parse(
            "SELECT * FROM a INNER JOIN b ON a.x = b.x AND a.y = b.y"
        )
        join = select.source
        assert isinstance(join, ast.Join)
        assert join.join_type == "inner"
        assert isinstance(join.condition, ast.BinaryOp)

    def test_derived_table(self):
        select = parse("SELECT * FROM (SELECT a FROM t) AS sub")
        sub = select.source
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "sub"

    def test_derived_table_alias_without_as(self):
        select = parse("SELECT * FROM (SELECT a FROM t) sub")
        assert select.source.alias == "sub"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM (SELECT a FROM t)")

    def test_left_join(self):
        select = parse("SELECT * FROM a LEFT JOIN b ON a.x = b.x")
        assert select.source.join_type == "left"

    def test_nested_joins_left_deep(self):
        select = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON a.x = c.x"
        )
        outer = select.source
        assert isinstance(outer.left, ast.Join)
        assert isinstance(outer.right, ast.TableRef)


class TestPaperListings:
    """The exact query shapes from the paper's Listings 1-3 must parse."""

    def test_listing_1_sc_seeker(self):
        parse(
            """
            SELECT TableId FROM AllTables
            WHERE CellValue IN ('a', 'b')
            GROUP BY TableId, ColumnId
            ORDER BY COUNT(DISTINCT CellValue) DESC
            LIMIT 10
            """
        )

    def test_listing_2_mc_seeker(self):
        parse(
            """
            SELECT * FROM
            (SELECT * FROM AllTables WHERE CellValue IN (:q1)) AS Q1_index_hits
            INNER JOIN
            (SELECT * FROM AllTables WHERE CellValue IN (:q2)) AS Q2_index_hits
            ON Q1_index_hits.TableId = Q2_index_hits.TableId
            AND Q1_index_hits.RowId = Q2_index_hits.RowId
            """
        )

    def test_listing_3_correlation_seeker(self):
        parse(
            """
            SELECT keys.TableId FROM
            (SELECT * FROM AllTables WHERE RowId < :h AND CellValue IN (:qj)) keys
            INNER JOIN
            (SELECT * FROM AllTables WHERE RowId < :h AND Quadrant IS NOT NULL) nums
            ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId
            GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId
            ORDER BY ABS((2.0 * SUM(((keys.CellValue IN (:k0) AND nums.Quadrant = 0)
                OR (keys.CellValue IN (:k1) AND nums.Quadrant = 1))::int)
                - COUNT(*)) / COUNT(*)) DESC
            LIMIT 10
            """
        )
