"""Known (pre-existing, seed) divergence: BOOLEAN result columns
materialise as int 0/1 on the column backend but True/False on the row
backend (``ColumnTable.column_values`` serves int64 to the vectorised
executor). Invisible to ``==`` (``True == 1``) but visible to ``type()``.

This file pins the divergence as ``xfail(strict=True)``: the day the
column backend re-types booleans through the vectorised expression
pipeline, the xfail flips to XPASS and fails the run loudly, forcing this
marker (and the ROADMAP note) to be retired together with the fix.
"""

import pytest

from repro.engine import Database


def _boolean_rows(backend: str) -> list:
    db = Database(backend=backend)
    db.create_table("t", [("flag", "boolean"), ("n", "integer")])
    db.insert("t", [(True, 1), (False, 2), (None, 3)])
    return db.execute("SELECT flag FROM t ORDER BY n").column()


def test_boolean_values_compare_equal_across_backends():
    """The tolerable face of the divergence: `==` cannot see it."""
    assert _boolean_rows("row") == _boolean_rows("column") == [True, False, None]


@pytest.mark.xfail(
    strict=True,
    reason="seed divergence: column backend materialises BOOLEAN as int 0/1 "
    "(ROADMAP 'known divergence'); fixing it means re-typing boolean columns "
    "through the whole vectorised expression pipeline",
)
def test_boolean_result_types_match_across_backends():
    row_values = _boolean_rows("row")
    column_values = _boolean_rows("column")
    assert [type(v) for v in row_values] == [type(v) for v in column_values]
    assert all(isinstance(v, bool) for v in column_values[:2])
