"""Cross-backend BOOLEAN type parity.

Historically (seed through PR 6) the column backend materialised BOOLEAN
results as int 0/1 (``ColumnTable.column_values`` served int64 to the
vectorised executor) while the row backend returned True/False --
invisible to ``==`` (``True == 1``) but visible to ``type()``. The
divergence was pinned here as a strict xfail until the column store grew
a boolean-typed logical view over its int8-with-NULL storage. Both
backends now agree on ``type()``, and this module pins that parity --
values, Python types, and aggregate (MIN/MAX/SUM) result types.
"""

from repro.engine import Database


def _boolean_db(backend: str) -> "Database":
    db = Database(backend=backend)
    db.create_table("t", [("flag", "boolean"), ("n", "integer")])
    db.insert("t", [(True, 1), (False, 2), (None, 3)])
    return db


def _boolean_rows(backend: str) -> list:
    return _boolean_db(backend).execute("SELECT flag FROM t ORDER BY n").column()


def test_boolean_values_compare_equal_across_backends():
    assert _boolean_rows("row") == _boolean_rows("column") == [True, False, None]


def test_boolean_result_types_match_across_backends():
    row_values = _boolean_rows("row")
    column_values = _boolean_rows("column")
    assert [type(v) for v in row_values] == [type(v) for v in column_values]
    assert all(isinstance(v, bool) for v in column_values[:2])


def test_boolean_min_max_type_parity():
    """MIN/MAX over a BOOLEAN column returns bool on both backends (the
    column backend's float64 min/max scratch must re-type on the way out)."""
    for backend in ("row", "column"):
        result = _boolean_db(backend).execute("SELECT MIN(flag), MAX(flag) FROM t")
        (lo, hi), = result.rows
        assert (lo, hi) == (False, True)
        assert type(lo) is bool and type(hi) is bool, backend


def test_boolean_sum_keeps_duality():
    """SUM over BOOLEAN stays an int count of trues (true=1 duality)."""
    for backend in ("row", "column"):
        (total,), = _boolean_db(backend).execute("SELECT SUM(flag) FROM t").rows
        assert total == 1 and type(total) is int, backend


def test_boolean_predicates_and_duality_filters():
    """Predicate evaluation keeps the true=1 duality: ``flag = 1`` and
    ``flag = true`` select the same rows on both backends."""
    for backend in ("row", "column"):
        db = _boolean_db(backend)
        by_literal = db.execute("SELECT n FROM t WHERE flag = true").column()
        by_int = db.execute("SELECT n FROM t WHERE flag = 1").column()
        assert by_literal == by_int == [1], backend
        assert db.execute("SELECT n FROM t WHERE flag IN (0)").column() == [2], backend


def test_boolean_types_survive_where_order_and_star():
    """Full-row materialisation (SELECT *) and ordered scans keep bool."""
    for backend in ("row", "column"):
        rows = _boolean_db(backend).execute(
            "SELECT * FROM t WHERE n <= 2 ORDER BY flag DESC"
        ).rows
        assert rows == [(True, 1), (False, 2)], backend
        assert [type(r[0]) for r in rows] == [bool, bool], backend
