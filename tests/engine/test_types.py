"""Unit tests for SQL value semantics (three-valued logic, coercion)."""

import pytest

from repro.engine.types import (
    SqlType,
    coerce_to_type,
    sql_and,
    sql_cast_float,
    sql_cast_int,
    sql_compare,
    sql_equals,
    sql_not,
    sql_or,
    sort_key,
)


class TestSqlTypeNames:
    def test_aliases_resolve(self):
        assert SqlType.from_name("nvarchar") is SqlType.TEXT
        assert SqlType.from_name("BIGINT") is SqlType.INTEGER
        assert SqlType.from_name("double") is SqlType.FLOAT
        assert SqlType.from_name("bool") is SqlType.BOOLEAN

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            SqlType.from_name("blob")


class TestCoercion:
    def test_null_passes_through(self):
        for sql_type in SqlType:
            assert coerce_to_type(None, sql_type) is None

    def test_integral_float_to_integer(self):
        assert coerce_to_type(3.0, SqlType.INTEGER) == 3

    def test_fractional_float_to_integer_raises(self):
        with pytest.raises(ValueError):
            coerce_to_type(3.5, SqlType.INTEGER)

    def test_text_rejects_numbers(self):
        with pytest.raises(ValueError):
            coerce_to_type(7, SqlType.TEXT)

    def test_boolean_accepts_zero_one(self):
        assert coerce_to_type(1, SqlType.BOOLEAN) is True
        assert coerce_to_type(0, SqlType.BOOLEAN) is False

    def test_boolean_rejects_other_ints(self):
        with pytest.raises(ValueError):
            coerce_to_type(2, SqlType.BOOLEAN)

    def test_bool_to_integer(self):
        assert coerce_to_type(True, SqlType.INTEGER) == 1


class TestThreeValuedLogic:
    def test_equals_null_propagates(self):
        assert sql_equals(None, 1) is None
        assert sql_equals(1, None) is None
        assert sql_equals(None, None) is None

    def test_equals_bool_int_duality(self):
        assert sql_equals(True, 1) is True
        assert sql_equals(False, 0) is True

    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False
        assert sql_and(True, None) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(False, True) is True
        assert sql_or(True, None) is True
        assert sql_or(False, None) is None
        assert sql_or(None, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    def test_compare(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare("b", "a") == 1
        assert sql_compare(2, 2) == 0
        assert sql_compare(None, 2) is None

    def test_compare_mixed_types_raises(self):
        with pytest.raises(TypeError):
            sql_compare(1, "a")


class TestCasts:
    def test_cast_int(self):
        assert sql_cast_int(True) == 1
        assert sql_cast_int(False) == 0
        assert sql_cast_int(3.9) == 3
        assert sql_cast_int("12") == 12
        assert sql_cast_int(None) is None

    def test_cast_int_bad_text(self):
        with pytest.raises(ValueError):
            sql_cast_int("abc")

    def test_cast_float(self):
        assert sql_cast_float("2.5") == 2.5
        assert sql_cast_float(2) == 2.0
        assert sql_cast_float(None) is None


class TestSortKey:
    def test_nulls_last(self):
        values = [3, None, 1, None, 2]
        assert sorted(values, key=sort_key) == [1, 2, 3, None, None]

    def test_mixed_kinds_deterministic(self):
        values = ["b", 2, "a", 1]
        assert sorted(values, key=sort_key) == [1, 2, "a", "b"]
