"""The typed bulk-append path (``insert_columns``): equivalence with the
row-at-a-time path, incremental sealing, dictionary merging, and the
numeric ``isin_mask`` / ``gather_rows`` satellites."""

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.storage.column_store import ColumnTable, DictEncodedText
from repro.errors import ExecutionError

SCHEMA = [("v", "nvarchar"), ("n", "integer"), ("f", "float"), ("b", "boolean")]

ROWS = [
    ("x", 1, 1.5, True),
    (None, None, None, None),
    ("a", 7, 0.5, False),
    ("x", -3, 2.25, None),
]


def _chunk_for(rows):
    """ROWS-shaped python rows as (data, null) column chunks."""
    text = np.array([r[0] for r in rows], dtype=object)
    ints = np.array([r[1] if r[1] is not None else 0 for r in rows], dtype=np.int64)
    int_null = np.array([r[1] is None for r in rows])
    floats = np.array([r[2] if r[2] is not None else 0.0 for r in rows])
    float_null = np.array([r[2] is None for r in rows])
    bools = np.array(
        [-1 if r[3] is None else int(r[3]) for r in rows], dtype=np.int8
    )
    return [(text, None), (ints, int_null), (floats, float_null), (bools, None)]


@pytest.mark.parametrize("backend", ["row", "column"])
class TestInsertColumnsEquivalence:
    def test_matches_insert_rows(self, backend):
        via_rows = Database(backend=backend)
        via_rows.create_table("t", SCHEMA)
        via_rows.insert("t", ROWS)

        via_columns = Database(backend=backend)
        via_columns.create_table("t", SCHEMA)
        assert via_columns.insert_columns("t", _chunk_for(ROWS)) == len(ROWS)

        select = "SELECT v, n, f, b FROM t"
        assert via_columns.execute(select).rows == via_rows.execute(select).rows

    def test_interleaved_with_insert_rows(self, backend):
        db = Database(backend=backend)
        db.create_table("t", SCHEMA)
        db.insert("t", ROWS[:2])
        db.execute("SELECT * FROM t")  # force a seal between batches
        db.insert_columns("t", _chunk_for(ROWS[2:]))
        db.insert("t", [("tail", 99, 9.5, True)])
        got = db.execute("SELECT v, n FROM t").rows
        assert got == [(r[0], r[1]) for r in ROWS] + [("tail", 99)]

    def test_indexes_serve_bulk_rows(self, backend):
        db = Database(backend=backend)
        db.create_table("t", SCHEMA)
        db.create_index("t", "v")
        db.insert_columns("t", _chunk_for(ROWS))
        got = db.execute("SELECT n FROM t WHERE v IN ('x')").rows
        assert sorted(got) == [(-3,), (1,)]

    def test_width_mismatch_rejected(self, backend):
        db = Database(backend=backend)
        db.create_table("t", SCHEMA)
        with pytest.raises(ExecutionError):
            db.insert_columns("t", _chunk_for(ROWS)[:2])

    def test_ragged_chunk_rejected(self, backend):
        db = Database(backend=backend)
        db.create_table("t", SCHEMA)
        chunk = _chunk_for(ROWS)
        chunk[1] = (chunk[1][0][:2], None)
        with pytest.raises(ExecutionError):
            db.insert_columns("t", chunk)

    def test_dict_encoded_text_chunk(self, backend):
        db = Database(backend=backend)
        db.create_table("t", SCHEMA)
        codes = np.array([1, -1, 0, 1], dtype=np.int32)
        dictionary = np.array(["a", "x"], dtype=object)
        chunk = _chunk_for(ROWS)
        chunk[0] = (DictEncodedText(codes, dictionary), None)
        db.insert_columns("t", chunk)
        assert db.execute("SELECT v FROM t").column() == ["x", None, "a", "x"]

    def test_all_null_dict_encoded_chunk(self, backend):
        # Empty dictionary + all -1 codes must store NULLs, not crash.
        db = Database(backend=backend)
        db.create_table("t", [("v", "text")])
        chunk = DictEncodedText(
            np.array([-1, -1], dtype=np.int32), np.array([], dtype=object)
        )
        assert db.insert_columns("t", [(chunk, None)]) == 2
        assert db.execute("SELECT v FROM t").column() == [None, None]


class TestIncrementalSeal:
    """Sealing must merge new batches instead of rebuilding from scratch
    (the pending buffer is consumed, text dictionaries are merged)."""

    def test_text_dictionary_merge_across_chunks(self):
        db = Database(backend="column")
        db.create_table("t", [("v", "text")])
        db.insert_columns("t", [(np.array(["m", "c"], dtype=object), None)])
        db.execute("SELECT * FROM t")
        db.insert_columns("t", [(np.array(["a", "m", "z"], dtype=object), None)])
        table: ColumnTable = db.table("t")
        assert db.execute("SELECT v FROM t").column() == ["m", "c", "a", "m", "z"]
        # dictionary stays sorted + deduplicated after the merge
        codes, dictionary = table.text_codes("v")
        assert list(dictionary) == ["a", "c", "m", "z"]
        assert codes.tolist() == [2, 1, 0, 2, 3]

    def test_pending_buffer_consumed_by_seal(self):
        db = Database(backend="column")
        db.create_table("t", [("n", "integer")])
        db.insert("t", [(1,), (2,)])
        db.execute("SELECT * FROM t")
        table: ColumnTable = db.table("t")
        assert all(not pending for pending in table._pending)
        db.insert("t", [(3,)])
        assert db.execute("SELECT n FROM t ORDER BY n").column() == [1, 2, 3]

    def test_many_unread_chunks_merge_in_order(self):
        # The backlog path: F flushes with no read in between must merge
        # once, in arrival order, including interleaved row inserts.
        db = Database(backend="column")
        db.create_table("t", [("v", "text"), ("n", "integer")])
        expected = []
        for batch in range(6):
            tokens = [f"tok{batch}", f"tok{batch - 1}"]
            db.insert_columns(
                "t",
                [
                    (np.array(tokens, dtype=object), None),
                    (np.array([batch, batch]), None),
                ],
            )
            expected += list(zip(tokens, [batch, batch]))
            db.insert("t", [(f"row{batch}", batch)])
            expected.append((f"row{batch}", batch))
        assert db.execute("SELECT v, n FROM t").rows == expected

    def test_superkey_scale_membership_exact(self):
        # Non-indexed sargable membership on int64 values above 2^53 must
        # not alias through float64.
        db = Database(backend="column")
        db.create_table("t", [("k", "bigint"), ("g", "integer")])
        big = 2**62
        db.insert("t", [(big, 0), (big + 1, 0), (big + 2, 1)])
        got = db.execute(
            "SELECT k FROM t WHERE k IN (:ks) AND g IN (:gs)",
            {"ks": [big + 1], "gs": [0, 1]},
        ).rows
        assert got == [(big + 1,)]

    def test_group_and_filter_after_merge(self):
        db = Database(backend="column")
        db.create_table("t", [("v", "text"), ("n", "integer")])
        db.insert_columns(
            "t", [(np.array(["p", "q"], dtype=object), None), (np.arange(2), None)]
        )
        db.insert_columns(
            "t", [(np.array(["q", "p"], dtype=object), None), (np.arange(2, 4), None)]
        )
        got = db.execute(
            "SELECT v, COUNT(*), SUM(n) FROM t GROUP BY v ORDER BY v"
        ).rows
        assert got == [("p", 2, 3), ("q", 2, 3)]


class TestNumericIsinMask:
    """Satellite fix: NumPy integer/float scalars must probe numeric
    columns instead of silently yielding an empty mask."""

    @pytest.fixture
    def table(self) -> ColumnTable:
        db = Database(backend="column")
        db.create_table("t", [("n", "integer"), ("f", "float")])
        db.insert("t", [(1, 0.5), (2, 1.5), (None, None), (7, 2.5)])
        return db.table("t")

    def test_numpy_integer_probe(self, table):
        mask = table.isin_mask("n", [np.int64(2), np.int32(7)])
        assert mask.tolist() == [False, True, False, True]

    def test_numpy_float_probe(self, table):
        mask = table.isin_mask("f", [np.float64(1.5)])
        assert mask.tolist() == [False, True, False, False]

    def test_numpy_float_probe_on_int_column(self, table):
        mask = table.isin_mask("n", [np.float64(7.0)])
        assert mask.tolist() == [False, False, False, True]

    def test_bool_probes_follow_int_duality(self, table):
        # True == 1 in the engine's comparison semantics (and the row
        # store's set membership), so bool probes match 0/1 values.
        assert table.isin_mask("n", [np.bool_(True)]).tolist() == [True, False, False, False]
        assert table.isin_mask("n", [False]).tolist() == [False, False, False, False]

    @pytest.mark.parametrize("backend", ["row", "column"])
    def test_bool_predicate_after_index_scan_agrees(self, backend):
        # A boolean sargable predicate evaluated AFTER an index-driven scan
        # (the batch-membership path) must agree with the row backend.
        db = Database(backend=backend)
        db.create_table("t", [("n", "bigint"), ("b", "boolean")])
        db.create_index("t", "n")
        db.insert("t", [(1, True), (2, False), (3, True)])
        got = db.execute("SELECT n FROM t WHERE n IN (1, 2, 3) AND b = TRUE").rows
        assert sorted(got) == [(1,), (3,)]

    def test_large_int64_exact(self):
        db = Database(backend="column")
        db.create_table("t", [("k", "bigint")])
        big = 2**62 + 3
        db.insert("t", [(big,), (big + 1,)])
        mask = db.table("t").isin_mask("k", [np.int64(big)])
        assert mask.tolist() == [True, False]

    @pytest.mark.parametrize("backend", ["row", "column"])
    def test_hostile_numeric_probes_agree_across_backends(self, backend):
        # Out-of-range ints must not overflow; fractional probes must not
        # truncate-match; float-integral probes match (as in the row store).
        db = Database(backend=backend)
        db.create_table("s", [("key", "bigint"), ("g", "integer")])
        base = 2**61 + 7
        db.insert("s", [(base + i, i % 2) for i in range(6)])
        sql = "SELECT key FROM s WHERE key IN (:ks) AND g IN (:gs)"
        assert db.execute(sql, {"ks": [base + 2, base + 5], "gs": [0]}).rows == [(base + 2,)]
        assert db.execute("SELECT key FROM s WHERE key IN (:ks)", {"ks": [2**70]}).rows == []
        assert db.execute("SELECT g FROM s WHERE g IN (:gs)", {"gs": [1.5]}).rows == []
        assert len(db.execute("SELECT g FROM s WHERE g IN (:gs)", {"gs": [1.0]}).rows) == 3
        # residual (non-sargable) IN must be int64-exact too: OR keeps the
        # predicate out of the scan pushdown, exercising the vectorised
        # expression path on the column backend.
        residual = "SELECT key FROM s WHERE key IN (:ks) OR g = :never"
        hit = db.execute(residual, {"ks": [base + 1], "never": 99}).rows
        miss = db.execute(residual, {"ks": [base + 1 + 2**53], "never": 99}).rows
        assert hit == [(base + 1,)]
        assert miss == []
        # numpy scalars and beyond-float64 ints through the residual path
        np_hit = db.execute(residual, {"ks": [np.int64(base + 1)], "never": 99}).rows
        assert np_hit == [(base + 1,)]
        assert db.execute(residual, {"ks": [10**400], "never": 99}).rows == []

    @pytest.mark.parametrize("backend", ["row", "column"])
    def test_huge_int_probe_on_float_column(self, backend):
        db = Database(backend=backend)
        db.create_table("f", [("x", "float")])
        db.insert("f", [(1.5,)])
        got = db.execute("SELECT x FROM f WHERE x IN (:v)", {"v": [10**400, 1.5]}).rows
        assert got == [(1.5,)]


class TestIncrementalIndexMaintenance:
    """``insert_columns`` appends must merge each chunk's sorted run into
    the existing postings (no full re-argsort) and land bit-identical to
    a from-scratch ``create_index`` rebuild."""

    @staticmethod
    def _chunks(batch):
        text = np.array(
            [None if i == batch % 5 else f"tok{(batch + i) % 3}" for i in range(5)],
            dtype=object,
        )
        ints = np.arange(5, dtype=np.int64) * batch
        int_null = np.array([i == (batch + 1) % 5 for i in range(5)])
        floats = np.linspace(0.0, 1.0, 5) + batch
        bools = np.array([-1, 0, 1, 1, 0], dtype=np.int8)
        return [(text, None), (ints, int_null), (floats, None), (bools, None)]

    SCHEMA = [("v", "text"), ("n", "integer"), ("f", "float"), ("b", "boolean")]

    def _load(self, index_first: bool, batches: int = 4):
        db = Database(backend="column")
        db.create_table("t", self.SCHEMA)
        if index_first:
            for column, _ in self.SCHEMA:
                db.create_index("t", column)
        for batch in range(batches):
            db.insert_columns("t", self._chunks(batch))
        if not index_first:
            for column, _ in self.SCHEMA:
                db.create_index("t", column)
        return db.table("t")

    def test_identical_index_state_vs_rebuild(self):
        incremental = self._load(index_first=True)._indexes
        rebuilt = self._load(index_first=False)._indexes
        assert set(incremental) == set(rebuilt) == {"v", "n", "f", "b"}
        for key, postings in rebuilt.items():
            assert set(incremental[key]) == set(postings), key
            for value, positions in postings.items():
                merged = incremental[key][value]
                assert np.array_equal(merged, positions), (key, value)
                assert merged.dtype == positions.dtype

    def test_merged_runs_stay_ascending(self):
        table = self._load(index_first=True)
        for postings in table._indexes.values():
            for positions in postings.values():
                assert (np.diff(positions) > 0).all()

    def test_index_survives_bulk_append(self):
        # Pre-refactor behaviour dropped the index on every bulk append;
        # it must now keep serving (and agree with a scan).
        db = Database(backend="column")
        db.create_table("t", self.SCHEMA)
        db.create_index("t", "v")
        for batch in range(3):
            db.insert_columns("t", self._chunks(batch))
            assert db.table("t").has_index("v")
        got = db.execute("SELECT n FROM t WHERE v IN ('tok0')").rows
        expected = [
            (n,) for v, n in db.execute("SELECT v, n FROM t").rows if v == "tok0"
        ]
        assert sorted(got, key=repr) == sorted(expected, key=repr)

    def test_row_at_a_time_insert_rebuilds_lazily(self):
        db = Database(backend="column")
        db.create_table("t", [("v", "text")])
        db.create_index("t", "v")
        db.insert_columns("t", [(np.array(["a", "b"], dtype=object), None)])
        db.insert("t", [("a",)])  # drops materialised postings
        table = db.table("t")
        assert table.has_index("v")
        assert table.index_lookup("v", ["a"]).tolist() == [0, 2]


class TestGatherRows:
    def test_matches_expected_python_values(self):
        db = Database(backend="column")
        db.create_table("t", SCHEMA)
        db.insert("t", ROWS)
        table: ColumnTable = db.table("t")
        got = table.gather_rows(np.array([3, 0, 1]))
        assert got == [("x", -3, 2.25, None), ("x", 1, 1.5, 1), (None, None, None, None)]
        assert all(
            value is None or type(value) in (str, int, float, bool)
            for row in got
            for value in row
        )
        # BOOLEAN cells come back as Python bool (type parity with the
        # row backend), not the int8 storage representation.
        assert type(got[1][3]) is bool

    def test_empty_positions(self):
        db = Database(backend="column")
        db.create_table("t", SCHEMA)
        db.insert("t", ROWS)
        assert db.table("t").gather_rows(np.array([], dtype=np.int64)) == []
