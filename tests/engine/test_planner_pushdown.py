"""Planner optimizations: sargable predicate classification and
projection pushdown annotations."""

import pytest

from repro.engine import Database
from repro.engine.sql.planner import JoinNode, ScanNode


@pytest.fixture
def db():
    database = Database(backend="column")
    database.create_table(
        "t", [("a", "text"), ("b", "integer"), ("c", "float"), ("d", "text")]
    )
    database.insert("t", [("x", 1, 1.0, "p"), ("y", 2, 2.0, "q")])
    return database


def _find(node, node_type):
    """First node of *node_type* in the plan tree."""
    if isinstance(node, node_type):
        return node
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if child is not None:
            found = _find(child, node_type)
            if found is not None:
                return found
    return None


class TestSargableClassification:
    def test_in_list_is_sargable(self, db):
        plan = db.plan("SELECT b FROM t WHERE a IN ('x', 'y')")
        scan = _find(plan, ScanNode)
        assert len(scan.sargable) == 1
        assert scan.sargable[0].column == "a"
        assert sorted(scan.sargable[0].values) == ["x", "y"]

    def test_equality_is_sargable(self, db):
        plan = db.plan("SELECT b FROM t WHERE a = 'x'")
        scan = _find(plan, ScanNode)
        assert scan.sargable[0].values == ["x"]

    def test_parameter_in_is_sargable(self, db):
        plan = db.plan("SELECT b FROM t WHERE a IN (:v)", {"v": ["x"]})
        scan = _find(plan, ScanNode)
        assert scan.sargable[0].values == ["x"]

    def test_not_in_is_residual(self, db):
        plan = db.plan("SELECT b FROM t WHERE a NOT IN ('x')")
        scan = _find(plan, ScanNode)
        assert scan.sargable == []
        assert len(scan.residual) == 1

    def test_range_is_residual(self, db):
        plan = db.plan("SELECT a FROM t WHERE b < 5")
        scan = _find(plan, ScanNode)
        assert scan.sargable == []
        assert len(scan.residual) == 1

    def test_mixed_conjuncts_split(self, db):
        plan = db.plan("SELECT a FROM t WHERE a IN ('x') AND b < 5 AND c = 1.0")
        scan = _find(plan, ScanNode)
        assert {p.column for p in scan.sargable} == {"a", "c"}
        assert len(scan.residual) == 1


class TestProjectionPushdown:
    def test_unused_columns_pruned(self, db):
        plan = db.plan("SELECT b FROM t WHERE a IN ('x')")
        scan = _find(plan, ScanNode)
        # Only b (selected) is required -- a is handled sargably and d/c
        # are untouched.
        assert scan.required == {db.table("t").schema.position_of("b")}

    def test_select_star_requires_all(self, db):
        plan = db.plan("SELECT * FROM t")
        scan = _find(plan, ScanNode)
        assert scan.required == {0, 1, 2, 3}

    def test_order_by_column_is_required(self, db):
        plan = db.plan("SELECT b FROM t ORDER BY c")
        scan = _find(plan, ScanNode)
        positions = {db.table("t").schema.position_of(c) for c in ("b", "c")}
        assert scan.required == positions

    def test_group_by_requires_keys_and_arguments(self, db):
        plan = db.plan("SELECT a, SUM(b) FROM t GROUP BY a")
        scan = _find(plan, ScanNode)
        positions = {db.table("t").schema.position_of(c) for c in ("a", "b")}
        assert scan.required == positions

    def test_join_keys_required_on_both_sides(self, db):
        db.create_table("u", [("a", "text"), ("z", "integer")])
        db.insert("u", [("x", 9)])
        plan = db.plan("SELECT t.b, u.z FROM t INNER JOIN u ON t.a = u.a")
        join = _find(plan, JoinNode)
        left_scan = _find(join.left, ScanNode)
        right_scan = _find(join.right, ScanNode)
        assert db.table("t").schema.position_of("a") in left_scan.required
        assert db.table("u").schema.position_of("a") in right_scan.required

    def test_pruned_execution_is_correct(self, db):
        result = db.execute("SELECT b FROM t WHERE a IN ('x', 'y') ORDER BY b")
        assert result.rows == [(1,), (2,)]

    def test_distinct_requires_all_output_columns(self, db):
        result = db.execute("SELECT DISTINCT a, b FROM t ORDER BY a")
        assert result.rows == [("x", 1), ("y", 2)]
