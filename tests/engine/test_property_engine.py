"""Property-based tests: the row and column executors must agree on
arbitrary data, and engine invariants must hold under random inputs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database

# Small alphabets make collisions (joins, group keys) likely.
TEXTS = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "d", "e"]))
INTS = st.one_of(st.none(), st.integers(min_value=-3, max_value=3))
FLOATS = st.one_of(
    st.none(), st.floats(min_value=-5, max_value=5, allow_nan=False, width=32)
)

ROWS = st.lists(st.tuples(TEXTS, INTS, FLOATS), min_size=0, max_size=40)

AGGREGATE_QUERIES = [
    "SELECT t, COUNT(*), COUNT(i), COUNT(DISTINCT i) FROM data GROUP BY t ORDER BY t",
    "SELECT t, SUM(i), MIN(i), MAX(i) FROM data GROUP BY t ORDER BY t",
    "SELECT i, COUNT(DISTINCT t) FROM data GROUP BY i ORDER BY i",
    "SELECT COUNT(*) FROM data WHERE i > 0 AND t IN ('a', 'b')",
    "SELECT t, i FROM data WHERE i IS NOT NULL ORDER BY i DESC, t LIMIT 5",
    "SELECT SUM((i > 0)::int) FROM data",
    "SELECT t FROM data GROUP BY t HAVING COUNT(*) > 2 ORDER BY t",
    "SELECT DISTINCT t FROM data ORDER BY t",
    "SELECT AVG(f) FROM data WHERE f IS NOT NULL",
]


def _build(backend, rows):
    db = Database(backend=backend)
    db.create_table("data", [("t", "text"), ("i", "integer"), ("f", "float")])
    db.insert("data", rows)
    return db


def _approx_rows(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                round(value, 9) if isinstance(value, float) else value for value in row
            )
        )
    return out


class TestExecutorAgreement:
    @pytest.mark.parametrize("query", AGGREGATE_QUERIES)
    @given(rows=ROWS)
    @settings(max_examples=25, deadline=None)
    def test_row_and_column_agree(self, query, rows):
        row_result = _build("row", rows).execute(query).rows
        column_result = _build("column", rows).execute(query).rows
        assert _approx_rows(row_result) == _approx_rows(column_result)

    @given(rows=ROWS, values=st.lists(st.sampled_from(["a", "b", "z"]), max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_index_matches_full_scan(self, rows, values):
        """An index scan must return exactly what the filter returns."""
        results = []
        for use_index in (False, True):
            db = _build("column", rows)
            if use_index:
                db.create_index("data", "t")
            result = db.execute(
                "SELECT t, i FROM data WHERE t IN (:v) ORDER BY t, i",
                {"v": values},
            )
            results.append(result.rows)
        assert results[0] == results[1]

    @given(rows=ROWS)
    @settings(max_examples=25, deadline=None)
    def test_join_agreement(self, rows):
        query = (
            "SELECT a.t, b.i FROM "
            "(SELECT * FROM data WHERE i IS NOT NULL) AS a "
            "INNER JOIN (SELECT * FROM data WHERE f IS NOT NULL) AS b "
            "ON a.t = b.t AND a.i = b.i "
            "ORDER BY a.t, b.i"
        )
        row_result = _build("row", rows).execute(query).rows
        column_result = _build("column", rows).execute(query).rows
        assert row_result == column_result


class TestEngineInvariants:
    @given(rows=ROWS, k=st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_limit_is_prefix_of_unlimited(self, rows, k):
        db = _build("column", rows)
        unlimited = db.execute("SELECT i FROM data ORDER BY i, t").rows
        limited = db.execute(f"SELECT i FROM data ORDER BY i, t LIMIT {k}").rows
        assert limited == unlimited[:k]

    @given(rows=ROWS)
    @settings(max_examples=25, deadline=None)
    def test_count_star_equals_row_count(self, rows):
        db = _build("row", rows)
        assert db.execute("SELECT COUNT(*) FROM data").scalar() == len(rows)

    @given(rows=ROWS)
    @settings(max_examples=25, deadline=None)
    def test_group_counts_sum_to_total(self, rows):
        db = _build("column", rows)
        groups = db.execute("SELECT t, COUNT(*) FROM data GROUP BY t").rows
        assert sum(count for _, count in groups) == len(rows)

    @given(rows=ROWS)
    @settings(max_examples=20, deadline=None)
    def test_distinct_is_idempotent(self, rows):
        db = _build("column", rows)
        once = db.execute("SELECT DISTINCT t FROM data ORDER BY t").rows
        assert len(set(once)) == len(once)
