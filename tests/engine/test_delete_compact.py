"""The storage-layer mutation primitives behind index maintenance:
``delete_rows`` (tombstone masks), threshold-triggered compaction
(dictionary re-encode + sealed-run rebuild + cluster-key re-sort), and
the data-epoch / plan-invalidation plumbing in ``Database``."""

import numpy as np
import pytest

from repro.engine import Database
from repro.errors import CatalogError

SCHEMA = [("v", "text"), ("n", "integer"), ("f", "float"), ("b", "boolean")]

ROWS = [
    ("x", 1, 1.5, True),
    ("y", 2, 2.5, False),
    (None, None, None, None),
    ("x", 3, 3.5, None),
    ("z", 4, 4.5, True),
    ("y", 5, 5.5, False),
]


def _db(backend: str) -> Database:
    db = Database(backend=backend)
    db.create_table("t", SCHEMA)
    db.insert("t", ROWS)
    return db


@pytest.mark.parametrize("backend", ["row", "column"])
class TestDeleteRows:
    def test_deletes_by_text_predicate(self, backend):
        db = _db(backend)
        assert db.delete_rows("t", "v", ["y"]) == 2
        assert db.num_rows("t") == 4
        assert db.execute("SELECT n FROM t WHERE n IS NOT NULL ORDER BY n").column() == [1, 3, 4]

    def test_deletes_by_integer_predicate(self, backend):
        db = _db(backend)
        assert db.delete_rows("t", "n", [1, 4, 99]) == 2
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 4

    def test_missing_values_delete_nothing(self, backend):
        db = _db(backend)
        assert db.delete_rows("t", "v", ["nope", None]) == 0
        assert db.num_rows("t") == len(ROWS)

    def test_double_delete_is_idempotent(self, backend):
        db = _db(backend)
        assert db.delete_rows("t", "v", ["x"]) == 2
        assert db.delete_rows("t", "v", ["x"]) == 0
        assert db.num_rows("t") == 4

    def test_deleted_rows_invisible_to_all_paths(self, backend):
        db = _db(backend)
        db.create_index("t", "v")
        db.delete_rows("t", "v", ["x"])
        # index-driven scan
        assert db.execute("SELECT n FROM t WHERE v IN ('x')").rows == []
        # sequential scan + aggregation
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 4
        got = db.execute("SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v").rows
        assert got == [(None, 1), ("y", 2), ("z", 1)] or got == [("y", 2), ("z", 1), (None, 1)]

    def test_delete_via_index(self, backend):
        db = _db(backend)
        db.create_index("t", "n")
        assert db.delete_rows("t", "n", [2]) == 1
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 5

    def test_unknown_column_rejected(self, backend):
        db = _db(backend)
        with pytest.raises(CatalogError):
            db.delete_rows("t", "nope", [1])

    def test_insert_after_delete(self, backend):
        db = _db(backend)
        db.delete_rows("t", "v", ["z"])
        db.insert("t", [("w", 9, 9.5, True)])
        assert db.num_rows("t") == 6
        assert db.execute("SELECT n FROM t WHERE v IN ('w')").rows == [(9,)]

    def test_data_epoch_bumps(self, backend):
        db = _db(backend)
        epoch = db.cache_stats()["data_epoch"]
        db.delete_rows("t", "v", ["x"])
        assert db.cache_stats()["data_epoch"] == epoch + 1
        db.delete_rows("t", "v", ["x"])  # no-op: nothing left to delete
        assert db.cache_stats()["data_epoch"] == epoch + 1


@pytest.mark.parametrize("backend", ["row", "column"])
class TestCompaction:
    def test_threshold_triggers_automatically(self, backend):
        db = _db(backend)
        storage = db.table("t")
        storage.compact_threshold = 0.4
        db.delete_rows("t", "v", ["x"])  # 2/6 dead: below threshold
        assert storage.compactions == 0
        db.delete_rows("t", "n", [2])  # 3/6 dead: crosses it
        assert storage.compactions == 1
        assert db.num_rows("t") == 3

    def test_threshold_knob(self, backend):
        db = _db(backend)
        storage = db.table("t")
        storage.compact_threshold = 1.1  # never auto-compact
        db.delete_rows("t", "v", ["x", "y", "z"])
        assert storage.compactions == 0
        db.compact("t")
        assert storage.compactions == 1

    def test_cluster_keys_restore_canonical_order(self, backend):
        db = Database(backend=backend)
        db.create_table("t", [("g", "integer"), ("r", "integer")])
        db.set_cluster_keys("t", ("g", "r"))
        db.insert("t", [(1, 0), (1, 1), (2, 0), (0, 5)])
        db.insert("t", [(0, 1), (2, 1)])
        db.compact("t")
        assert db.execute("SELECT g, r FROM t").rows == [
            (0, 1), (0, 5), (1, 0), (1, 1), (2, 0), (2, 1),
        ]

    def test_queries_agree_before_and_after(self, backend):
        db = _db(backend)
        db.delete_rows("t", "v", ["y"])
        sql = "SELECT v, n FROM t WHERE n IS NOT NULL ORDER BY n"
        before = db.execute(sql).rows
        db.compact("t")
        assert db.execute(sql).rows == before

    def test_compaction_invalidates_referencing_plans(self, backend):
        db = _db(backend)
        db.create_table("other", [("k", "integer")])
        db.insert("other", [(1,)])
        db.execute("SELECT COUNT(*) FROM t")
        db.execute("SELECT COUNT(*) FROM other")
        assert db.plan_cache_stats()["size"] == 2
        db.compact("t")
        assert db.plan_cache_stats()["size"] == 1  # only t's plan dropped
        db.execute("SELECT COUNT(*) FROM other")
        assert db.plan_cache_stats()["hits"] == 1


class TestColumnStoreCompactionLayout:
    """Column-store specifics: tombstone mask bookkeeping and the
    dictionary re-encode on compaction."""

    def test_dictionary_reencoded_to_survivors(self):
        db = _db("column")
        table = db.table("t")
        table.compact_threshold = 1.1  # hold compaction for the mid-state check
        db.delete_rows("t", "v", ["x", "z"])
        # pre-compaction: dictionary still holds the dead values
        assert list(table._seal()[0].dictionary) == ["x", "y", "z"]
        db.compact("t")
        column = table._seal()[0]
        assert list(column.dictionary) == ["y"]
        assert column.codes.dtype == np.int32
        assert column.codes.tolist() == [0, -1, 0]

    def test_all_rows_deleted_leaves_empty_dictionary(self):
        db = Database(backend="column")
        db.create_table("t", [("v", "text")])
        db.insert("t", [("a",), ("b",)])
        db.delete_rows("t", "v", ["a", "b"])
        db.compact("t")
        column = db.table("t")._seal()[0]
        assert len(column.dictionary) == 0
        assert db.num_rows("t") == 0
        db.insert("t", [("c",)])
        assert db.execute("SELECT v FROM t").column() == ["c"]

    def test_tombstone_mask_extends_over_appends(self):
        db = _db("column")
        table = db.table("t")
        table.compact_threshold = 1.1
        db.delete_rows("t", "v", ["x"])
        db.insert("t", [("new1", 7, 7.5, True), ("new2", 8, 8.5, False)])
        got = db.execute("SELECT v FROM t WHERE n IN (7, 8) ORDER BY n").column()
        assert got == ["new1", "new2"]
        assert db.num_rows("t") == 6
        assert len(table._deleted) == 8  # storage rows incl. tombstones

    def test_live_translation_of_position_reads(self):
        db = _db("column")
        table = db.table("t")
        table.compact_threshold = 1.1
        db.delete_rows("t", "n", [1])
        # live row 0 is now the old storage row 1
        data, null = table.column_values("v", np.array([0]))
        assert data.tolist() == ["y"]
        assert table.gather_rows(np.array([0])) == [("y", 2, 2.5, 0)]
        mask = table.isin_mask("v", ["y"])
        assert len(mask) == table.num_rows
        assert mask.tolist() == [True, False, False, False, True]
