"""The Database plan cache: templates plan once per (sql, backend, param
shape), rebinding fresh parameter values must not leak state between
executions, and schema changes invalidate cached plans."""

import pytest

from repro.engine import Database
from repro.errors import PlanningError


@pytest.fixture(params=["row", "column"])
def db(request) -> Database:
    database = Database(backend=request.param)
    database.create_table("t", [("v", "text"), ("g", "integer"), ("n", "integer")])
    database.insert(
        "t",
        [
            ("a", 0, 1),
            ("b", 0, 2),
            ("c", 1, 3),
            ("d", 1, 4),
            ("e", 2, 5),
        ],
    )
    return database


SQL_IN = "SELECT v, n FROM t WHERE v IN (:tokens) ORDER BY n"


class TestCacheHits:
    def test_repeat_execution_hits(self, db):
        db.execute(SQL_IN, {"tokens": ["a", "b"]})
        stats = db.plan_cache_stats()
        assert stats["misses"] >= 1 and stats["hits"] == 0
        db.execute(SQL_IN, {"tokens": ["a", "b"]})
        assert db.plan_cache_stats()["hits"] == 1
        assert db.last_stats.plan_cache_hit is True

    def test_first_execution_reports_miss(self, db):
        result = db.execute(SQL_IN, {"tokens": ["a"]})
        assert result.stats.plan_cache_hit is False

    def test_shape_change_is_separate_entry(self, db):
        # list vs scalar binding of the same IN parameter: distinct keys.
        db.execute(SQL_IN, {"tokens": ["a", "b"]})
        db.execute(SQL_IN, {"tokens": "a"})
        stats = db.plan_cache_stats()
        assert stats["misses"] >= 2 and stats["hits"] == 0

    def test_null_equality_shape(self, db):
        # '=' against NULL is not sargable; '=' against a value is. The
        # shape key separates them and both give correct SQL semantics.
        sql = "SELECT n FROM t WHERE v = :p"
        assert db.execute(sql, {"p": "a"}).column() == [1]
        assert db.execute(sql, {"p": None}).column() == []
        assert db.execute(sql, {"p": "b"}).column() == [2]
        stats = db.plan_cache_stats()
        assert stats["misses"] >= 2 and stats["hits"] == 1

    def test_lru_eviction_bounded(self, db):
        for i in range(Database.PLAN_CACHE_SIZE + 10):
            db.execute(f"SELECT n FROM t WHERE n = {i}")
        assert db.plan_cache_stats()["size"] <= Database.PLAN_CACHE_SIZE


class TestWhitespaceNormalisedKeys:
    """Trivially reformatted statements share one plan-cache entry; only
    whitespace INSIDE string literals stays significant."""

    def test_reformatted_sql_hits_cache(self, db):
        db.execute(SQL_IN, {"tokens": ["a", "b"]})
        reformatted = "SELECT v,  n\n\tFROM t\n  WHERE v IN (:tokens)\n  ORDER BY n"
        result = db.execute(reformatted, {"tokens": ["a", "b"]})
        assert result.rows == [("a", 1), ("b", 2)]
        assert result.stats.plan_cache_hit is True
        stats = db.plan_cache_stats()
        assert stats["hits"] == 1 and stats["size"] == 1

    def test_hit_rate_across_reformattings(self, db):
        """The regression bar: N reformattings of one template = N-1 hits."""
        variants = [
            SQL_IN,
            SQL_IN.replace(" ", "  "),
            SQL_IN.replace(" FROM", "\nFROM").replace(" WHERE", "\n  WHERE"),
            f"  {SQL_IN}  ",
        ]
        for variant in variants:
            db.execute(variant, {"tokens": ["a", "e"]})
        stats = db.plan_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == len(variants) - 1

    def test_literal_whitespace_stays_significant(self, db):
        db.insert("t", [("a b", 9, 6), ("a  b", 9, 7)])
        single = db.execute("SELECT n FROM t WHERE v = 'a b'")
        double = db.execute("SELECT n FROM t WHERE v = 'a  b'")
        assert single.column() == [6]
        assert double.column() == [7]
        assert db.plan_cache_stats()["hits"] == 0

    def test_quoted_literal_with_escapes_is_opaque(self, db):
        db.insert("t", [("it's  x", 9, 8)])
        result = db.execute("SELECT n FROM t WHERE v = 'it''s  x'")
        assert result.column() == [8]

    def test_comment_terminated_by_newline_keeps_distinct_key(self, db):
        """'-- note\\nWHERE ...' filters; '-- note WHERE ...' comments the
        WHERE away entirely. The key comes from the real lexer, so the
        two must never share a cached plan."""
        filtered = db.execute("SELECT n FROM t\n-- note\nWHERE n = 1")
        unfiltered = db.execute("SELECT n FROM t -- note WHERE n = 1")
        assert filtered.column() == [1]
        assert unfiltered.column() == [1, 2, 3, 4, 5]
        assert db.plan_cache_stats()["hits"] == 0

    def test_comment_only_reformatting_hits_cache(self, db):
        first = db.execute("SELECT n FROM t WHERE n = 2")
        second = db.execute("SELECT n FROM t  -- fetch the row\nWHERE n = 2")
        assert first.column() == second.column() == [2]
        assert db.plan_cache_stats()["hits"] == 1

    def test_separator_injection_cannot_forge_token_boundaries(self, db):
        """A string literal containing key-separator bytes must not
        collide with a statement whose token stream encodes the same
        bytes (length-prefixed records are prefix-decodable)."""
        from repro.engine.database import _normalize_sql_key

        forged = "SELECT 'a\x00identifier\x01b' FROM t"
        plain = "SELECT 'a' b FROM t"
        assert _normalize_sql_key(forged) != _normalize_sql_key(plain)
        assert db.execute(forged).rows != db.execute(plain).rows

    def test_keyword_case_shares_key(self, db):
        # The lexer uppercases keywords, so keyword case is free sharing;
        # identifier case stays significant (conservative: a miss, never
        # a wrong hit).
        db.execute("SELECT n FROM t WHERE n = 3")
        assert db.execute("select n from t where n = 3").column() == [3]
        assert db.plan_cache_stats()["hits"] == 1


class TestRebindingNoLeak:
    def test_different_in_lists(self, db):
        first = db.execute(SQL_IN, {"tokens": ["a", "b"]}).rows
        second = db.execute(SQL_IN, {"tokens": ["c"]}).rows
        third = db.execute(SQL_IN, {"tokens": ["a", "e"]}).rows
        assert first == [("a", 1), ("b", 2)]
        assert second == [("c", 3)]
        assert third == [("a", 1), ("e", 5)]
        assert db.plan_cache_stats()["hits"] == 2

    def test_rewrite_ids_rebind(self, db):
        # The seeker rewrite pattern: same SQL, different :__rewrite_ids.
        sql = "SELECT v FROM t WHERE v IN (:tokens) AND g IN (:__rewrite_ids)"
        tokens = ["a", "b", "c", "d", "e"]
        assert db.execute(sql, {"tokens": tokens, "__rewrite_ids": [0]}).column() == ["a", "b"]
        assert db.execute(sql, {"tokens": tokens, "__rewrite_ids": [1, 2]}).column() == ["c", "d", "e"]
        assert db.execute(sql, {"tokens": tokens, "__rewrite_ids": []}).column() == []
        assert db.execute(sql, {"tokens": ["e"], "__rewrite_ids": [2]}).column() == ["e"]
        assert db.plan_cache_stats()["hits"] == 3

    def test_limit_parameter_rebinds(self, db):
        sql = "SELECT n FROM t ORDER BY n DESC LIMIT :k"
        assert db.execute(sql, {"k": 2}).column() == [5, 4]
        assert db.execute(sql, {"k": 4}).column() == [5, 4, 3, 2]
        assert db.execute(sql, {"k": 0}).column() == []
        assert db.plan_cache_stats()["hits"] == 2

    def test_limit_validation_on_rebind(self, db):
        sql = "SELECT n FROM t LIMIT :k"
        db.execute(sql, {"k": 1})
        with pytest.raises(PlanningError):
            db.execute(sql, {"k": -1})

    def test_equality_parameter_rebinds(self, db):
        sql = "SELECT n FROM t WHERE v = :p"
        assert db.execute(sql, {"p": "a"}).column() == [1]
        assert db.execute(sql, {"p": "d"}).column() == [4]
        assert db.execute(sql, {"p": "zz"}).column() == []
        assert db.plan_cache_stats()["hits"] == 2

    def test_residual_parameters_stay_runtime_bound(self, db):
        # Parameters outside sargable position bind at execution time;
        # the cached plan must not pin the first value.
        sql = "SELECT v FROM t WHERE n + 0 = :target"
        assert db.execute(sql, {"target": 3}).column() == ["c"]
        assert db.execute(sql, {"target": 5}).column() == ["e"]


class TestInvalidation:
    def test_drop_and_recreate_table(self, db):
        db.execute(SQL_IN, {"tokens": ["a"]})
        db.drop_table("t")
        db.create_table("t", [("x", "integer"), ("v", "text"), ("n", "integer")])
        db.insert("t", [(0, "a", 9)])
        # Same SQL against the new layout must re-plan, not reuse positions.
        assert db.execute(SQL_IN, {"tokens": ["a"]}).rows == [("a", 9)]

    def test_plan_api_not_cached(self, db):
        plan_a = db.plan(SQL_IN, {"tokens": ["a"]})
        plan_b = db.plan(SQL_IN, {"tokens": ["a"]})
        assert plan_a is not plan_b
