"""The Database plan cache: templates plan once per (sql, backend, param
shape), rebinding fresh parameter values must not leak state between
executions, and schema changes invalidate cached plans."""

import pytest

from repro.engine import Database
from repro.errors import PlanningError


@pytest.fixture(params=["row", "column"])
def db(request) -> Database:
    database = Database(backend=request.param)
    database.create_table("t", [("v", "text"), ("g", "integer"), ("n", "integer")])
    database.insert(
        "t",
        [
            ("a", 0, 1),
            ("b", 0, 2),
            ("c", 1, 3),
            ("d", 1, 4),
            ("e", 2, 5),
        ],
    )
    return database


SQL_IN = "SELECT v, n FROM t WHERE v IN (:tokens) ORDER BY n"


class TestCacheHits:
    def test_repeat_execution_hits(self, db):
        db.execute(SQL_IN, {"tokens": ["a", "b"]})
        stats = db.plan_cache_stats()
        assert stats["misses"] >= 1 and stats["hits"] == 0
        db.execute(SQL_IN, {"tokens": ["a", "b"]})
        assert db.plan_cache_stats()["hits"] == 1
        assert db.last_stats.plan_cache_hit is True

    def test_first_execution_reports_miss(self, db):
        result = db.execute(SQL_IN, {"tokens": ["a"]})
        assert result.stats.plan_cache_hit is False

    def test_shape_change_is_separate_entry(self, db):
        # list vs scalar binding of the same IN parameter: distinct keys.
        db.execute(SQL_IN, {"tokens": ["a", "b"]})
        db.execute(SQL_IN, {"tokens": "a"})
        stats = db.plan_cache_stats()
        assert stats["misses"] >= 2 and stats["hits"] == 0

    def test_null_equality_shape(self, db):
        # '=' against NULL is not sargable; '=' against a value is. The
        # shape key separates them and both give correct SQL semantics.
        sql = "SELECT n FROM t WHERE v = :p"
        assert db.execute(sql, {"p": "a"}).column() == [1]
        assert db.execute(sql, {"p": None}).column() == []
        assert db.execute(sql, {"p": "b"}).column() == [2]
        stats = db.plan_cache_stats()
        assert stats["misses"] >= 2 and stats["hits"] == 1

    def test_lru_eviction_bounded(self, db):
        for i in range(Database.PLAN_CACHE_SIZE + 10):
            db.execute(f"SELECT n FROM t WHERE n = {i}")
        assert db.plan_cache_stats()["size"] <= Database.PLAN_CACHE_SIZE


class TestRebindingNoLeak:
    def test_different_in_lists(self, db):
        first = db.execute(SQL_IN, {"tokens": ["a", "b"]}).rows
        second = db.execute(SQL_IN, {"tokens": ["c"]}).rows
        third = db.execute(SQL_IN, {"tokens": ["a", "e"]}).rows
        assert first == [("a", 1), ("b", 2)]
        assert second == [("c", 3)]
        assert third == [("a", 1), ("e", 5)]
        assert db.plan_cache_stats()["hits"] == 2

    def test_rewrite_ids_rebind(self, db):
        # The seeker rewrite pattern: same SQL, different :__rewrite_ids.
        sql = "SELECT v FROM t WHERE v IN (:tokens) AND g IN (:__rewrite_ids)"
        tokens = ["a", "b", "c", "d", "e"]
        assert db.execute(sql, {"tokens": tokens, "__rewrite_ids": [0]}).column() == ["a", "b"]
        assert db.execute(sql, {"tokens": tokens, "__rewrite_ids": [1, 2]}).column() == ["c", "d", "e"]
        assert db.execute(sql, {"tokens": tokens, "__rewrite_ids": []}).column() == []
        assert db.execute(sql, {"tokens": ["e"], "__rewrite_ids": [2]}).column() == ["e"]
        assert db.plan_cache_stats()["hits"] == 3

    def test_limit_parameter_rebinds(self, db):
        sql = "SELECT n FROM t ORDER BY n DESC LIMIT :k"
        assert db.execute(sql, {"k": 2}).column() == [5, 4]
        assert db.execute(sql, {"k": 4}).column() == [5, 4, 3, 2]
        assert db.execute(sql, {"k": 0}).column() == []
        assert db.plan_cache_stats()["hits"] == 2

    def test_limit_validation_on_rebind(self, db):
        sql = "SELECT n FROM t LIMIT :k"
        db.execute(sql, {"k": 1})
        with pytest.raises(PlanningError):
            db.execute(sql, {"k": -1})

    def test_equality_parameter_rebinds(self, db):
        sql = "SELECT n FROM t WHERE v = :p"
        assert db.execute(sql, {"p": "a"}).column() == [1]
        assert db.execute(sql, {"p": "d"}).column() == [4]
        assert db.execute(sql, {"p": "zz"}).column() == []
        assert db.plan_cache_stats()["hits"] == 2

    def test_residual_parameters_stay_runtime_bound(self, db):
        # Parameters outside sargable position bind at execution time;
        # the cached plan must not pin the first value.
        sql = "SELECT v FROM t WHERE n + 0 = :target"
        assert db.execute(sql, {"target": 3}).column() == ["c"]
        assert db.execute(sql, {"target": 5}).column() == ["e"]


class TestInvalidation:
    def test_drop_and_recreate_table(self, db):
        db.execute(SQL_IN, {"tokens": ["a"]})
        db.drop_table("t")
        db.create_table("t", [("x", "integer"), ("v", "text"), ("n", "integer")])
        db.insert("t", [(0, "a", 9)])
        # Same SQL against the new layout must re-plan, not reuse positions.
        assert db.execute(SQL_IN, {"tokens": ["a"]}).rows == [("a", 9)]

    def test_plan_api_not_cached(self, db):
        plan_a = db.plan(SQL_IN, {"tokens": ["a"]})
        plan_b = db.plan(SQL_IN, {"tokens": ["a"]})
        assert plan_a is not plan_b
