"""End-to-end SQL tests run against BOTH backends.

Every test is parametrised over the row store and the column store; the
two executors must agree. This is the main correctness harness for the
engine substrate.
"""

import pytest

from repro.engine import Database
from repro.errors import CatalogError, EngineError, PlanningError


@pytest.fixture(params=["row", "column"])
def db(request):
    database = Database(backend=request.param)
    database.create_table(
        "people",
        [("name", "text"), ("age", "integer"), ("city", "text"), ("score", "float")],
    )
    database.insert(
        "people",
        [
            ("alice", 30, "berlin", 1.0),
            ("bob", 25, "hannover", 2.5),
            ("carol", 35, "berlin", None),
            ("dan", None, "waterloo", 4.0),
            ("erin", 25, None, 0.5),
        ],
    )
    return database


class TestProjection:
    def test_select_columns(self, db):
        result = db.execute("SELECT name, age FROM people ORDER BY name")
        assert result.columns == ["name", "age"]
        assert result.rows[0] == ("alice", 30)

    def test_select_star(self, db):
        result = db.execute("SELECT * FROM people ORDER BY name LIMIT 1")
        assert result.rows == [("alice", 30, "berlin", 1.0)]

    def test_expressions(self, db):
        result = db.execute("SELECT age + 1, age * 2 FROM people WHERE name = 'bob'")
        assert result.rows == [(26, 50)]

    def test_constant_select_without_from(self, db):
        assert db.execute("SELECT 1 + 2").scalar() == 3

    def test_aliases_in_output(self, db):
        result = db.execute("SELECT age AS years FROM people WHERE name = 'bob'")
        assert result.columns == ["years"]


class TestFilters:
    def test_equality(self, db):
        result = db.execute("SELECT name FROM people WHERE city = 'berlin' ORDER BY name")
        assert result.column() == ["alice", "carol"]

    def test_null_never_matches_equality(self, db):
        result = db.execute("SELECT name FROM people WHERE city = 'nowhere'")
        assert result.rows == []

    def test_is_null(self, db):
        result = db.execute("SELECT name FROM people WHERE city IS NULL")
        assert result.column() == ["erin"]

    def test_is_not_null(self, db):
        result = db.execute("SELECT COUNT(*) FROM people WHERE score IS NOT NULL")
        assert result.scalar() == 4

    def test_in_list(self, db):
        result = db.execute(
            "SELECT name FROM people WHERE city IN ('berlin', 'waterloo') ORDER BY name"
        )
        assert result.column() == ["alice", "carol", "dan"]

    def test_not_in_excludes_nulls(self, db):
        # erin has NULL city: NOT IN over a non-null list is UNKNOWN for her.
        result = db.execute(
            "SELECT name FROM people WHERE city NOT IN ('berlin') ORDER BY name"
        )
        assert result.column() == ["bob", "dan"]

    def test_parameter_in_list(self, db):
        result = db.execute(
            "SELECT name FROM people WHERE city IN (:cities) ORDER BY name",
            {"cities": ["berlin"]},
        )
        assert result.column() == ["alice", "carol"]

    def test_comparison_with_null_is_unknown(self, db):
        result = db.execute("SELECT name FROM people WHERE age > 20 ORDER BY name")
        assert "dan" not in result.column()

    def test_between(self, db):
        result = db.execute(
            "SELECT name FROM people WHERE age BETWEEN 25 AND 30 ORDER BY name"
        )
        assert result.column() == ["alice", "bob", "erin"]

    def test_and_or_composition(self, db):
        result = db.execute(
            "SELECT name FROM people WHERE city = 'berlin' AND age > 30 OR name = 'bob' "
            "ORDER BY name"
        )
        assert result.column() == ["bob", "carol"]

    def test_unbound_parameter_raises(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT name FROM people WHERE city IN (:missing)")


class TestAggregation:
    def test_global_count(self, db):
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 5

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT COUNT(age) FROM people").scalar() == 4

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT age) FROM people").scalar() == 3

    def test_sum_avg(self, db):
        result = db.execute("SELECT SUM(age), AVG(age) FROM people")
        assert result.rows == [(115, 115 / 4)]

    def test_min_max(self, db):
        assert db.execute("SELECT MIN(age), MAX(age) FROM people").rows == [(25, 35)]

    def test_sum_of_empty_group_is_null(self, db):
        assert db.execute("SELECT SUM(age) FROM people WHERE name = 'x'").scalar() is None

    def test_count_of_empty_is_zero(self, db):
        assert db.execute("SELECT COUNT(*) FROM people WHERE name = 'x'").scalar() == 0

    def test_group_by(self, db):
        result = db.execute(
            "SELECT city, COUNT(*) FROM people GROUP BY city ORDER BY city"
        )
        # NULL city groups together and sorts last.
        assert result.rows == [("berlin", 2), ("hannover", 1), ("waterloo", 1), (None, 1)]

    def test_group_by_with_aggregate_ordering(self, db):
        result = db.execute(
            "SELECT city FROM people WHERE city IS NOT NULL "
            "GROUP BY city ORDER BY COUNT(*) DESC, city LIMIT 1"
        )
        assert result.column() == ["berlin"]

    def test_having(self, db):
        result = db.execute(
            "SELECT age FROM people GROUP BY age HAVING COUNT(*) > 1"
        )
        assert result.rows == [(25,)]

    def test_sum_distinct(self, db):
        assert db.execute("SELECT SUM(DISTINCT age) FROM people").scalar() == 90

    def test_aggregate_of_expression(self, db):
        assert db.execute("SELECT SUM((age > 26)::int) FROM people").scalar() == 2

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT name, COUNT(*) FROM people GROUP BY city")


class TestOrderingAndLimit:
    def test_order_desc_nulls_last(self, db):
        result = db.execute("SELECT age FROM people ORDER BY age DESC")
        assert result.column() == [35, 30, 25, 25, None]

    def test_order_asc_nulls_last(self, db):
        result = db.execute("SELECT age FROM people ORDER BY age")
        assert result.column() == [25, 25, 30, 35, None]

    def test_multi_key_sort(self, db):
        result = db.execute("SELECT age, name FROM people ORDER BY age DESC, name DESC")
        assert result.rows[2:4] == [(25, "erin"), (25, "bob")]

    def test_order_by_alias(self, db):
        result = db.execute("SELECT age AS years FROM people ORDER BY years LIMIT 1")
        assert result.column() == [25]

    def test_order_by_ordinal(self, db):
        result = db.execute("SELECT name FROM people ORDER BY 1 LIMIT 2")
        assert result.column() == ["alice", "bob"]

    def test_limit_zero(self, db):
        assert db.execute("SELECT name FROM people LIMIT 0").rows == []

    def test_limit_larger_than_input(self, db):
        assert len(db.execute("SELECT name FROM people LIMIT 99").rows) == 5

    def test_limit_parameter(self, db):
        assert len(db.execute("SELECT name FROM people LIMIT :k", {"k": 2}).rows) == 2

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT age FROM people ORDER BY age")
        assert result.column() == [25, 30, 35, None]


class TestJoins:
    @pytest.fixture
    def joined_db(self, db):
        db.create_table("cities", [("city", "text"), ("country", "text")])
        db.insert(
            "cities",
            [("berlin", "de"), ("hannover", "de"), ("waterloo", "ca"), ("paris", "fr")],
        )
        return db

    def test_inner_join(self, joined_db):
        result = joined_db.execute(
            "SELECT p.name, c.country FROM people p "
            "INNER JOIN cities c ON p.city = c.city ORDER BY p.name"
        )
        assert result.rows == [
            ("alice", "de"),
            ("bob", "de"),
            ("carol", "de"),
            ("dan", "ca"),
        ]

    def test_join_nulls_never_match(self, joined_db):
        result = joined_db.execute(
            "SELECT COUNT(*) FROM people p INNER JOIN cities c ON p.city = c.city"
        )
        assert result.scalar() == 4  # erin's NULL city drops out

    def test_left_join_pads_nulls(self, joined_db):
        result = joined_db.execute(
            "SELECT p.name, c.country FROM people p "
            "LEFT JOIN cities c ON p.city = c.city ORDER BY p.name"
        )
        assert ("erin", None) in result.rows
        assert len(result.rows) == 5

    def test_join_on_multiple_keys(self, joined_db):
        joined_db.create_table("pairs", [("city", "text"), ("age", "integer")])
        joined_db.insert("pairs", [("berlin", 30), ("berlin", 99)])
        result = joined_db.execute(
            "SELECT p.name FROM people p INNER JOIN pairs q "
            "ON p.city = q.city AND p.age = q.age"
        )
        assert result.column() == ["alice"]

    def test_derived_table_join(self, joined_db):
        result = joined_db.execute(
            "SELECT COUNT(*) FROM "
            "(SELECT * FROM people WHERE age > 24) AS old "
            "INNER JOIN cities c ON old.city = c.city"
        )
        assert result.scalar() == 3

    def test_duplicate_alias_rejected(self, joined_db):
        with pytest.raises(PlanningError):
            joined_db.execute(
                "SELECT 1 FROM people p INNER JOIN cities p ON p.city = p.city"
            )

    def test_join_multiplicity(self, joined_db):
        joined_db.create_table("dup", [("city", "text")])
        joined_db.insert("dup", [("berlin",), ("berlin",)])
        result = joined_db.execute(
            "SELECT COUNT(*) FROM people p INNER JOIN dup d ON p.city = d.city"
        )
        assert result.scalar() == 4  # 2 berlin people x 2 rows


class TestIndexes:
    def test_index_scan_is_used(self, db):
        db.create_index("people", "city")
        result = db.execute("SELECT name FROM people WHERE city IN ('berlin')")
        assert result.stats.index_scans == 1
        assert sorted(result.column()) == ["alice", "carol"]

    def test_index_and_filter_agree(self, db):
        without_index = db.execute(
            "SELECT name FROM people WHERE city = 'berlin' AND age > 29 ORDER BY name"
        ).rows
        db.create_index("people", "city")
        with_index = db.execute(
            "SELECT name FROM people WHERE city = 'berlin' AND age > 29 ORDER BY name"
        ).rows
        assert with_index == without_index

    def test_index_is_idempotent(self, db):
        db.create_index("people", "city")
        db.create_index("people", "city")

    def test_index_updates_on_insert(self, db):
        db.create_index("people", "city")
        db.insert("people", [("frank", 40, "berlin", 3.0)])
        result = db.execute("SELECT COUNT(*) FROM people WHERE city IN ('berlin')")
        assert result.scalar() == 3


class TestCatalog:
    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT 1 FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT missing FROM people")

    def test_duplicate_table(self, db):
        with pytest.raises(CatalogError):
            db.create_table("people", [("a", "integer")])

    def test_drop_table(self, db):
        db.drop_table("people")
        assert not db.has_table("people")

    def test_bad_backend_name(self):
        with pytest.raises(EngineError):
            Database(backend="graph")

    def test_row_width_mismatch(self, db):
        with pytest.raises(EngineError):
            db.insert("people", [("too", "short")])

    def test_scalar_requires_1x1(self, db):
        with pytest.raises(EngineError):
            db.execute("SELECT name FROM people").scalar()


class TestBackendAgreement:
    """The same non-trivial query must give identical results on both
    backends (modulo row order, which the queries pin down)."""

    QUERIES = [
        "SELECT city, COUNT(*), SUM(age), MIN(score), MAX(score) FROM people "
        "GROUP BY city ORDER BY city",
        "SELECT name FROM people WHERE age IN (25, 35) ORDER BY name",
        "SELECT age, COUNT(DISTINCT city) FROM people GROUP BY age ORDER BY age",
        "SELECT COUNT(*) FROM people WHERE score IS NULL OR age IS NULL",
        "SELECT name, age * 2 + 1 FROM people WHERE age IS NOT NULL ORDER BY age, name",
        "SELECT SUM((age >= 30)::int) FROM people",
        "SELECT ABS(-score) FROM people WHERE score IS NOT NULL ORDER BY score",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_agreement(self, query):
        results = []
        for backend in ("row", "column"):
            database = Database(backend=backend)
            database.create_table(
                "people",
                [
                    ("name", "text"),
                    ("age", "integer"),
                    ("city", "text"),
                    ("score", "float"),
                ],
            )
            database.insert(
                "people",
                [
                    ("alice", 30, "berlin", 1.0),
                    ("bob", 25, "hannover", 2.5),
                    ("carol", 35, "berlin", None),
                    ("dan", None, "waterloo", 4.0),
                    ("erin", 25, None, 0.5),
                ],
            )
            results.append(database.execute(query).rows)
        assert results[0] == results[1]
