"""Hammer tests: the plan cache under concurrent execute traffic.

The serving tier runs many handler threads against one read-only
``Database``; the cache's get/put, LRU order, hit/miss counters, and
invalidation must all hold up without losing entries or corrupting
state. These tests drive real concurrent ``execute`` calls -- including
the rebind race: same statement, different parameters, in flight at
once -- and check both results and counter accounting.
"""

import threading

import pytest

from repro.engine.database import Database

PLAN_CACHE_SIZE = Database.PLAN_CACHE_SIZE


@pytest.fixture
def db() -> Database:
    database = Database(backend="column")
    database.create_table("items", [("Val", "TEXT"), ("Grp", "INTEGER")])
    database.insert(
        "items",
        [(f"v{i % 50}", i % 7) for i in range(700)],
    )
    return database


def _expected_count(value: str) -> int:
    # values v0..v49 appear 14 times each in the fixture
    return 14


def test_concurrent_execute_same_statement_different_params(db):
    """The rebind race: N threads share one cached plan, each binding its
    own parameters. Per-entry locking must serialise rebind+run so no
    thread sees another's bindings."""
    errors: list[str] = []
    barrier = threading.Barrier(8)

    def work(seed: int) -> None:
        barrier.wait()
        for i in range(60):
            value = f"v{(seed * 7 + i) % 50}"
            result = db.execute(
                "SELECT COUNT(*) FROM items WHERE Val = :v", {"v": value}
            )
            got = result.rows[0][0]
            if got != _expected_count(value):
                errors.append(f"{value}: got {got}")

    threads = [threading.Thread(target=work, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


def test_concurrent_counters_account_for_every_lookup(db):
    """hits + misses == total executes, across racing threads."""
    before = db.plan_cache_stats()
    n_threads, per_thread = 6, 40
    templates = [
        "SELECT COUNT(*) FROM items WHERE Grp = :g",
        "SELECT Val FROM items WHERE Grp = :g LIMIT 3",
        "SELECT COUNT(*) FROM items WHERE Val = :v",
    ]
    barrier = threading.Barrier(n_threads)

    def work(seed: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            sql = templates[(seed + i) % len(templates)]
            params = {"g": i % 7} if ":g" in sql else {"v": f"v{i % 50}"}
            db.execute(sql, params)

    threads = [threading.Thread(target=work, args=(s,)) for s in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    after = db.plan_cache_stats()
    lookups = (after["hits"] - before["hits"]) + (after["misses"] - before["misses"])
    assert lookups == n_threads * per_thread
    # No lost entries: every distinct (template, shape) is cached.
    assert after["size"] >= len(templates)


def test_concurrent_distinct_statements_never_lose_entries(db):
    """Many distinct statements racing into the cache: the LRU must end
    up with exactly the most recent PLAN_CACHE_SIZE-bounded set and the
    map must never drop below the distinct count when it fits."""
    n_threads = 4
    statements = [
        f"SELECT COUNT(*) FROM items WHERE Grp = {g} AND Val = :v" for g in range(7)
    ]
    assert len(statements) < PLAN_CACHE_SIZE
    barrier = threading.Barrier(n_threads)

    def work(seed: int) -> None:
        barrier.wait()
        for i in range(30):
            sql = statements[(seed * 3 + i) % len(statements)]
            db.execute(sql, {"v": f"v{i % 50}"})

    threads = [threading.Thread(target=work, args=(s,)) for s in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = db.plan_cache_stats()
    assert stats["size"] <= PLAN_CACHE_SIZE
    # Re-running every statement now must be all hits: nothing was lost.
    before = db.plan_cache_stats()
    for sql in statements:
        db.execute(sql, {"v": "v1"})
    after = db.plan_cache_stats()
    assert after["hits"] - before["hits"] == len(statements)
    assert after["misses"] == before["misses"]


def test_concurrent_execute_with_invalidation(db):
    """Readers racing cache invalidation (the mutation path) still get
    correct results and a consistent cache afterwards."""
    stop = threading.Event()
    errors: list[str] = []

    def read() -> None:
        i = 0
        while not stop.is_set():
            value = f"v{i % 50}"
            result = db.execute(
                "SELECT COUNT(*) FROM items WHERE Val = :v", {"v": value}
            )
            if result.rows[0][0] != _expected_count(value):
                errors.append(value)
            i += 1

    def invalidate() -> None:
        for _ in range(200):
            db._invalidate_plans_for("items")

    readers = [threading.Thread(target=read) for _ in range(4)]
    for t in readers:
        t.start()
    inv = threading.Thread(target=invalidate)
    inv.start()
    inv.join()
    stop.set()
    for t in readers:
        t.join()
    assert errors == []
    stats = db.plan_cache_stats()
    assert stats["size"] <= PLAN_CACHE_SIZE


def test_lru_order_survives_concurrent_touches(db):
    """After concurrent traffic, the LRU still evicts oldest-first:
    touch A, fill past capacity with fresh statements, A's re-execution
    behaviour stays consistent with an intact OrderedDict (no corruption
    -> no KeyError, size bounded)."""
    db.execute("SELECT COUNT(*) FROM items WHERE Grp = :g", {"g": 1})

    def churn(seed: int) -> None:
        for i in range(PLAN_CACHE_SIZE // 2):
            db.execute(
                f"SELECT COUNT(*) FROM items WHERE Grp = {seed} OR Grp = {i % 7}",
                {},
            )

    threads = [threading.Thread(target=churn, args=(s,)) for s in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = db.plan_cache_stats()
    assert stats["size"] <= PLAN_CACHE_SIZE
    result = db.execute("SELECT COUNT(*) FROM items WHERE Grp = :g", {"g": 1})
    assert result.rows[0][0] == 100
