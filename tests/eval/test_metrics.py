"""Retrieval metrics and harness utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    ExperimentLog,
    average_precision_at_k,
    f1_score,
    mean_average_precision,
    measure,
    precision_at_k,
    recall_at_k,
    render_series_chart,
    render_table,
    timed,
)


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        assert precision_at_k([1, 2, 3], {1, 2, 3}, 3) == 1.0
        assert recall_at_k([1, 2, 3], {1, 2, 3}, 3) == 1.0

    def test_partial(self):
        assert precision_at_k([1, 9, 2, 8], {1, 2}, 4) == 0.5
        assert recall_at_k([1, 9], {1, 2, 3, 4}, 2) == 0.25

    def test_precision_normalises_by_retrieved(self):
        # 2 retrieved, both relevant, k=10 -> precision 1.0 (TUS convention)
        assert precision_at_k([1, 2], {1, 2, 3}, 10) == 1.0

    def test_empty_cases(self):
        assert precision_at_k([], {1}, 5) == 0.0
        assert recall_at_k([1], set(), 5) == 0.0
        assert precision_at_k([1], {1}, 0) == 0.0

    @given(
        retrieved=st.lists(st.integers(0, 20), max_size=15, unique=True),
        relevant=st.sets(st.integers(0, 20), max_size=15),
        k=st.integers(1, 15),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, retrieved, relevant, k):
        p = precision_at_k(retrieved, relevant, k)
        r = recall_at_k(retrieved, relevant, k)
        assert 0.0 <= p <= 1.0
        assert 0.0 <= r <= 1.0

    @given(
        retrieved=st.lists(st.integers(0, 20), max_size=15, unique=True),
        relevant=st.sets(st.integers(0, 20), min_size=1, max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_recall_monotone_in_k(self, retrieved, relevant):
        recalls = [recall_at_k(retrieved, relevant, k) for k in range(1, 16)]
        assert recalls == sorted(recalls)


class TestAveragePrecision:
    def test_front_loaded_ranking_scores_higher(self):
        good = average_precision_at_k([1, 2, 9, 8], {1, 2}, 4)
        bad = average_precision_at_k([9, 8, 1, 2], {1, 2}, 4)
        assert good > bad

    def test_perfect_is_one(self):
        assert average_precision_at_k([1, 2], {1, 2}, 2) == 1.0

    def test_no_hits_is_zero(self):
        assert average_precision_at_k([9], {1}, 1) == 0.0

    def test_map_averages(self):
        runs = [([1], {1}), ([9], {1})]
        assert mean_average_precision(runs, 1) == 0.5

    def test_map_empty(self):
        assert mean_average_precision([], 5) == 0.0


class TestF1:
    def test_harmonic_mean(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.5, 0.5) == 0.5
        assert f1_score(0.0, 0.0) == 0.0

    def test_asymmetric(self):
        assert f1_score(1.0, 0.0) == 0.0


class TestHarness:
    def test_timed(self):
        result, seconds = timed(lambda: 42)
        assert result == 42
        assert seconds >= 0.0

    def test_measure_aggregates(self):
        timing = measure(lambda: sum(range(100)), repetitions=3)
        assert timing.repetitions == 3
        assert timing.seconds_min <= timing.seconds_mean <= timing.seconds_max
        assert timing.milliseconds_mean == pytest.approx(timing.seconds_mean * 1e3)

    def test_measure_rejects_zero_reps(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repetitions=0)

    def test_experiment_log(self):
        log = ExperimentLog()
        log.record("T3", {"task": "imputation"}, runtime=0.1)
        log.record("T4", {"seeker": "SC"}, gain=0.2)
        assert len(log.for_experiment("T3")) == 1
        assert log.for_experiment("T3")[0].values["runtime"] == 0.1


class TestReporting:
    def test_render_table_contains_cells(self):
        text = render_table("Demo", ["a", "b"], [[1, "x"], [2.5, "y"]], note="n")
        assert "Demo" in text
        assert "2.5" in text
        assert "note: n" in text

    def test_render_series_chart(self):
        text = render_series_chart(
            "Fig", [10, 100], {"BLEND": [0.1, 0.2], "Josie": [0.3, 0.4]}
        )
        assert "BLEND" in text and "Josie" in text
        assert "#" in text
