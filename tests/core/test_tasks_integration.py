"""End-to-end integration: the Table III task plans against benchmark
lakes with ground truth, on both storage backends."""

import pytest

from repro import Blend
from repro.core import tasks
from repro.core.seekers import CorrelationSeeker
from repro.errors import SeekerError
from repro.lake.generators import (
    make_correlation_benchmark,
    make_imputation_benchmark,
)


@pytest.fixture(scope="module")
def impute_bench():
    return make_imputation_benchmark(
        num_queries=2, num_keys=30, distractor_tables=10,
        decoy_tables_per_query=2, decoy_rows=40, seed=67,
    )


@pytest.fixture(scope="module", params=["row", "column"])
def impute_blend(request, impute_bench):
    blend = Blend(impute_bench.lake, backend=request.param)
    blend.build_index()
    return blend


class TestImputationPlan:
    def test_finds_ground_truth_tables(self, impute_bench, impute_blend):
        query = impute_bench.queries[0]
        plan = tasks.imputation_plan(list(query.examples), list(query.query_keys), k=10)
        run = impute_blend.run(plan)
        truth = impute_bench.ground_truth(query)
        assert truth <= set(run.output.table_ids())

    def test_decoys_excluded(self, impute_bench, impute_blend):
        """Decoy tables contain the examples but no query keys: the
        Intersection must drop them."""
        query = impute_bench.queries[0]
        plan = tasks.imputation_plan(list(query.examples), list(query.query_keys), k=10)
        run = impute_blend.run(plan)
        decoy_ids = {
            impute_bench.lake.id_of(f"impute_bench_q0_decoy{i}") for i in range(2)
        }
        assert not decoy_ids & set(run.output.table_ids())

    def test_optimized_matches_unoptimized_targets(self, impute_bench, impute_blend):
        query = impute_bench.queries[0]
        plan = tasks.imputation_plan(list(query.examples), list(query.query_keys), k=10)
        optimized = set(impute_blend.run(plan).output.table_ids())
        plain = set(impute_blend.run(plan, optimize=False).output.table_ids())
        truth = impute_bench.ground_truth(query)
        assert truth <= optimized
        assert truth <= plain

    def test_mc_is_rewritten_by_sc(self, impute_bench, impute_blend):
        query = impute_bench.queries[0]
        plan = tasks.imputation_plan(list(query.examples), list(query.query_keys), k=10)
        execution = impute_blend.plan_for(plan)
        assert execution.order.index("query") < execution.order.index("examples")
        assert execution.rewrites["examples"].mode == "intersect"


class TestNegativeExamplesPlan:
    def test_negative_tables_excluded(self, impute_bench, impute_blend):
        query = impute_bench.queries[0]
        other = impute_bench.queries[1]
        positive = list(query.examples)
        negative = list(zip(other.query_keys[:5], other.answers[:5]))
        plan = tasks.negative_examples_plan(positive, negative, k=20)
        run = impute_blend.run(plan)
        # Tables of the OTHER query (which contain the negatives) are out.
        other_ids = {
            impute_bench.lake.id_of(f"impute_bench_q1_full{i}") for i in range(3)
        }
        assert not other_ids & set(run.output.table_ids())
        # Tables of the positive query survive.
        own_ids = {
            impute_bench.lake.id_of(f"impute_bench_q0_full{i}") for i in range(3)
        }
        assert own_ids <= set(run.output.table_ids())


class TestCorrelationThresholds:
    @pytest.fixture(scope="class")
    def corr_blend(self):
        bench = make_correlation_benchmark(
            num_queries=2, num_entities=60, tables_per_query=4,
            rows_per_table=60, distractor_tables=8, seed=71,
        )
        blend = Blend(bench.lake, backend="column")
        blend.build_index()
        return bench, blend

    def test_min_support_filters_stray_collisions(self, corr_blend):
        bench, blend = corr_blend
        query = bench.queries[0]
        strict = blend.correlation_search(
            list(query.keys), list(query.targets), k=10, min_support=3
        )
        truth = bench.ground_truth(query, 10)
        assert set(strict.table_ids()) <= set(truth) | set(strict.table_ids())
        assert strict.table_ids()[0] in truth

    def test_min_support_one_admits_tiny_groups(self, corr_blend):
        bench, blend = corr_blend
        query = bench.queries[0]
        loose = blend.correlation_search(
            list(query.keys), list(query.targets), k=30, min_support=1
        )
        strict = blend.correlation_search(
            list(query.keys), list(query.targets), k=30, min_support=5
        )
        assert len(loose) >= len(strict)

    def test_min_qcr_threshold(self, corr_blend):
        bench, blend = corr_blend
        query = bench.queries[0]
        seeker = CorrelationSeeker(
            list(query.keys), list(query.targets), k=30, min_qcr=0.9
        )
        result = seeker.execute(blend.context())
        assert all(hit.score >= 0.9 for hit in result)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(SeekerError):
            CorrelationSeeker(["a", "b"], [1, 2], min_support=0)
        with pytest.raises(SeekerError):
            CorrelationSeeker(["a", "b"], [1, 2], min_qcr=1.5)


class TestTaskPlanShapes:
    def test_feature_discovery_plan_structure(self):
        plan = tasks.feature_discovery_plan(
            [("a", "b")], ["k1", "k2"], [1.0, 2.0], [[1.5, 2.5], [0.1, 0.2]], k=5
        )
        names = [node.name for node in plan.nodes()]
        assert names == [
            "target_corr", "feat0", "diff0", "feat1", "diff1", "joinable", "out",
        ]
        assert plan.sink().name == "out"

    def test_multi_objective_plan_structure(self):
        from repro.lake.table import Table

        examples = Table("ex", ["key", "target"], [("a", 1.0), ("b", 2.0), ("c", 5.0)])
        plan = tasks.multi_objective_plan_no_imputation(
            ["kw1"], examples, "key", "target", k=5
        )
        names = [node.name for node in plan.nodes()]
        assert names[0] == "kw"
        assert "counter" in names and "union" in names
        assert plan.sink().name == "union"
