"""Theorem 1 (output preservation) verified empirically and by property
tests on randomly generated plans.

Exact statement verified (see the reproduction note in
``repro.core.optimizer.planner``):

* With k large enough that no seeker truncates, optimized and
  unoptimized execution produce identical outputs.
* Under truncation, the optimized Intersection result is a superset of
  the unoptimized one (more complete, never less), and Difference /
  Union / Counter outputs are unchanged.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Blend, Combiners, Plan, Seekers
from repro.lake.generators import CorpusConfig, generate_corpus

BIG_K = 10_000


@pytest.fixture(scope="module")
def blend():
    lake = generate_corpus(CorpusConfig(num_tables=30, max_rows=40, seed=3))
    deployment = Blend(lake, backend="column")
    deployment.build_index()
    return deployment


def lake_values(blend, seed, count):
    """Sample real lake tokens so seekers produce non-trivial results."""
    import random

    rng = random.Random(seed)
    tokens = sorted(blend.stats.frequencies)
    return [tokens[rng.randrange(len(tokens))] for _ in range(count)]


class TestTheorem1Exact:
    def test_intersection_identical_without_truncation(self, blend):
        plan = Plan()
        plan.add("a", Seekers.SC(lake_values(blend, 1, 12), k=BIG_K))
        plan.add("b", Seekers.KW(lake_values(blend, 2, 6), k=BIG_K))
        plan.add("i", Combiners.Intersect(k=BIG_K), ["a", "b"])
        optimized = blend.run(plan).output
        plain = blend.run(plan, optimize=False).output
        assert optimized.table_ids() == plain.table_ids()

    def test_difference_identical_without_truncation(self, blend):
        plan = Plan()
        plan.add("pos", Seekers.MC(_pairs(blend, 5), k=BIG_K))
        plan.add("neg", Seekers.MC(_pairs(blend, 6), k=BIG_K))
        plan.add("d", Combiners.Difference(k=BIG_K), ["pos", "neg"])
        optimized = blend.run(plan).output
        plain = blend.run(plan, optimize=False).output
        assert optimized.table_ids() == plain.table_ids()

    def test_union_never_rewritten(self, blend):
        plan = Plan()
        plan.add("a", Seekers.SC(lake_values(blend, 3, 8), k=7))
        plan.add("b", Seekers.SC(lake_values(blend, 4, 8), k=7))
        plan.add("u", Combiners.Union(k=20), ["a", "b"])
        optimized = blend.run(plan).output
        plain = blend.run(plan, optimize=False).output
        assert optimized.table_ids() == plain.table_ids()

    def test_counter_never_rewritten(self, blend):
        plan = Plan()
        plan.add("a", Seekers.SC(lake_values(blend, 5, 8), k=7))
        plan.add("b", Seekers.SC(lake_values(blend, 6, 8), k=7))
        plan.add("c", Combiners.Counter(k=20), ["a", "b"])
        optimized = blend.run(plan).output
        plain = blend.run(plan, optimize=False).output
        assert optimized.table_ids() == plain.table_ids()


class TestTheorem1Truncated:
    @given(seed=st.integers(min_value=0, max_value=50), k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_truncated_intersection_is_superset(self, blend, seed, k):
        plan = Plan()
        plan.add("a", Seekers.SC(lake_values(blend, seed, 10), k=k))
        plan.add("b", Seekers.KW(lake_values(blend, seed + 1000, 5), k=k))
        plan.add("i", Combiners.Intersect(k=BIG_K), ["a", "b"])
        optimized = set(blend.run(plan).output.table_ids())
        plain = set(blend.run(plan, optimize=False).output.table_ids())
        assert plain <= optimized

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_difference_rewrite_preserves_output(self, blend, seed):
        """NOT IN rewriting is exact even under truncation: the subtrahend
        runs unrewritten, and excluding its tables from the minuend's
        search commutes with excluding them afterwards."""
        plan = Plan()
        plan.add("pos", Seekers.SC(lake_values(blend, seed, 10), k=BIG_K))
        plan.add("neg", Seekers.SC(lake_values(blend, seed + 77, 6), k=4))
        plan.add("d", Combiners.Difference(k=BIG_K), ["pos", "neg"])
        optimized = blend.run(plan).output
        plain = blend.run(plan, optimize=False).output
        assert optimized.table_ids() == plain.table_ids()


def _pairs(blend, seed):
    values = lake_values(blend, seed, 8)
    return [(values[i], values[i + 1]) for i in range(0, 6, 2)]
