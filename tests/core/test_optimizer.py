"""Optimizer unit tests: EG identification, rule ranking, cost model,
and the rewrite schedule."""

import pytest

from repro import Combiners, Plan, Seekers
from repro.core.optimizer import (
    CostModel,
    LinearModel,
    Optimizer,
    SeekerFeatures,
    extract_features,
    identify_groups,
    rank_seekers,
    rule_rank,
)
from repro.core.seekers import (
    CorrelationSeeker,
    KeywordSeeker,
    MultiColumnSeeker,
    SingleColumnSeeker,
)
from repro.index.stats import LakeStatistics


@pytest.fixture
def stats():
    return LakeStatistics(
        num_tables=10,
        num_cells=1000,
        frequencies={"common": 100, "rare": 2, "x": 10, "y": 20, "z": 5},
    )


class TestRules:
    def test_rule_tiers(self):
        assert rule_rank(KeywordSeeker(["x"])) == 0
        assert rule_rank(SingleColumnSeeker(["x"])) == 1
        assert rule_rank(CorrelationSeeker(["a", "b"], [1, 2])) == 2
        assert rule_rank(MultiColumnSeeker([("a", "b")])) == 3

    def test_rule_1_kw_first(self, stats):
        order = rank_seekers(
            [
                ("mc", MultiColumnSeeker([("x", "y")])),
                ("kw", KeywordSeeker(["x"])),
                ("sc", SingleColumnSeeker(["x"])),
            ],
            CostModel(),
            stats,
        )
        assert order[0] == "kw"

    def test_rule_2_mc_last(self, stats):
        order = rank_seekers(
            [
                ("mc", MultiColumnSeeker([("x", "y")])),
                ("c", CorrelationSeeker(["a", "b"], [1, 2])),
                ("sc", SingleColumnSeeker(["x"])),
            ],
            CostModel(),
            stats,
        )
        assert order[-1] == "mc"

    def test_rule_3_sc_before_c(self, stats):
        order = rank_seekers(
            [
                ("c", CorrelationSeeker(["a", "b"], [1, 2])),
                ("sc", SingleColumnSeeker(["x"])),
            ],
            CostModel(),
            stats,
        )
        assert order == ["sc", "c"]

    def test_same_type_ordered_by_cost(self, stats):
        cheap = SingleColumnSeeker(["rare"])
        expensive = SingleColumnSeeker(["common"] + ["x", "y", "z"])
        order = rank_seekers(
            [("expensive", expensive), ("cheap", cheap)], CostModel(), stats
        )
        assert order == ["cheap", "expensive"]


class TestCostModel:
    def test_feature_extraction(self, stats):
        seeker = SingleColumnSeeker(["common", "rare"])
        features = extract_features(seeker, stats)
        assert features.cardinality == 2.0
        assert features.columns == 1.0
        assert features.average_frequency == pytest.approx(51.0)

    def test_mc_frequency_is_product(self, stats):
        seeker = MultiColumnSeeker([("common", "rare")])
        features = extract_features(seeker, stats)
        assert features.average_frequency == pytest.approx(100.0 * 2.0)

    def test_linear_model_fit_recovers_weights(self):
        rows = [
            SeekerFeatures(cardinality=c, columns=1, average_frequency=f)
            for c in (1.0, 5.0, 10.0, 20.0)
            for f in (1.0, 10.0, 100.0)
        ]
        runtimes = [0.5 + 2.0 * r.cardinality + 0.1 * r.average_frequency for r in rows]
        model = LinearModel.fit(rows, runtimes)
        prediction = model.predict(
            SeekerFeatures(cardinality=7.0, columns=1.0, average_frequency=50.0)
        )
        assert prediction == pytest.approx(0.5 + 14.0 + 5.0, rel=1e-6)

    def test_fit_requires_samples(self):
        with pytest.raises(ValueError):
            LinearModel.fit([SeekerFeatures(1, 1, 1)], [0.1])

    def test_untrained_fallback_orders_by_frequency(self, stats):
        model = CostModel()
        cheap = model.estimate(SingleColumnSeeker(["rare"]), stats)
        pricey = model.estimate(SingleColumnSeeker(["common"]), stats)
        assert cheap < pricey

    def test_trained_flag(self):
        model = CostModel()
        assert not model.is_trained()
        model.set_model("SC", LinearModel.fit(
            [SeekerFeatures(1, 1, 1), SeekerFeatures(2, 1, 2)], [0.1, 0.2]
        ))
        assert model.is_trained("SC")
        assert not model.is_trained("MC")


class TestExecutionGroups:
    def test_intersection_group_found(self):
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.MC([("x", "y")]))
        plan.add("i", Combiners.Intersect(k=5), ["a", "b"])
        groups = identify_groups(plan)
        assert len(groups) == 1
        assert set(groups[0].seeker_names) == {"a", "b"}
        assert groups[0].reorderable

    def test_difference_group_fixed_order(self):
        plan = Plan()
        plan.add("pos", Seekers.MC([("x", "y")]))
        plan.add("neg", Seekers.MC([("p", "q")]))
        plan.add("d", Combiners.Difference(k=5), ["pos", "neg"])
        groups = identify_groups(plan)
        assert len(groups) == 1
        assert groups[0].fixed_order == ("neg", "pos")
        assert not groups[0].reorderable

    def test_union_and_counter_not_grouped(self):
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.SC(["y"]))
        plan.add("u", Combiners.Union(k=5), ["a", "b"])
        assert identify_groups(plan) == []

        plan2 = Plan()
        plan2.add("a", Seekers.SC(["x"]))
        plan2.add("b", Seekers.SC(["y"]))
        plan2.add("c", Combiners.Counter(k=5), ["a", "b"])
        assert identify_groups(plan2) == []

    def test_shared_seeker_excluded_from_group(self):
        """A seeker with two consumers must not be rewritten."""
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.SC(["y"]))
        plan.add("i", Combiners.Intersect(k=5), ["a", "b"])
        plan.add("u", Combiners.Union(k=5), ["a", "i"])  # 'a' consumed twice
        groups = identify_groups(plan)
        assert groups == []  # only one exclusive seeker remains -> no group

    def test_combiner_inputs_become_prior_sources(self):
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.SC(["y"]))
        plan.add("u", Combiners.Union(k=5), ["a", "b"])
        plan.add("c", Seekers.SC(["z"]))
        plan.add("i", Combiners.Intersect(k=5), ["u", "c"])
        groups = identify_groups(plan)
        # 'i' has one seeker input, but the sub-plan result 'u' can
        # restrict it once executed.
        assert len(groups) == 1
        assert groups[0].seeker_names == ("c",)
        assert groups[0].prior_inputs == ("u",)

    def test_prior_input_rewrites_single_seeker(self):
        stats = LakeStatistics(num_tables=1, num_cells=1, frequencies={})
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.SC(["y"]))
        plan.add("u", Combiners.Union(k=5), ["a", "b"])
        plan.add("c", Seekers.SC(["z"]))
        plan.add("i", Combiners.Intersect(k=5), ["u", "c"])
        execution = Optimizer().optimize(plan, stats)
        assert execution.rewrites["c"].mode == "intersect"
        assert execution.rewrites["c"].source_nodes == ("u",)


class TestOptimizerPlans:
    def test_rewrite_schedule_for_intersection(self, stats):
        plan = Plan()
        plan.add("mc", Seekers.MC([("x", "y")]))
        plan.add("sc", Seekers.SC(["x"]))
        plan.add("i", Combiners.Intersect(k=5), ["mc", "sc"])
        execution = Optimizer().optimize(plan, stats)
        # SC runs first (Rule 2), MC is rewritten with SC's results.
        assert execution.order.index("sc") < execution.order.index("mc")
        assert execution.rewrites["mc"].mode == "intersect"
        assert execution.rewrites["mc"].source_nodes == ("sc",)
        assert "sc" not in execution.rewrites

    def test_difference_schedule(self, stats):
        plan = Plan()
        plan.add("pos", Seekers.MC([("x", "y")]))
        plan.add("neg", Seekers.MC([("p", "q")]))
        plan.add("d", Combiners.Difference(k=5), ["pos", "neg"])
        execution = Optimizer().optimize(plan, stats)
        assert execution.order.index("neg") < execution.order.index("pos")
        assert execution.rewrites["pos"].mode == "difference"
        assert execution.rewrites["pos"].source_nodes == ("neg",)

    def test_unoptimized_keeps_insertion_order(self):
        plan = Plan()
        plan.add("mc", Seekers.MC([("x", "y")]))
        plan.add("kw", Seekers.KW(["x"]))
        plan.add("i", Combiners.Intersect(k=5), ["mc", "kw"])
        execution = Optimizer.unoptimized(plan)
        assert execution.order == ["mc", "kw", "i"]
        assert execution.rewrites == {}

    def test_order_remains_topological(self, stats):
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.SC(["y"]))
        plan.add("i", Combiners.Intersect(k=5), ["a", "b"])
        plan.add("c", Seekers.SC(["z"]))
        plan.add("i2", Combiners.Intersect(k=5), ["i", "c"])
        execution = Optimizer().optimize(plan, stats)
        position = {name: i for i, name in enumerate(execution.order)}
        assert position["i"] > position["a"] and position["i"] > position["b"]
        assert position["i2"] > position["i"] and position["i2"] > position["c"]

    def test_describe_mentions_rewrites(self, stats):
        plan = Plan()
        plan.add("mc", Seekers.MC([("x", "y")]))
        plan.add("sc", Seekers.SC(["x"]))
        plan.add("i", Combiners.Intersect(k=5), ["mc", "sc"])
        text = Optimizer().optimize(plan, stats).describe()
        assert "execution order" in text
        assert "NOT IN" not in text and "IN" in text
