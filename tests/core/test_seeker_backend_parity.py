"""Row-vs-column executor parity on all four seeker SQL templates.

Both storage backends interpret the same plans; the seekers add
deterministic tie-break sort keys, so rankings AND scores must agree
exactly -- with and without optimizer rewrites, and with the plan cache
warm (second round repeats every query against cached plans).

The MC seeker additionally has two phase-2/3 pipelines (scalar oracle vs
vectorized); every MC phase output is cross-checked over the full
{row, column} x {scalar, vectorized} grid."""

import dataclasses

import pytest

from repro.core.seekers import Rewrite, SeekerContext, Seekers
from repro.engine import Database
from repro.index import build_alltables
from repro.lake.generators import CorpusConfig, generate_corpus


@pytest.fixture(scope="module")
def lake():
    return generate_corpus(
        CorpusConfig(name="parity", num_tables=50, min_rows=15, max_rows=80, seed=31)
    )


@pytest.fixture(scope="module")
def contexts(lake):
    out = {}
    for backend in ("row", "column"):
        db = Database(backend=backend)
        build_alltables(lake, db)
        out[backend] = SeekerContext(db=db, lake=lake)
    return out


def _seekers(lake):
    table = lake.by_id(0)
    first_column = [v for v in table.column_values(table.columns[0]) if v is not None]
    built = {
        "SC": Seekers.SC(first_column[:10], k=8),
        "KW": Seekers.KW(first_column[:10], k=8),
    }
    wide_rows = [r for r in table.rows if all(v is not None for v in r[:2])]
    if len(wide_rows) >= 2 and table.num_columns >= 2:
        built["MC"] = Seekers.MC([r[:2] for r in wide_rows[:6]], k=8)
    flags = table.numeric_columns()
    if any(flags) and not all(flags):
        keys = table.column_values(table.columns[flags.index(False)])
        nums = table.column_values(table.columns[flags.index(True)])
        built["C"] = Seekers.Correlation(keys, nums, k=8, min_support=2)
    return built


@pytest.mark.parametrize("rewrite", [None, Rewrite("intersect", (0, 1, 2, 3, 4)), Rewrite("difference", (1, 2))])
def test_all_templates_rank_identically(contexts, lake, rewrite):
    seekers = _seekers(lake)
    assert {"SC", "KW"} <= set(seekers)
    for _round in range(2):  # second round runs against a warm plan cache
        for kind, seeker in seekers.items():
            results = {}
            for backend, context in contexts.items():
                ranked = seeker.execute(context, rewrite)
                results[backend] = [(hit.table_id, hit.score) for hit in ranked]
            assert results["row"] == results["column"], (kind, rewrite)


def test_plan_cache_engaged_on_both_backends(contexts, lake):
    for context in contexts.values():
        stats = context.db.plan_cache_stats()
        assert stats["hits"] > 0, "parity run should have exercised cached plans"


@pytest.mark.parametrize("rewrite", [None, Rewrite("intersect", (0, 1, 2, 3, 4, 7, 9))])
def test_mc_phases_four_way_parity(contexts, lake, rewrite):
    """Candidates, survivors, validated sets, and final rankings must
    agree across {row, column} x {scalar, vectorized}."""
    seeker = _seekers(lake).get("MC")
    assert seeker is not None, "parity lake must support an MC query"
    phase_outputs = {}
    rankings = {}
    for backend, base in contexts.items():
        scalar = dataclasses.replace(base, vectorized=False)
        vector = dataclasses.replace(base, vectorized=True)

        candidates = seeker.fetch_candidates(scalar, rewrite)
        survivors = seeker.superkey_filter(candidates, scalar)
        validated = seeker.validate(survivors, scalar)
        phase_outputs[(backend, "scalar")] = (
            {(t, r) for t, r, _ in candidates},
            set(survivors),
            set(validated),
        )
        rankings[(backend, "scalar")] = [
            (hit.table_id, hit.score) for hit in seeker.execute(scalar, rewrite)
        ]

        t, r, s = seeker.fetch_candidate_arrays(vector, rewrite)
        ft, fr = seeker.superkey_filter_batch(t, r, s, vector)
        vt, vr = seeker.validate_batch(ft, fr, vector)
        phase_outputs[(backend, "vectorized")] = (
            set(zip(t.tolist(), r.tolist())),
            set(zip(ft.tolist(), fr.tolist())),
            set(zip(vt.tolist(), vr.tolist())),
        )
        rankings[(backend, "vectorized")] = [
            (hit.table_id, hit.score) for hit in seeker.execute(vector, rewrite)
        ]

    reference_phases = phase_outputs[("row", "scalar")]
    reference_ranking = rankings[("row", "scalar")]
    assert all(c for c in reference_phases), "parity query must produce candidates"
    for key, output in phase_outputs.items():
        assert output == reference_phases, key
    for key, ranking in rankings.items():
        assert ranking == reference_ranking, key
