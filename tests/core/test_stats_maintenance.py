"""Exact lake-statistics maintenance under the table lifecycle.

The cost model reads LakeStatistics at every optimization; maintenance
must keep EVERY field (token frequencies, cell/row/column/table
aggregates, distinct-token count) equal to a from-scratch offline scan of
the current lake -- with a trained optimizer, a drifted statistic would
silently skew every subsequent seeker ordering."""

import pytest

from repro import Blend
from repro.core.optimizer.cost_model import CostModel, extract_features
from repro.core.seekers import Seekers
from repro.index.stats import LakeStatistics, table_token_counts
from repro.lake import DataLake, Table
from repro.lake.generators import CorpusConfig, generate_corpus


@pytest.fixture
def blend():
    lake = generate_corpus(
        CorpusConfig(name="statsmaint", num_tables=10, min_rows=6, max_rows=20, seed=17)
    )
    deployment = Blend(lake, backend="column")
    deployment.build_index()
    return deployment


def _assert_exact(stats: LakeStatistics, lake: DataLake) -> None:
    fresh = LakeStatistics.from_lake(lake)
    assert stats.frequencies == fresh.frequencies
    assert stats.num_tables == fresh.num_tables
    assert stats.num_cells == fresh.num_cells
    assert stats.num_columns == fresh.num_columns
    assert stats.num_rows == fresh.num_rows
    assert stats.num_distinct_tokens == fresh.num_distinct_tokens


def test_add_updates_every_field(blend):
    blend.add_table(
        Table("extra", ["k", "n"], [("alpha", 1), ("beta", None), (None, 3)])
    )
    _assert_exact(blend.stats, blend.lake)


def test_remove_decrements_exactly(blend):
    blend.remove_table(2)
    blend.remove_table(5)
    _assert_exact(blend.stats, blend.lake)


def test_remove_drops_zero_count_tokens():
    lake = DataLake("zero")
    lake.add(Table("only", ["k"], [("unique_token",), ("shared",)]))
    lake.add(Table("other", ["k"], [("shared",)]))
    blend = Blend(lake, backend="column")
    blend.build_index()
    assert "unique_token" in blend.stats.frequencies
    blend.remove_table(0)
    # the token is gone, not lingering at zero (no ghost distinct tokens)
    assert "unique_token" not in blend.stats.frequencies
    assert blend.stats.frequencies == {"shared": 1}
    _assert_exact(blend.stats, blend.lake)


def test_replace_swaps_contributions(blend):
    blend.replace_table(
        1, Table("swap", ["a", "b"], [("p", "q"), ("r", None)])
    )
    _assert_exact(blend.stats, blend.lake)


def test_trained_optimizer_agrees_after_maintenance(blend):
    """After maintenance, estimates from the maintained statistics equal
    estimates from a from-scratch scan -- trained and untrained."""
    blend.train_optimizer(samples_per_type=4, seed=1)
    blend.remove_table(0)
    blend.add_table(
        Table("post", ["k", "n"], [(f"tok{i}", i) for i in range(8)])
    )
    fresh = LakeStatistics.from_lake(blend.lake)
    _assert_exact(blend.stats, blend.lake)

    table = blend.lake.by_id(blend.lake.table_ids()[0])
    values = [v for v in table.column_values(table.columns[0]) if v is not None][:6]
    seekers = [Seekers.SC(values), Seekers.KW(values)]
    assert blend.optimizer.cost_model.is_trained()
    for model in (CostModel(), blend.optimizer.cost_model):
        for seeker in seekers:
            assert model.estimate(seeker, blend.stats) == pytest.approx(
                model.estimate(seeker, fresh)
            )
            assert extract_features(seeker, blend.stats) == extract_features(
                seeker, fresh
            )


def test_vectorized_kernel_matches_per_cell_loop():
    """table_token_counts (the _FastFactorizer batch kernel) must agree
    with a per-cell normalize_cell loop, bool/int duality included."""
    from repro.lake.table import normalize_cell

    table = Table(
        "hazards",
        ["a", "b"],
        [
            (True, 1),
            (False, 0),
            ("1", 1.0),
            (None, ""),
            ("  X  ", "x"),
            (2.0, "2"),
        ],
    )
    tokens, counts = table_token_counts(table)
    got = {t: c for t, c in zip(tokens, counts.tolist()) if c}
    expected: dict = {}
    for _, _, value in table.iter_cells():
        token = normalize_cell(value)
        if token is not None:
            expected[token] = expected.get(token, 0) + 1
    assert got == expected


def test_average_posting_length():
    stats = LakeStatistics(num_tables=1, num_cells=10, frequencies={"a": 6, "b": 4})
    assert stats.average_posting_length() == 5.0
    empty = LakeStatistics(num_tables=0, num_cells=0, frequencies={})
    assert empty.average_posting_length() == 0.0
