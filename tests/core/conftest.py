"""Shared fixtures for core-system tests: a small indexed lake modelled on
the paper's running example (Fig. 1: departments and their heads)."""

import pytest

from repro import Blend, DataLake, Table


@pytest.fixture(scope="module")
def fig1_lake() -> DataLake:
    """The paper's Fig. 1 lake: S needs heads of departments; T1 sizes,
    T2 outdated leads (Tom Riddle still at IT), T3 current leads."""
    lake = DataLake("fig1")
    lake.add(
        Table(
            "T1",
            ["team", "size"],
            [
                ("Finance", 31),
                ("Marketing", 28),
                ("HR", 33),
                ("IT", 92),
                ("Sales", 80),
            ],
        )
    )
    lake.add(
        Table(
            "T2",
            ["lead", "year", "team"],
            [
                ("Tom Riddle", 2022, "IT"),
                ("Draco Malfoy", 2022, "Marketing"),
                ("Harry Potter", 2022, "Finance"),
                ("Cho Chang", 2022, "R&D"),
                ("Luna Lovegood", 2022, "Sales"),
                ("Firenze", 2022, "HR"),
            ],
        )
    )
    lake.add(
        Table(
            "T3",
            ["lead", "year", "team"],
            [
                ("Ronald Weasley", 2024, "IT"),
                ("Draco Malfoy", 2024, "Marketing"),
                ("Harry Potter", 2024, "Finance"),
                ("Cho Chang", 2024, "R&D"),
                ("Luna Lovegood", 2024, "Sales"),
                ("Firenze", 2024, "HR"),
            ],
        )
    )
    return lake


@pytest.fixture(scope="module", params=["row", "column"])
def fig1_blend(request, fig1_lake) -> Blend:
    blend = Blend(fig1_lake, backend=request.param)
    blend.build_index()
    return blend


DEPARTMENTS = ["HR", "Marketing", "Finance", "IT", "R&D", "Sales"]
