"""Cross-query batch execution parity: ``Blend.execute_batch`` /
``repro.core.batch.execute_batch`` must return byte-identical results to
one-at-a-time ``Seeker.execute``, for every batchable modality, on both
storage backends, across mixed and edge-case batches."""

import random

import pytest

from repro import Blend, DataLake, Seekers, Table
from repro.core.batch import execute_batch


CITIES = ["berlin", "paris", "rome", "madrid", "lisbon", "vienna", "oslo", "cairo"]
COUNTRIES = [
    "germany", "france", "italy", "spain",
    "portugal", "austria", "norway", "egypt",
]
PAIRS = list(zip(CITIES, COUNTRIES))


@pytest.fixture(scope="module", params=["row", "column"])
def serving_blend(request) -> Blend:
    rng = random.Random(29)
    lake = DataLake("serving")
    for t in range(14):
        rows = []
        for _ in range(35):
            city, country = rng.choice(PAIRS)
            if rng.random() < 0.3:
                country = rng.choice(COUNTRIES)
            rows.append([city, country, rng.randint(0, 40), f"tag{rng.randint(0, 4)}"])
        lake.add(Table(f"t{t}", ["city", "country", "pop", "tag"], rows))
    blend = Blend(lake, backend=request.param)
    blend.build_index()
    return blend


def _mixed_seekers(rng: random.Random) -> list:
    return [
        Seekers.SC(rng.sample(CITIES, 3), k=5),
        Seekers.SC(rng.sample(COUNTRIES, 4), k=3),
        Seekers.SC(["nonexistent-token"], k=5),  # empty result path
        Seekers.KW(rng.sample(CITIES + COUNTRIES, 5), k=4),
        Seekers.KW(["berlin"], k=20),  # k larger than any hit count
        Seekers.MC(rng.sample(PAIRS, 3), k=5),
        Seekers.MC(rng.sample(PAIRS, 4) + [("ghost", "nowhere")], k=4),
        # repeated-token tuple exercises the multiset validation branch
        Seekers.MC([("berlin", "berlin"), ("paris", "france")], k=3),
        Seekers.MC([("ghost", "nowhere")], k=3),  # all-miss MC
    ]


def test_batch_matches_serial_for_all_modalities(serving_blend):
    rng = random.Random(5)
    seekers = _mixed_seekers(rng)
    context = serving_blend.context()
    serial = [seeker.execute(context) for seeker in seekers]
    batched = execute_batch(seekers, context)
    assert len(batched) == len(serial)
    for i, (expected, got) in enumerate(zip(serial, batched)):
        assert got == expected, f"seeker {i} ({seekers[i].kind}) diverged"


def test_blend_execute_batch_entry_point(serving_blend):
    rng = random.Random(17)
    seekers = _mixed_seekers(rng)
    context = serving_blend.context()
    serial = [seeker.execute(context) for seeker in seekers]
    assert serving_blend.execute_batch(seekers) == serial


def test_single_seeker_batches(serving_blend):
    """Singleton batches take the solo path but must agree too."""
    context = serving_blend.context()
    for seeker in (
        Seekers.SC(["berlin", "paris"], k=4),
        Seekers.KW(["egypt"], k=2),
        Seekers.MC([("rome", "italy"), ("oslo", "norway")], k=3),
    ):
        assert execute_batch([seeker], context) == [seeker.execute(context)]


def test_batch_with_unbatchable_seeker_falls_back(serving_blend):
    """A Correlation seeker rides along via its own execute."""
    context = serving_blend.context()
    corr = Seekers.Correlation(
        ["berlin", "paris", "rome", "oslo"], [92, 28, 31, 80], k=3
    )
    sc = Seekers.SC(["berlin", "paris"], k=4)
    serial = [sc.execute(context), corr.execute(context)]
    assert execute_batch([sc, corr], context) == serial


def test_batch_under_nonvectorized_context(serving_blend):
    """MC under a scalar context falls back per-seeker, still correct."""
    context = serving_blend.context()
    context.vectorized = False
    seekers = [
        Seekers.MC(random.Random(3).sample(PAIRS, 3), k=4),
        Seekers.MC(random.Random(4).sample(PAIRS, 3), k=4),
        Seekers.SC(["berlin", "rome"], k=3),
        Seekers.SC(["france", "spain"], k=3),
    ]
    serial = [seeker.execute(context) for seeker in seekers]
    assert execute_batch(seekers, context) == serial


def test_many_identical_queries_batch(serving_blend):
    """Homogeneous batches (the coalescing worst case upstream of the
    scheduler's dedupe) stay correct."""
    context = serving_blend.context()
    seekers = [Seekers.SC(["berlin", "paris", "rome"], k=5) for _ in range(8)]
    serial = seekers[0].execute(context)
    for result in execute_batch(seekers, context):
        assert result == serial


def test_mixed_width_mc_batch(serving_blend):
    """MC queries of different tuple widths share nothing at phase 1
    (separate join arity) but still batch correctly side by side."""
    rng = random.Random(31)
    lake = serving_blend.lake
    wide = []
    for table_id in lake.table_ids()[:4]:
        row = lake.by_id(table_id).rows[0]
        wide.append((row[0], row[1], row[3]))
    seekers = [
        Seekers.MC(rng.sample(PAIRS, 3), k=5),
        Seekers.MC(wide[:2], k=4),
        Seekers.MC(rng.sample(PAIRS, 2), k=3),
        Seekers.MC(wide[2:] + [("ghost", "nowhere", "tag0")], k=4),
    ]
    context = serving_blend.context()
    serial = [seeker.execute(context) for seeker in seekers]
    assert execute_batch(seekers, context) == serial
