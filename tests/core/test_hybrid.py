"""Hybrid (exact+semantic fusion) seeker: the HY modality.

The property at the heart of the suite: with the deterministic
``exact=True`` semantic lane, hybrid results are **byte-identical across
shard counts** -- scores included -- because the fused partial merges
each lane globally before fusing (see ``repro.core.results``). Plus the
degeneracy contract (``alpha`` 0/1 reproduce the pure exact / pure
semantic rankings), the learned-weight mode, the ``discover()`` facade,
and the grammar's mixed predicates end-to-end."""

import random

import pytest

from repro import Blend, DataLake, Plan, Seekers, Table, parse_plan
from repro.core.hybrid import DiscoveryResult, HybridSeeker
from repro.core.results import (
    FusionLane,
    ResultList,
    SeekerPartials,
    TableHit,
    fuse_rankings,
    fused_partials,
    merge_partials,
    ranked_partials,
)
from repro.core.semantic import SemanticSeeker
from repro.errors import BlendError, PlanError, SeekerError
from repro.index.alltables import IndexConfig
from repro.serving import ShardCoordinator
from repro.snapshot import save_sharded

NAMES = [f"w{i}" for i in range(36)]
TOPICS = [f"topic{i}" for i in range(8)]


def _random_lake(seed: int, tables: int = 13) -> DataLake:
    rng = random.Random(seed)
    lake = DataLake(f"hybridlake-{seed}")
    for i in range(tables):
        rows = [
            [rng.choice(NAMES), rng.choice(TOPICS), str(rng.randrange(50))]
            for _ in range(rng.randrange(6, 16))
        ]
        lake.add(Table(f"t{i}", ["name", "topic", "score"], rows))
    return lake


def _blend(seed: int, backend: str) -> Blend:
    blend = Blend(
        _random_lake(seed), backend=backend, index_config=IndexConfig(semantic=True)
    )
    blend.build_index()
    return blend


def _hybrid_queries(rng: random.Random) -> list[HybridSeeker]:
    picks = rng.sample(NAMES, 6)
    return [
        # row-shaped query -> MC exact lane; flat values -> SC exact lane
        HybridSeeker(picks[:4], about=[rng.choice(TOPICS)], k=5, alpha=0.5),
        HybridSeeker(picks[2:5], k=4, alpha=0.3),
        HybridSeeker(
            [(picks[0], rng.choice(TOPICS)), (picks[1], rng.choice(TOPICS))],
            about=picks[4:],
            k=5,
            alpha=0.6,
        ),
    ]


def _hits(result: ResultList) -> list[tuple[int, float]]:
    return [(hit.table_id, hit.score) for hit in result]


@pytest.mark.parametrize("backend", ["column", "row"])
@pytest.mark.parametrize("seed", [3, 11])
def test_hybrid_shard_count_invariance(tmp_path, backend, seed):
    """Random lakes x both backends x solo/2-shard/4-shard, exact=True:
    the fused ranking (ids AND scores) is byte-identical everywhere."""
    blend = _blend(seed, backend)
    seekers = _hybrid_queries(random.Random(seed + 1))
    assert all(s.exact for s in seekers)
    context = blend.context()
    solo = [_hits(s.execute(context)) for s in seekers]
    assert any(solo), "queries must hit something for the parity to mean anything"
    for num_shards in (2, 4):
        root = tmp_path / f"{backend}-{seed}-{num_shards}"
        save_sharded(blend, root, num_shards=num_shards)
        coordinator = ShardCoordinator.load(root)
        try:
            sharded = [_hits(r) for r in coordinator.execute_batch(seekers)]
        finally:
            coordinator.close()
        assert sharded == solo, f"{num_shards}-shard hybrid diverges from solo"


@pytest.mark.parametrize("alpha,lane", [(0.0, "exact"), (1.0, "semantic")])
def test_alpha_degenerates_to_pure_lane(alpha, lane):
    """alpha=0 reproduces the pure exact ranking, alpha=1 the pure
    semantic ranking (table order; fusion rescales scores)."""
    blend = _blend(7, "column")
    context = blend.context()
    values = [NAMES[0], NAMES[3], NAMES[5]]
    hybrid = HybridSeeker(values, k=5, alpha=alpha)
    if lane == "exact":
        oracle = Seekers.SC(values, k=5).execute(context).table_ids()
    else:
        oracle = SemanticSeeker(values, k=5, exact=True).execute(context).table_ids()
    assert hybrid.execute(context).table_ids() == oracle


def test_batched_execution_matches_solo():
    blend = _blend(9, "column")
    seekers = _hybrid_queries(random.Random(10))
    context = blend.context()
    solo = [_hits(s.execute(context)) for s in seekers]
    batched = [_hits(r) for r in blend.execute_batch(seekers)]
    assert batched == solo


def test_learned_weights_are_normalised_and_deterministic():
    blend = _blend(13, "column")
    blend.train_optimizer(samples_per_type=3, seed=13)
    seeker = HybridSeeker([NAMES[1], NAMES[2]], k=5)
    seeker.calibrate(blend.optimizer.cost_model, blend.stats)
    first = seeker.weights
    assert all(w > 0 for w in first)
    assert sum(first) == pytest.approx(1.0)
    seeker.calibrate(blend.optimizer.cost_model, blend.stats)
    assert seeker.weights == first
    # Learned weights still execute end-to-end.
    assert len(seeker.execute(blend.context())) > 0


def test_hybrid_rewrite_preserves_optimized_semantics():
    """Intersect(SC, HY) without truncation (Theorem 1): the optimizer
    rewrites the hybrid with its sibling's table ids; the hybrid honours
    the rewrite by post-filtering its fused ranking, so fused scores and
    the survivors' order are untouched and optimized == unoptimized."""
    blend = _blend(17, "column")
    big_k = 10_000
    plan = Plan()
    plan.add("sc", Seekers.SC([NAMES[0], NAMES[1], NAMES[4]], k=big_k))
    plan.add("hy", HybridSeeker([NAMES[0], NAMES[2]], k=big_k))
    from repro.core.combiners import Combiners

    plan.add("out", Combiners.Intersect(k=big_k), ["sc", "hy"])
    optimized = blend.run(plan, optimize=True).output
    baseline = blend.run(plan, optimize=False).output
    assert optimized.table_ids() == baseline.table_ids()
    # Under truncation the optimized intersection may only gain tables
    # (the Theorem 1 superset property), never lose them.
    small = Plan()
    small.add("sc", Seekers.SC([NAMES[0], NAMES[1], NAMES[4]], k=4))
    small.add("hy", HybridSeeker([NAMES[0], NAMES[2]], k=4))
    small.add("out", Combiners.Intersect(k=4), ["sc", "hy"])
    optimized_small = set(blend.run(small, optimize=True).output.table_ids())
    baseline_small = set(blend.run(small, optimize=False).output.table_ids())
    assert baseline_small <= optimized_small


def test_hybrid_validation_errors():
    with pytest.raises(SeekerError, match="alpha"):
        HybridSeeker(["a"], alpha=1.5)
    with pytest.raises(SeekerError, match="rrf_k"):
        HybridSeeker(["a"], rrf_k=0)
    with pytest.raises(SeekerError, match="non-negative"):
        HybridSeeker(["a"], weights=(-1.0, 1.0))
    with pytest.raises(SeekerError, match="positive"):
        HybridSeeker(["a"], weights=(0.0, 0.0))
    with pytest.raises(SeekerError, match="exact lane"):
        HybridSeeker(["a"], exact_kind="XX")


# -- fused partials contract ------------------------------------------------------


def _lane(name, weight, rows, fetch=20):
    return FusionLane(name, weight, ranked_partials(rows, fetch))


def test_fused_partials_require_lanes_and_depth():
    with pytest.raises(SeekerError, match="at least one lane"):
        SeekerPartials("fused", fetch=10)
    with pytest.raises(SeekerError, match="lane merge depth"):
        SeekerPartials("fused", lanes=(_lane("exact", 1.0, [(1, 2.0)]),))
    with pytest.raises(SeekerError, match="cannot carry fusion lanes"):
        SeekerPartials("ranked", lanes=(_lane("exact", 1.0, [(1, 2.0)]),))


def test_fused_merge_rejects_diverging_lane_structure():
    a = fused_partials([_lane("exact", 1.0, [(1, 2.0)])], fetch=20)
    b = fused_partials([_lane("exact", 0.5, [(2, 1.0)])], fetch=20)
    with pytest.raises(SeekerError, match="diverging lane structure"):
        merge_partials([a, b], 5)


def test_fused_merge_fuses_globally_merged_lanes():
    """Two 'shards' whose per-shard lane ranks disagree with the global
    ranks: the merge must fuse global ranks, not per-shard ones."""
    shard1 = fused_partials(
        [_lane("exact", 0.5, [(1, 10.0)]), _lane("semantic", 0.5, [(1, 0.2)])],
        fetch=20,
    )
    shard2 = fused_partials(
        [_lane("exact", 0.5, [(2, 30.0)]), _lane("semantic", 0.5, [(2, 0.9)])],
        fetch=20,
    )
    merged = merge_partials([shard1, shard2], 5)
    # Globally table 2 is rank 1 in both lanes; table 1 rank 2 in both.
    expected = fuse_rankings(
        [
            (0.5, ResultList([TableHit(2, 30.0), TableHit(1, 10.0)])),
            (0.5, ResultList([TableHit(2, 0.9), TableHit(1, 0.2)])),
        ],
        5,
    )
    assert _hits(merged) == _hits(expected)
    assert merged.table_ids() == [2, 1]


def test_fuse_rankings_skips_zero_weight_lanes():
    primary = ResultList([TableHit(3, 9.0), TableHit(1, 5.0)])
    ignored = ResultList([TableHit(7, 100.0)])
    fused = fuse_rankings([(1.0, primary), (0.0, ignored)], 5)
    assert fused.table_ids() == [3, 1]
    assert 7 not in fused


# -- the discover() facade --------------------------------------------------------


def test_discover_single_modality_matches_legacy_wrappers():
    blend = _blend(19, "column")
    values = [NAMES[0], NAMES[1], NAMES[6]]
    assert blend.discover(values, modalities="join", k=5).output == (
        blend.join_search(values, k=5)
    )
    assert blend.discover(values, modalities=("keyword",), k=5).output == (
        blend.keyword_search(values, k=5)
    )
    assert blend.discover(values, modalities=("semantic",), k=5).output == (
        blend.semantic_search(values, k=5)
    )
    rows = [(NAMES[0], TOPICS[0]), (NAMES[1], TOPICS[1])]
    assert blend.discover(rows, modalities=("multi_column",), k=5).output == (
        blend.multi_column_join_search(rows, k=5)
    )


def test_discover_returns_typed_result():
    blend = _blend(21, "column")
    result = blend.discover(
        [NAMES[2], NAMES[3]], modalities=("join", "semantic"), k=4
    )
    assert isinstance(result, DiscoveryResult)
    assert result.modalities == ("join", "semantic")
    assert result.k == 4
    assert set(result.per_modality) == {"join", "semantic"}
    assert len(result) <= 4
    assert result.table_ids() == result.output.table_ids()
    # Fused output = RRF of the per-modality rankings, equal weights.
    expected = fuse_rankings(
        [(1.0, result.per_modality["join"]), (1.0, result.per_modality["semantic"])],
        4,
    )
    assert _hits(result.output) == _hits(expected)


def test_discover_hybrid_learned_fusion_runs():
    blend = _blend(23, "column")
    blend.train_optimizer(samples_per_type=3, seed=23)
    result = blend.discover(
        [NAMES[0], NAMES[5]], modalities=("hybrid",), k=4, fusion="learned"
    )
    assert len(result.output) > 0


def test_discover_rejects_unknowns():
    blend = _blend(25, "column")
    with pytest.raises(BlendError, match="unknown discovery modality"):
        blend.discover(["x"], modalities=("psychic",))
    with pytest.raises(BlendError, match="fusion"):
        blend.discover(["x"], fusion="vibes")
    with pytest.raises(BlendError, match="at least one modality"):
        blend.discover(["x"], modalities=())


# -- grammar end-to-end -----------------------------------------------------------


def test_grammar_hybrid_executes_like_direct_seeker():
    blend = _blend(27, "column")
    bindings = {"q": [NAMES[0], NAMES[1]], "topic": [TOPICS[0]]}
    plan = parse_plan("HY($q, about=$topic, alpha=0.3)", bindings, k=5)
    via_grammar = blend.run(plan).output
    direct = HybridSeeker(
        bindings["q"], about=bindings["topic"], k=5, alpha=0.3
    ).execute(blend.context())
    assert _hits(via_grammar) == _hits(direct)


def test_grammar_ss_and_mixed_predicates():
    blend = _blend(29, "column")
    bindings = {"q": [NAMES[2], NAMES[3]], "topic": [TOPICS[1]]}
    ss = blend.run(parse_plan("SS($topic, k=4)", bindings)).output
    assert ss == blend.semantic_search(bindings["topic"], k=4)
    mixed = blend.run(
        parse_plan("Intersect(SC($q), HY($q, about=$topic, alpha=0.5))", bindings, k=6)
    ).output
    exact_ids = set(Seekers.SC(bindings["q"], k=6).execute(blend.context()).table_ids())
    assert set(mixed.table_ids()) <= exact_ids


def test_grammar_hybrid_sharded_round_trip(tmp_path):
    """HY parsed from the grammar executes against a live coordinator
    identically to solo -- the end-to-end path of the acceptance bar."""
    blend = _blend(31, "column")
    plan = parse_plan("HY($q, about=$topic)", {"q": [NAMES[4]], "topic": [TOPICS[2]]}, k=4)
    (node,) = plan.nodes()
    seeker = node.operator
    solo = _hits(seeker.execute(blend.context()))
    root = tmp_path / "grammar-sharded"
    save_sharded(blend, root, num_shards=3)
    coordinator = ShardCoordinator.load(root)
    try:
        assert _hits(coordinator.execute_batch([seeker])[0]) == solo
    finally:
        coordinator.close()
