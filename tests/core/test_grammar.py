"""The §IV-C discovery-language grammar: parsing and end-to-end use."""

import pytest

from repro.core.grammar import parse_plan
from repro.errors import PlanError

from tests.core.conftest import DEPARTMENTS

BINDINGS = {
    "departments": DEPARTMENTS,
    "pos": [("HR", "Firenze")],
    "neg": [("IT", "Tom Riddle")],
    "corr": (["HR", "Marketing", "Finance", "IT", "Sales"], [33, 28, 31, 92, 80]),
    "words": ["2022", "Firenze"],
}


class TestParsing:
    def test_single_seeker(self):
        plan = parse_plan("SC($departments)", BINDINGS)
        assert len(plan) == 1
        assert plan.nodes()[0].operator.kind == "SC"

    def test_all_seeker_kinds(self):
        plan = parse_plan(
            "Union(SC($departments), KW($words), MC($pos), C($corr))", BINDINGS
        )
        kinds = [node.operator.kind for node in plan.seekers()]
        assert kinds == ["SC", "KW", "MC", "C"]

    def test_set_symbols(self):
        plan = parse_plan("∩(\\(MC($pos), MC($neg)), SC($departments))", BINDINGS)
        combiner_kinds = [type(node.operator).__name__ for node in plan.combiners()]
        assert combiner_kinds == ["Difference", "Intersect"]

    def test_spelled_combiners(self):
        plan = parse_plan(
            "Intersect(Difference(MC($pos), MC($neg)), SC($departments))", BINDINGS
        )
        assert plan.sink().operator.kind == "Intersect"

    def test_counter(self):
        plan = parse_plan("Counter(SC($departments), KW($words))", BINDINGS)
        assert type(plan.sink().operator).__name__ == "Counter"

    def test_k_on_seeker_and_combiner(self):
        plan = parse_plan(
            "Union(SC($departments, k=50), KW($words), k=7)", BINDINGS, k=10
        )
        sc_node = plan.seekers()[0]
        assert sc_node.operator.k == 50
        assert plan.seekers()[1].operator.k == 10  # default
        assert plan.sink().operator.k == 7

    def test_default_k_applies(self):
        plan = parse_plan("SC($departments)", BINDINGS, k=33)
        assert plan.nodes()[0].operator.k == 33

    def test_nested_expressions(self):
        plan = parse_plan(
            "∪(∩(SC($departments), KW($words)), Counter(SC($departments), KW($words)))",
            BINDINGS,
        )
        assert len(plan.sinks()) == 1
        assert len(plan.combiners()) == 3


class TestParseErrors:
    def test_empty(self):
        with pytest.raises(PlanError):
            parse_plan("   ", BINDINGS)

    def test_unknown_operator(self):
        with pytest.raises(PlanError, match="unknown operator"):
            parse_plan("XYZ($departments)", BINDINGS)

    def test_unbound_reference(self):
        with pytest.raises(PlanError, match="unbound"):
            parse_plan("SC($ghost)", BINDINGS)

    def test_missing_parenthesis(self):
        with pytest.raises(PlanError):
            parse_plan("SC($departments", BINDINGS)

    def test_trailing_garbage(self):
        with pytest.raises(PlanError, match="trailing"):
            parse_plan("SC($departments)) extra", BINDINGS)

    def test_seeker_needs_binding(self):
        with pytest.raises(PlanError):
            parse_plan("SC(departments)", BINDINGS)

    def test_c_requires_pair(self):
        with pytest.raises(PlanError, match="keys, targets"):
            parse_plan("C($departments)", BINDINGS)

    def test_bad_k(self):
        with pytest.raises(PlanError):
            parse_plan("SC($departments, k=ten)", BINDINGS)

    def test_bare_dollar(self):
        with pytest.raises(PlanError):
            parse_plan("SC($)", BINDINGS)

    def test_unknown_operator_names_position_and_registry(self):
        """Grammar v2 PlanErrors carry the token position and the
        known-names list."""
        with pytest.raises(
            PlanError, match=r"position 10.*'HY'.*'KW'.*'MC'.*'SC'.*'SS'"
        ):
            parse_plan("Intersect(XYZ($departments))", BINDINGS)

    def test_unbound_reference_lists_bound_names(self):
        with pytest.raises(PlanError, match=r"position 3.*departments"):
            parse_plan("SC($ghost)", BINDINGS)

    def test_unknown_keyword_argument_lists_accepted(self):
        with pytest.raises(
            PlanError, match=r"does not accept argument 'beta'.*position.*alpha"
        ):
            parse_plan("HY($departments, beta=0.5)", BINDINGS)
        with pytest.raises(PlanError, match="does not accept argument 'about'"):
            parse_plan("SC($departments, about=$words)", BINDINGS)


class TestSeekerRegistry:
    def test_registry_covers_all_modalities(self):
        from repro.core.grammar import SEEKER_REGISTRY

        assert set(SEEKER_REGISTRY) >= {"KW", "SC", "MC", "C", "SS", "HY"}

    def test_ss_and_hy_parse(self):
        plan = parse_plan("SS($words, k=4)", BINDINGS)
        (node,) = plan.nodes()
        assert node.operator.kind == "SS"
        assert node.operator.k == 4

        plan = parse_plan(
            "HY($departments, about=$words, alpha=0.25, k=7)", BINDINGS
        )
        (node,) = plan.nodes()
        assert node.operator.kind == "HY"
        assert node.operator.k == 7
        assert node.operator.alpha == 0.25
        assert node.operator.semantic_seeker.values == BINDINGS["words"]

    def test_float_and_bool_argument_values(self):
        plan = parse_plan("SS($words, exact=true)", BINDINGS)
        (node,) = plan.nodes()
        assert node.operator.exact is True
        plan = parse_plan("HY($departments, alpha=1.0)", BINDINGS)
        (node,) = plan.nodes()
        assert node.operator.alpha == 1.0

    def test_register_custom_seeker(self):
        from repro.core.grammar import SEEKER_REGISTRY, register_seeker
        from repro.core.seekers import Seekers

        name = "ZZTEST"
        assert name not in SEEKER_REGISTRY
        try:
            register_seeker(name, lambda query, k: Seekers.KW(query, k=k))
            plan = parse_plan(f"{name}($words, k=3)", BINDINGS)
            (node,) = plan.nodes()
            assert node.operator.kind == "KW"
            assert node.operator.k == 3
            with pytest.raises(PlanError, match="already registered"):
                register_seeker(name, lambda query, k: Seekers.KW(query, k=k))
        finally:
            SEEKER_REGISTRY.pop(name, None)

    def test_register_rejects_non_identifier(self):
        from repro.core.grammar import register_seeker

        with pytest.raises(PlanError, match="identifier"):
            register_seeker("BAD NAME", lambda query, k: None)


class TestGrammarExecution:
    def test_example1_via_grammar(self, fig1_blend):
        """The paper's Example 1, written in the §IV-C grammar."""
        plan = parse_plan(
            "∩(\\(MC($pos), MC($neg)), SC($departments))", BINDINGS, k=10
        )
        run = fig1_blend.run(plan)
        # T3 (table id 2) is the only up-to-date table.
        assert run.output.table_ids() == [2]

    def test_grammar_plan_equals_api_plan(self, fig1_blend):
        from repro import Combiners, Plan, Seekers

        grammar_plan = parse_plan("∩(SC($departments), KW($words))", BINDINGS, k=10)
        api_plan = Plan()
        api_plan.add("a", Seekers.SC(DEPARTMENTS, k=10))
        api_plan.add("b", Seekers.KW(BINDINGS["words"], k=10))
        api_plan.add("i", Combiners.Intersect(k=10), ["a", "b"])
        assert (
            fig1_blend.run(grammar_plan).output.table_ids()
            == fig1_blend.run(api_plan).output.table_ids()
        )
