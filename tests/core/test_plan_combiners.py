"""Plan API, DAG validation, and combiner semantics."""

import pytest

from repro import Combiners, Plan, ResultList, Seekers, TableHit
from repro.core.combiners import (
    Combiner,
    Counter,
    Difference,
    Intersect,
    Union,
    combiner_by_name,
    register_combiner,
)
from repro.errors import CombinerError, PlanError


def hits(*pairs):
    return ResultList(TableHit(t, s) for t, s in pairs)


class TestCombinerSemantics:
    def test_intersect(self):
        result = Intersect(k=10).combine([hits((1, 5), (2, 3)), hits((2, 9), (3, 1))])
        assert result.table_ids() == [2]
        assert result.score_of(2) == 12.0

    def test_intersect_empty(self):
        result = Intersect(k=10).combine([hits((1, 1)), hits((2, 1))])
        assert len(result) == 0

    def test_intersect_three_inputs(self):
        result = Intersect(k=10).combine(
            [hits((1, 1), (2, 1)), hits((2, 1), (3, 1)), hits((2, 1), (4, 1))]
        )
        assert result.table_ids() == [2]

    def test_union_sums_scores(self):
        result = Union(k=10).combine([hits((1, 5), (2, 3)), hits((2, 4))])
        assert result.table_ids() == [2, 1]  # 2 scores 7, 1 scores 5
        assert result.score_of(2) == 7.0

    def test_difference_keeps_first_order(self):
        result = Difference(k=10).combine([hits((1, 9), (2, 8), (3, 7)), hits((2, 1))])
        assert result.table_ids() == [1, 3]
        assert result.score_of(1) == 9.0

    def test_difference_requires_exactly_two(self):
        with pytest.raises(CombinerError):
            Difference(k=10).combine([hits((1, 1))])
        with pytest.raises(CombinerError):
            Difference(k=10).combine([hits((1, 1))] * 3)

    def test_counter_ranks_by_frequency(self):
        result = Counter(k=10).combine(
            [hits((1, 1), (2, 1)), hits((1, 1), (3, 1)), hits((1, 1))]
        )
        assert result.table_ids()[0] == 1
        assert result.score_of(1) == 3.0

    def test_counter_tie_break_by_score_sum(self):
        result = Counter(k=10).combine([hits((1, 9), (2, 1)), hits((1, 1), (2, 9))])
        # Both appear twice; 1 and 2 have equal summed scores -> id order.
        assert result.table_ids() == [1, 2]

    def test_counter_accepts_single_input(self):
        assert Counter(k=5).combine([hits((1, 1))]).table_ids() == [1]

    def test_k_truncation(self):
        result = Union(k=1).combine([hits((1, 5)), hits((2, 9))])
        assert result.table_ids() == [2]

    def test_negative_k_rejected(self):
        with pytest.raises(CombinerError):
            Union(k=-1)


class TestCombinerRegistry:
    def test_builtin_lookup(self):
        assert combiner_by_name("intersect") is Intersect
        assert combiner_by_name("COUNTER") is Counter

    def test_unknown_name(self):
        with pytest.raises(CombinerError):
            combiner_by_name("xor")

    def test_register_custom_combiner(self):
        class First(Combiner):
            kind = "First"
            min_inputs = 1

            def combine(self, inputs):
                return inputs[0].top(self.k)

        register_combiner("first", First)
        assert combiner_by_name("first") is First
        # Re-registering the same class is idempotent.
        register_combiner("first", First)

    def test_register_conflicting_name_rejected(self):
        class Fake(Combiner):
            def combine(self, inputs):
                return inputs[0]

        with pytest.raises(CombinerError):
            register_combiner("union", Fake)

    def test_register_non_combiner_rejected(self):
        with pytest.raises(CombinerError):
            register_combiner("bad", dict)  # type: ignore[arg-type]


class TestPlanApi:
    def test_paper_fig2_plan_builds(self):
        """The find_dep_heads plan from Fig. 2a."""
        plan = Plan()
        plan.add("P_examples", Seekers.MC([("hr", "firenze")]), k=10)
        plan.add("N_examples", Seekers.MC([("it", "tom riddle")]), k=10)
        plan.add("exclude", Combiners.Difference(k=10), ["P_examples", "N_examples"])
        plan.add("dep", Seekers.SC(["hr", "it"]), k=10)
        plan.add("intersect", Combiners.Intersect(k=10), ["exclude", "dep"])
        assert len(plan) == 5
        assert plan.sink().name == "intersect"

    def test_k_override_at_add(self):
        plan = Plan()
        plan.add("s", Seekers.SC(["x"], k=3), k=42)
        assert plan.node("s").operator.k == 42

    def test_duplicate_name_rejected(self):
        plan = Plan().add("s", Seekers.SC(["x"]))
        with pytest.raises(PlanError):
            plan.add("s", Seekers.SC(["y"]))

    def test_seeker_with_inputs_rejected(self):
        plan = Plan().add("a", Seekers.SC(["x"]))
        with pytest.raises(PlanError):
            plan.add("b", Seekers.SC(["y"]), inputs=["a"])

    def test_combiner_without_inputs_rejected(self):
        with pytest.raises(PlanError):
            Plan().add("c", Combiners.Union(k=5))

    def test_forward_reference_rejected(self):
        plan = Plan().add("a", Seekers.SC(["x"]))
        with pytest.raises(PlanError):
            plan.add("c", Combiners.Union(k=5), ["a", "later"])

    def test_duplicate_input_rejected(self):
        plan = Plan().add("a", Seekers.SC(["x"]))
        with pytest.raises(PlanError):
            plan.add("c", Combiners.Counter(k=5), ["a", "a"])

    def test_arity_validated_at_add(self):
        plan = Plan().add("a", Seekers.SC(["x"]))
        with pytest.raises(CombinerError):
            plan.add("c", Combiners.Intersect(k=5), ["a"])

    def test_bad_operator_type(self):
        with pytest.raises(PlanError):
            Plan().add("x", "not an operator")  # type: ignore[arg-type]

    def test_sinks_and_consumers(self):
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.SC(["y"]))
        plan.add("c", Combiners.Union(k=5), ["a", "b"])
        assert [n.name for n in plan.sinks()] == ["c"]
        assert [n.name for n in plan.consumers_of("a")] == ["c"]

    def test_multi_sink_plan(self):
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.SC(["y"]))
        assert len(plan.sinks()) == 2
        with pytest.raises(PlanError):
            plan.sink()

    def test_topological_order_is_valid(self):
        plan = Plan()
        plan.add("a", Seekers.SC(["x"]))
        plan.add("b", Seekers.SC(["y"]))
        plan.add("u", Combiners.Union(k=5), ["a", "b"])
        plan.add("c", Seekers.SC(["z"]))
        plan.add("i", Combiners.Intersect(k=5), ["u", "c"])
        order = [n.name for n in plan.topological_order()]
        assert order.index("u") > order.index("a")
        assert order.index("i") > order.index("u")

    def test_empty_plan_invalid(self):
        with pytest.raises(PlanError):
            Plan().validate()

    def test_unknown_node_lookup(self):
        with pytest.raises(PlanError):
            Plan().node("ghost")
