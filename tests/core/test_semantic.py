"""The semantic discovery extension (paper §X future work): in-DB column
embeddings, HNSW retrieval, and SS-seeker composition with exact
operators."""

import pytest

from repro import Blend, Combiners, Plan, Seekers
from repro.core.semantic import SemanticIndex, SemanticSeeker
from repro.engine import Database
from repro.errors import SeekerError
from repro.lake import DataLake, Table


@pytest.fixture(scope="module")
def lake():
    lake = DataLake("sem")
    lake.add(Table("cities_eu", ["city"], [("berlin",), ("hamburg",), ("munich",), ("cologne",)]))
    lake.add(Table("cities_us", ["city"], [("boston",), ("chicago",), ("seattle",), ("austin",)]))
    lake.add(Table("customers", ["customer_id"], [("customer_1",), ("customer_2",), ("customer_3",)]))
    lake.add(Table("clients", ["client"], [("customer_4",), ("customer_5",), ("customer_6",)]))
    lake.add(Table("numbers", ["n"], [(1,), (2,), (3,)]))
    return lake


@pytest.fixture(scope="module")
def blend(lake):
    deployment = Blend(lake, backend="column")
    deployment.build_index()
    deployment.enable_semantic()
    return deployment


class TestSemanticIndex:
    def test_indexes_nonempty_columns(self, lake):
        index = SemanticIndex(lake)
        assert index.num_columns == 5

    def test_persist_round_trip(self, lake):
        db = Database(backend="column")
        index = SemanticIndex(lake)
        written = index.persist(db)
        assert written > 0
        assert db.has_table("AllVectors")
        loaded = SemanticIndex.load(db, lake)
        assert loaded.num_columns == index.num_columns
        # The reloaded index must rank the same best column.
        from repro.baselines.embeddings import embed_values

        query = embed_values(["berlin", "hamburg"])
        original = index.search_columns(query, k=1)[0][0]
        reloaded = loaded.search_columns(query, k=1)[0][0]
        assert original == reloaded

    def test_storage_positive(self, lake):
        assert SemanticIndex(lake).storage_bytes() > 0

    def test_search_clamps_ef_to_k(self):
        """Regression: ``search_columns(k, ef)`` with ``ef < k`` must still
        return a full top-k -- the beam is clamped up to k, never allowed
        to silently truncate the result to the beam's survivors."""
        from repro.baselines.embeddings import embed_values

        wide = DataLake("wide")
        for index in range(40):
            wide.add(
                Table(
                    f"t{index}",
                    ["col"],
                    [(f"token_{index}_{row}",) for row in range(3)],
                )
            )
        index = SemanticIndex(wide)
        query = embed_values(["token_7_0", "token_7_1"])
        k = 25
        clamped = index.search_columns(query, k=k, ef=2)
        assert len(clamped) == k
        # And the clamped beam agrees with the exhaustive oracle.
        oracle = index.search_columns(query, k=k, exact=True)
        assert [key for key, _ in clamped] == [key for key, _ in oracle]


class TestSemanticSeeker:
    def test_exact_vocabulary_match_ranks_first(self, blend, lake):
        result = blend.semantic_search(["berlin", "hamburg", "munich"], k=3)
        assert result.table_ids()[0] == lake.id_of("cities_eu")

    def test_morphological_similarity(self, blend, lake):
        """No token overlap, but 'customer_4..6' should land near
        'customer_1..3' via trigram features -- the semantic-ish part."""
        result = blend.semantic_search(["customer_7", "customer_8"], k=2)
        top2 = set(result.table_ids())
        assert lake.id_of("customers") in top2
        assert lake.id_of("clients") in top2

    def test_requires_enabled_extension(self, lake):
        plain = Blend(lake, backend="column")
        plain.build_index()
        with pytest.raises(SeekerError, match="enable_semantic"):
            plain.semantic_search(["berlin"], k=2)

    def test_empty_values_rejected(self):
        with pytest.raises(SeekerError):
            SemanticSeeker([])

    def test_sql_is_explicitly_unsupported(self):
        with pytest.raises(SeekerError):
            SemanticSeeker(["x"]).sql()

    def test_scores_are_descending_similarities(self, blend):
        result = blend.semantic_search(["berlin", "hamburg"], k=5)
        scores = [hit.score for hit in result]
        assert scores == sorted(scores, reverse=True)
        assert all(score <= 1.0 + 1e-9 for score in scores)


class TestComposition:
    def test_intersect_with_exact_seeker(self, blend, lake):
        """Semantic AND syntactic: composable in one plan."""
        plan = Plan()
        plan.add("ss", SemanticSeeker(["berlin", "hamburg"], k=5))
        plan.add("sc", Seekers.SC(["berlin", "hamburg"], k=5))
        plan.add("i", Combiners.Intersect(k=5), ["ss", "sc"])
        run = blend.run(plan)
        assert run.output.table_ids() == [lake.id_of("cities_eu")]

    def test_rewrite_post_filters_results(self, blend, lake):
        from repro.core.seekers import Rewrite

        seeker = SemanticSeeker(["berlin", "hamburg"], k=5)
        context = blend.context()
        full = seeker.execute(context)
        target = lake.id_of("cities_eu")
        kept = seeker.execute(context, Rewrite(mode="intersect", table_ids=(target,)))
        assert kept.table_ids() == [target]
        dropped = seeker.execute(context, Rewrite(mode="difference", table_ids=(target,)))
        assert target not in dropped.table_ids()
        # Post-filtering preserves relative order of surviving tables.
        surviving = [t for t in full.table_ids() if t != target]
        assert dropped.table_ids() == surviving[:5]

    def test_ss_shares_sc_rule_tier(self):
        from repro.core.seekers import SEEKER_RULE_RANK

        assert SEEKER_RULE_RANK["SS"] == SEEKER_RULE_RANK["SC"]
