"""Seeker behaviour on the paper's Fig. 1 example and edge cases."""

import pytest

from repro import Blend
from repro.core.seekers import (
    CorrelationSeeker,
    KeywordSeeker,
    MultiColumnSeeker,
    Rewrite,
    SingleColumnSeeker,
)
from repro.errors import SeekerError

from tests.core.conftest import DEPARTMENTS


class TestSingleColumnSeeker:
    def test_finds_department_columns(self, fig1_blend, fig1_lake):
        result = fig1_blend.join_search(DEPARTMENTS, k=3)
        ids = result.table_ids()
        # T2/T3 contain all 6 departments, T1 contains 5 (no R&D).
        assert set(ids) == {0, 1, 2}
        assert ids[2] == 0  # T1 has the smallest overlap
        assert result.score_of(fig1_lake.id_of("T1")) == 5.0
        assert result.score_of(fig1_lake.id_of("T2")) == 6.0

    def test_k_truncates(self, fig1_blend):
        assert len(fig1_blend.join_search(DEPARTMENTS, k=1)) == 1

    def test_no_match_returns_empty(self, fig1_blend):
        result = fig1_blend.join_search(["nonexistent-token-xyz"], k=5)
        assert len(result) == 0

    def test_values_are_normalized(self, fig1_blend):
        # Case and surrounding whitespace must not matter.
        lower = fig1_blend.join_search(["hr", "it"], k=3).table_ids()
        messy = fig1_blend.join_search(["  HR ", "It"], k=3).table_ids()
        assert lower == messy

    def test_numeric_values_match_text_tokens(self, fig1_blend):
        result = fig1_blend.join_search([33, 92], k=3)
        assert result.table_ids() == [0]  # only T1 has the sizes column

    def test_empty_values_rejected(self):
        with pytest.raises(SeekerError):
            SingleColumnSeeker([])
        with pytest.raises(SeekerError):
            SingleColumnSeeker([None, "", "  "])

    def test_negative_k_rejected(self):
        with pytest.raises(SeekerError):
            SingleColumnSeeker(["x"], k=-1)

    def test_rewrite_restricts_tables(self, fig1_blend):
        seeker = SingleColumnSeeker(DEPARTMENTS, k=5)
        restricted = seeker.execute(
            fig1_blend.context(), Rewrite(mode="intersect", table_ids=(0,))
        )
        assert restricted.table_ids() == [0]

    def test_difference_rewrite_excludes_tables(self, fig1_blend):
        seeker = SingleColumnSeeker(DEPARTMENTS, k=5)
        excluded = seeker.execute(
            fig1_blend.context(), Rewrite(mode="difference", table_ids=(1,))
        )
        assert 1 not in excluded.table_ids()
        assert set(excluded.table_ids()) == {0, 2}


class TestKeywordSeeker:
    def test_whole_table_overlap(self, fig1_blend):
        # "2022" and "firenze" co-occur only in T2 (different columns!).
        result = fig1_blend.keyword_search(["2022", "Firenze"], k=3)
        assert result.table_ids()[0] == 1
        assert result.score_of(1) == 2.0

    def test_kw_differs_from_sc(self, fig1_blend):
        # SC needs the overlap within ONE column; KW counts table-wide.
        keywords = ["2022", "Firenze"]
        kw_score = fig1_blend.keyword_search(keywords, k=1).score_of(1)
        sc_result = fig1_blend.join_search(keywords, k=3)
        assert kw_score == 2.0
        assert sc_result.score_of(1) == 1.0  # best single column has 1

    def test_empty_keywords_rejected(self):
        with pytest.raises(SeekerError):
            KeywordSeeker([])


class TestMultiColumnSeeker:
    def test_projection_lookup(self, fig1_blend):
        # ("HR", "Firenze") appears row-aligned in T2 and T3 only.
        result = fig1_blend.multi_column_join_search([("HR", "Firenze")], k=5)
        assert set(result.table_ids()) == {1, 2}

    def test_outdated_tuple_only_in_t2(self, fig1_blend):
        result = fig1_blend.multi_column_join_search([("IT", "Tom Riddle")], k=5)
        assert result.table_ids() == [1]

    def test_misaligned_values_rejected(self, fig1_blend):
        # "Firenze" and "IT" exist in T2/T3 but never in the same row.
        result = fig1_blend.multi_column_join_search([("IT", "Firenze")], k=5)
        assert result.table_ids() == []

    def test_scores_count_joinable_rows(self, fig1_blend):
        result = fig1_blend.multi_column_join_search(
            [("HR", "Firenze"), ("Finance", "Harry Potter")], k=5
        )
        assert result.score_of(1) == 2.0
        assert result.score_of(2) == 2.0

    def test_tuples_with_nulls_skipped(self):
        seeker = MultiColumnSeeker([("a", None), ("b", "c")])
        assert seeker.tuples == [("b", "c")]

    def test_all_null_rejected(self):
        with pytest.raises(SeekerError):
            MultiColumnSeeker([("a", None), (None, "b")])

    def test_single_column_rejected(self):
        with pytest.raises(SeekerError):
            MultiColumnSeeker([("a",), ("b",)])

    def test_ragged_tuples_rejected(self):
        with pytest.raises(SeekerError):
            MultiColumnSeeker([("a", "b"), ("c", "d", "e")])

    def test_three_column_key(self, fig1_blend):
        result = fig1_blend.multi_column_join_search(
            [("Firenze", "2022", "HR")], k=5
        )
        assert result.table_ids() == [1]

    def test_phases_are_monotone(self, fig1_blend):
        """Each MC phase may only shrink the candidate set."""
        seeker = MultiColumnSeeker([("HR", "Firenze")], k=5)
        context = fig1_blend.context()
        candidates = seeker.fetch_candidates(context)
        filtered = seeker.superkey_filter(candidates, context)
        validated = seeker.validate(filtered, context)
        assert len(candidates) >= len(filtered) >= len(validated)
        assert len(validated) == 2  # one row in each of T2, T3


class TestCorrelationSeeker:
    def test_finds_correlating_numeric_column(self, fig1_blend):
        # T1.size correlates with this target by construction.
        keys = ["HR", "Marketing", "Finance", "IT", "Sales"]
        targets = [33, 28, 31, 92, 80]
        result = fig1_blend.correlation_search(keys, targets, k=3)
        assert result.table_ids()[0] == 0
        assert result.score_of(0) == pytest.approx(1.0)

    def test_key_target_length_mismatch(self):
        with pytest.raises(SeekerError):
            CorrelationSeeker(["a", "b"], [1.0])

    def test_non_numeric_targets_rejected(self):
        with pytest.raises(SeekerError):
            CorrelationSeeker(["a", "b"], ["x", "y"])

    def test_bad_h_rejected(self):
        with pytest.raises(SeekerError):
            CorrelationSeeker(["a", "b"], [1, 2], h=0)

    def test_key_split_matches_target_mean(self):
        seeker = CorrelationSeeker(["a", "b", "c", "d"], [1, 2, 9, 10], k=3)
        assert set(seeker.k0) == {"a", "b"}
        assert set(seeker.k1) == {"c", "d"}

    def test_numeric_join_keys_supported(self, fig1_blend):
        # Sizes as join keys against the year column: no crash, and keys
        # are matched as tokens (the advantage over the QCR baseline).
        result = fig1_blend.correlation_search([31, 28, 33, 92, 80], [1, 2, 3, 4, 5], k=3)
        assert isinstance(result.table_ids(), list)


class TestSeekerSqlShape:
    """The generated SQL must match the paper's listings structurally."""

    def test_sc_sql_matches_listing_1(self):
        sql = SingleColumnSeeker(["x"], k=10).sql()
        assert "GROUP BY TableId, ColumnId" in sql
        assert "COUNT(DISTINCT CellValue)" in sql
        assert "LIMIT" in sql

    def test_kw_sql_drops_columnid(self):
        sql = KeywordSeeker(["x"], k=10).sql()
        assert "GROUP BY TableId " in sql
        assert "ColumnId" not in sql

    def test_mc_sql_joins_on_table_and_row(self):
        sql = MultiColumnSeeker([("a", "b"), ("c", "d")], k=10).sql()
        assert "INNER JOIN" in sql
        assert "Q0.TableId = Q1.TableId" in sql
        assert "Q0.RowId = Q1.RowId" in sql

    def test_mc_sql_width_scales(self):
        sql = MultiColumnSeeker([("a", "b", "c")], k=10).sql()
        assert sql.count("INNER JOIN") == 2

    def test_correlation_sql_matches_listing_3(self):
        sql = CorrelationSeeker(["a", "b", "c"], [1, 2, 3], k=10).sql()
        assert "RowId < :h" in sql
        assert "Quadrant IS NOT NULL" in sql
        assert "2.0 * SUM" in sql
        assert "ABS(" in sql

    def test_rewrite_placeholder_injection(self):
        seeker = SingleColumnSeeker(["x"], k=10)
        plain = seeker.sql()
        rewritten = seeker.sql(Rewrite(mode="intersect", table_ids=(1, 2)))
        assert "TableId IN (:__rewrite_ids)" in rewritten
        assert "TableId IN (:__rewrite_ids)" not in plain

    def test_difference_rewrite_uses_not_in(self):
        seeker = KeywordSeeker(["x"], k=10)
        rewritten = seeker.sql(Rewrite(mode="difference", table_ids=(1,)))
        assert "TableId NOT IN (:__rewrite_ids)" in rewritten


class TestBackendConsistency:
    """Seekers must rank identically on row and column stores."""

    def test_all_seekers_agree_across_backends(self, fig1_lake):
        results = {}
        for backend in ("row", "column"):
            blend = Blend(fig1_lake, backend=backend)
            blend.build_index()
            results[backend] = (
                blend.join_search(DEPARTMENTS, k=3).table_ids(),
                blend.keyword_search(["2022", "Firenze"], k=3).table_ids(),
                blend.multi_column_join_search([("HR", "Firenze")], k=3).table_ids(),
                blend.correlation_search(
                    ["HR", "Marketing", "Finance", "IT", "Sales"],
                    [33, 28, 31, 92, 80],
                    k=3,
                ).table_ids(),
            )
        assert results["row"] == results["column"]
