"""Property suite for the MC seeker phases (scalar oracle vs the
vectorized pipeline of this PR).

Two invariants, checked over seeded random lakes and query tuples:

* **no false negatives** -- the super-key filter (phase 2) never prunes a
  (table, row) pair that exact validation (phase 3) accepts; XASH recall
  stays 100 % (paper Table V) for both hash widths and both pipelines;
* **pipeline parity** -- scalar and batched phases produce identical
  candidate sets, survivor sets, validated sets, and final rankings.
"""

import random

import numpy as np
import pytest

from repro.core.seekers import MultiColumnSeeker, SeekerContext
from repro.engine import Database
from repro.index import IndexConfig, build_alltables
from repro.lake.datalake import DataLake
from repro.lake.table import Table


def _random_lake(rng: random.Random, num_tables: int = 10, vocab_size: int = 24) -> DataLake:
    """A collision-heavy lake: a tiny shared vocabulary forces repeated
    tokens across tables, rows, and columns (the regime where super-key
    bits overlap and exact validation does real work)."""
    tokens = [f"v{i}" for i in range(vocab_size)] + ["x-9", "multi word", "42"]
    lake = DataLake("prop")
    for t in range(num_tables):
        width = rng.randint(2, 5)
        rows = []
        for _ in range(rng.randint(3, 14)):
            row = []
            for _ in range(width):
                roll = rng.random()
                if roll < 0.08:
                    row.append(None)
                elif roll < 0.18:
                    row.append(rng.randint(0, 50))
                else:
                    row.append(rng.choice(tokens))
            rows.append(tuple(row))
        lake.add(Table(f"t{t}", [f"c{i}" for i in range(width)], rows))
    return lake


def _random_query(rng: random.Random, lake: DataLake, width: int = 2) -> MultiColumnSeeker:
    """Query tuples mixing real row slices (validating hits), shuffled
    token combos (filter fodder), and ghosts (never present)."""
    tuples = []
    tables = [t for t in lake if t.num_columns >= width and t.num_rows > 0]
    for _ in range(rng.randint(2, 8)):
        table = rng.choice(tables)
        row = rng.choice(table.rows)
        picked = [v for v in row if v is not None][:width]
        if len(picked) == width:
            tuples.append(tuple(picked))
    for _ in range(rng.randint(1, 6)):
        tuples.append(tuple(f"v{rng.randint(0, 30)}" for _ in range(width)))
    tuples.append(tuple(f"ghost{i}" for i in range(width)))
    # A repeated-token tuple exercises the multiset (Hall-count) path.
    repeated = f"v{rng.randint(0, 23)}"
    tuples.append((repeated,) * width)
    return MultiColumnSeeker(tuples, k=10)


def _contexts(lake: DataLake, backend: str, hash_size: int):
    db = Database(backend=backend)
    build_alltables(lake, db, IndexConfig(hash_size=hash_size))
    return (
        SeekerContext(db=db, lake=lake, hash_size=hash_size, vectorized=False),
        SeekerContext(db=db, lake=lake, hash_size=hash_size, vectorized=True),
    )


def _run_property(seed: int, backend: str, hash_size: int) -> None:
    rng = random.Random(seed)
    lake = _random_lake(rng)
    scalar, vector = _contexts(lake, backend, hash_size)
    for width in (2, 3):
        seeker = _random_query(rng, lake, width)

        candidates = seeker.fetch_candidates(scalar)
        survivors = set(seeker.superkey_filter(candidates, scalar))
        all_pairs = [(t, r) for t, r, _ in candidates]
        validated_unfiltered = set(seeker.validate(all_pairs, scalar))
        # No false negatives: everything that validates survives phase 2.
        assert validated_unfiltered <= survivors

        t, r, s = seeker.fetch_candidate_arrays(vector)
        batch_pairs = set(zip(t.tolist(), r.tolist()))
        assert batch_pairs == set(all_pairs)
        ft, fr = seeker.superkey_filter_batch(t, r, s, vector)
        batch_survivors = set(zip(ft.tolist(), fr.tolist()))
        assert batch_survivors == survivors
        vt, vr = seeker.validate_batch(t, r, vector)
        batch_validated_unfiltered = set(zip(vt.tolist(), vr.tolist()))
        assert batch_validated_unfiltered == validated_unfiltered
        assert batch_validated_unfiltered <= batch_survivors

        # End-to-end rankings agree (scores included).
        ranked_scalar = [(h.table_id, h.score) for h in seeker.execute(scalar)]
        ranked_vector = [(h.table_id, h.score) for h in seeker.execute(vector)]
        assert ranked_scalar == ranked_vector


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("backend,hash_size", [("column", 63), ("row", 63), ("row", 128)])
def test_superkey_filter_no_false_negatives(seed, backend, hash_size):
    _run_property(seed * 7919 + 13, backend, hash_size)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6, 30))
@pytest.mark.parametrize("backend,hash_size", [("column", 63), ("row", 128)])
def test_superkey_filter_no_false_negatives_extended(seed, backend, hash_size):
    """Benchmark-scale sweep of the same property (tier-2: -m slow)."""
    _run_property(seed * 7919 + 13, backend, hash_size)


def test_may_contain_batch_mixed_width_promotes():
    """128-bit query hashes against an int64 candidate batch (every
    super key happened to fit 63 bits) must promote, not overflow."""
    from repro.index.xash import may_contain_batch

    super_keys = np.array([5, 7, (1 << 62) | 1], dtype=np.int64)
    hashes = np.array([(1 << 70) | 5, 1], dtype=object)
    mask = may_contain_batch(super_keys, hashes)
    assert mask.tolist() == [True, True, True]  # all contain hash 1
    assert may_contain_batch(super_keys[:2], np.array([1 << 70], dtype=object)).tolist() == [
        False,
        False,
    ]


def test_repeated_token_tuple_requires_distinct_columns():
    """('a', 'a') must only match rows holding 'a' in >= 2 columns --
    the multiset side of the Hall-condition decomposition."""
    lake = DataLake("dup")
    lake.add(Table("one", ["p", "q"], [("a", "a"), ("a", "b"), ("b", "a")]))
    lake.add(Table("two", ["p", "q", "r"], [("a", "x", "a"), ("a", "y", "z")]))
    seeker = MultiColumnSeeker([("a", "a")], k=5)
    for backend in ("row", "column"):
        scalar, vector = _contexts(lake, backend, 63)
        for context in (scalar, vector):
            hits = [(h.table_id, h.score) for h in seeker.execute(context)]
            assert hits == [(0, 1.0), (1, 1.0)], (backend, context.vectorized)


def test_validate_batch_drops_out_of_range_rows():
    """Index rows beyond a table's current length are skipped, exactly
    like the scalar path's bounds check."""
    lake = DataLake("bounds")
    lake.add(Table("t", ["p", "q"], [("a", "b"), ("c", "d")]))
    db = Database(backend="column")
    build_alltables(lake, db)
    context = SeekerContext(db=db, lake=lake)
    seeker = MultiColumnSeeker([("a", "b")], k=5)
    table_ids = np.array([0, 0, 0], dtype=np.int64)
    row_ids = np.array([0, 99, -1], dtype=np.int64)
    vt, vr = seeker.validate_batch(table_ids, row_ids, context)
    assert list(zip(vt.tolist(), vr.tolist())) == [(0, 0)]
    # The scalar oracle agrees -- including that negative ids never wrap
    # around to the last row.
    assert seeker.validate([(0, 0), (0, 99), (0, -1)], context) == [(0, 0)]
