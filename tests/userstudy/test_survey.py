"""Table IX regeneration: the aggregation must reproduce the paper's
published marginals from the reconstructed responses."""

import pytest

from repro.userstudy import (
    ALL_PARTICIPANTS,
    INDUSTRY_PARTICIPANTS,
    RESEARCH_PARTICIPANTS,
    render_table_ix,
    summarize,
)


class TestCohorts:
    def test_cohort_sizes(self):
        assert len(RESEARCH_PARTICIPANTS) == 9
        assert len(INDUSTRY_PARTICIPANTS) == 9
        assert len(ALL_PARTICIPANTS) == 18

    def test_sectors_assigned(self):
        assert all(p.sector == "research" for p in RESEARCH_PARTICIPANTS)
        assert all(p.sector == "industry" for p in INDUSTRY_PARTICIPANTS)


class TestPublishedMarginals:
    """Spot-check recomputed aggregates against the paper's Table IX."""

    def test_q1_single_search_success(self):
        research_avg = sum(
            p.single_search_success_pct for p in RESEARCH_PARTICIPANTS
        ) / 9
        industry_avg = sum(
            p.single_search_success_pct for p in INDUSTRY_PARTICIPANTS
        ) / 9
        assert research_avg == pytest.approx(27.5, abs=0.5)
        assert industry_avg == pytest.approx(38.8, abs=0.5)

    def test_q2_single_table_sufficient(self):
        assert sum(p.single_table_sufficient for p in RESEARCH_PARTICIPANTS) == 1
        assert sum(p.single_table_sufficient for p in INDUSTRY_PARTICIPANTS) == 0

    def test_q3_task_shares(self):
        # Paper: rows 33 % research / 67 % industry; correlation 44/56.
        assert sum("rows" in p.frequent_tasks for p in RESEARCH_PARTICIPANTS) == 3
        assert sum("rows" in p.frequent_tasks for p in INDUSTRY_PARTICIPANTS) == 6
        assert sum("correlation" in p.frequent_tasks for p in RESEARCH_PARTICIPANTS) == 4
        assert sum("correlation" in p.frequent_tasks for p in INDUSTRY_PARTICIPANTS) == 5

    def test_q4_custom_scripts(self):
        # 100 % research, 56 % industry.
        assert all("scripts" in p.solving_methods for p in RESEARCH_PARTICIPANTS)
        assert sum("scripts" in p.solving_methods for p in INDUSTRY_PARTICIPANTS) == 5

    def test_q5_python_dominates(self):
        python_users = sum("python" in p.languages for p in ALL_PARTICIPANTS)
        assert python_users == 17  # 94 %

    def test_q7_unanimous_dbms(self):
        assert all(p.would_use_dbms for p in ALL_PARTICIPANTS)

    def test_q9_blend_for_complex_tasks(self):
        blend = sum(
            p.complex_api_preference == "blend" for p in ALL_PARTICIPANTS
        )
        assert blend == 16  # 89 %


class TestRenderedTable:
    def test_summaries_cover_nine_questions(self):
        assert len(summarize(ALL_PARTICIPANTS)) == 9

    def test_render_contains_published_values(self):
        text = render_table_ix(ALL_PARTICIPANTS)
        for expected in ("27.5%", "100%", "94%", "89%", "Question 9"):
            assert expected in text

    def test_percentages_recompute_from_raw_data(self):
        """The pipeline derives percentages from responses, not constants:
        dropping a participant changes the output."""
        full = render_table_ix(ALL_PARTICIPANTS)
        reduced = render_table_ix(ALL_PARTICIPANTS[:-1])
        assert full != reduced
