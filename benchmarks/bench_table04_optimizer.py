"""Table IV -- optimizer effectiveness: Rand vs BLEND vs Ideal.

Random two-seeker Intersection plans per seeker class (Mixed / SC / MC /
C) are executed in both possible orders; *Rand* is the expected runtime of
a random order (mean of both), *Ideal* is an oracle that always picks the
faster order, *BLEND* is the optimizer's choice including its own
overhead. *Accuracy* is the fraction of plans where the optimizer picked
the truly faster order, with the paper's z-test against the 50 % random
baseline.

Expected shape: large gains for MC/C-heavy plans, modest for SC-only;
accuracy well above 50 %, below the oracle's 100 %.
"""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro import Blend, Combiners, Plan
from repro.core.optimizer.cost_model import (
    _random_c,
    _random_kw,
    _random_mc,
    _random_sc,
)
from repro.core.executor import PlanExecutor
from repro.core.optimizer.planner import ExecutionPlan, RewriteSpec
from repro.eval import render_table, timed
from repro.lake.generators import CorpusConfig, generate_corpus

PLANS_PER_CLASS = 20
K = 10


@pytest.fixture(scope="module")
def blend():
    lake = generate_corpus(
        CorpusConfig(name="gittables_like", num_tables=200, min_rows=10, max_rows=120, seed=41)
    )
    deployment = Blend(lake, backend="column")
    deployment.build_index()
    deployment.train_optimizer(samples_per_type=25, seed=5)
    return deployment


def _sample_seeker(kind, lake, rng):
    makers = {"SC": _random_sc, "KW": _random_kw, "MC": _random_mc, "C": _random_c}
    for _ in range(50):
        seeker = makers[kind](lake, rng, K)
        if seeker is not None:
            return seeker
    raise RuntimeError(f"could not sample a {kind} seeker")


def _sample_plan(seeker_class, lake, rng):
    """A random 2-seeker Intersection plan of the given class."""
    if seeker_class == "Mixed":
        kinds = rng.sample(["SC", "KW", "MC", "C"], 2)
    else:
        kinds = [seeker_class, seeker_class]
    plan = Plan()
    plan.add("a", _sample_seeker(kinds[0], lake, rng))
    plan.add("b", _sample_seeker(kinds[1], lake, rng))
    plan.add("i", Combiners.Intersect(k=K), ["a", "b"])
    return plan


def _forced_execution(first, second):
    return ExecutionPlan(
        order=[first, second, "i"],
        rewrites={second: RewriteSpec(mode="intersect", source_nodes=(first,))},
    )


def _measure_plan(blend, plan):
    """Both forced orders (warm + timed) and the optimizer's decision."""
    executor = PlanExecutor(blend.context())
    timings = {}
    for first, second in (("a", "b"), ("b", "a")):
        forced = _forced_execution(first, second)
        executor.run(plan, forced)  # warm-up
        timings[first] = min(
            timed(lambda: executor.run(plan, forced))[1] for _ in range(2)
        )
    # BLEND: optimization + execution of the chosen order. Min-of-2 with
    # warm-up suppresses GC/scheduler outliers at millisecond scale.
    def optimized_run():
        execution = blend.optimizer.optimize(plan, blend.stats)
        return execution, executor.run(plan, execution)

    optimized_run()  # warm-up
    (execution, _), blend_seconds = min(
        (timed(optimized_run) for _ in range(2)), key=lambda pair: pair[1]
    )
    seeker_order = [n for n in execution.order if n in ("a", "b")]
    chosen_first = seeker_order[0]
    truly_first = min(timings, key=timings.get)
    return {
        "rand": statistics.fmean(timings.values()),
        "ideal": min(timings.values()),
        "blend": blend_seconds,
        "correct": chosen_first == truly_first
        or abs(timings["a"] - timings["b"]) < 0.1 * max(timings.values()),
    }


@pytest.fixture(scope="module")
def measurements(blend):
    rng = random.Random(77)
    results = {}
    for seeker_class in ("Mixed", "SC", "MC", "C"):
        rows = []
        for _ in range(PLANS_PER_CLASS):
            plan = _sample_plan(seeker_class, blend.lake, rng)
            rows.append(_measure_plan(blend, plan))
        results[seeker_class] = rows
    return results


@pytest.mark.parametrize("seeker_class", ["Mixed", "SC", "MC", "C"])
def test_optimized_plan_runtime(benchmark, blend, seeker_class):
    """Benchmark: optimizing + executing one plan of each class."""
    rng = random.Random(ord(seeker_class[0]))
    plan = _sample_plan(seeker_class, blend.lake, rng)
    benchmark(lambda: blend.run(plan))


def test_table04_report(benchmark, measurements, report_writer):
    def summarise():
        rows = []
        for seeker_class, samples in measurements.items():
            rand = statistics.fmean(s["rand"] for s in samples)
            blend_time = statistics.fmean(s["blend"] for s in samples)
            ideal = statistics.fmean(s["ideal"] for s in samples)
            accuracy = statistics.fmean(1.0 if s["correct"] else 0.0 for s in samples)
            rows.append(
                [
                    seeker_class,
                    f"{rand * 1e3:.2f}",
                    f"{blend_time * 1e3:.2f}",
                    f"{ideal * 1e3:.2f}",
                    f"{(1 - blend_time / rand) * 100:.1f}%" if rand > 0 else "-",
                    f"{(1 - ideal / rand) * 100:.1f}%" if rand > 0 else "-",
                    f"{accuracy * 100:.1f}%",
                    "100%",
                ]
            )
        return rows

    rows = benchmark.pedantic(summarise, rounds=1, iterations=1)

    # The paper's z-test: optimizer accuracy vs the 50 % random baseline.
    all_samples = [s for samples in measurements.values() for s in samples]
    n = len(all_samples)
    p_hat = statistics.fmean(1.0 if s["correct"] else 0.0 for s in all_samples)
    z = (p_hat - 0.5) / math.sqrt(0.25 / n)
    p_value = 2 * (1 - _normal_cdf(abs(z)))

    report_writer(
        "table04_optimizer",
        render_table(
            "TABLE IV (reproduction): Optimizer effectiveness",
            [
                "Seeker",
                "Rand ms",
                "BLEND ms",
                "Ideal ms",
                "Gain BLEND",
                "Gain Ideal",
                "Acc BLEND",
                "Acc Ideal",
            ],
            rows,
            note=(
                f"{PLANS_PER_CLASS} random 2-seeker Intersection plans per class; "
                f"overall accuracy {p_hat * 100:.1f}% over n={n}, z={z:.1f}, "
                f"p={p_value:.2g} vs the 50% null (paper: z=45.6, p~0)"
            ),
        ),
    )

    # Shape: optimizer never worse than random by more than noise, and
    # accuracy significantly better than coin flips.
    assert p_hat > 0.6
    for row in rows:
        rand_ms, blend_ms = float(row[1]), float(row[2])
        assert blend_ms <= rand_ms * 1.25, row[0]


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))
