"""Micro-benchmark: index maintenance under the mutable-lake lifecycle.

Phases measured (on a seeded Table-II-style generated lake, indexed
once up front):

===================  =====================================================
maintenance          remove + reindex throughput: replace_table cycles
                     (delete one table's AllTables rows + append the new
                     table's rows); rows/s counts index rows touched
                     (removed + added)
maintenance_remove   pure removals (tombstone deletes incl. threshold
                     compactions); rows/s counts index rows removed
maintenance_compact  one forced full compaction (dictionary re-encode +
                     cluster-order rebuild) after the removal churn
===================  =====================================================

Results merge into ``BENCH_index.json`` (run through
``benchmarks/run_bench.py --suite maintenance``). ``run_check`` is the
hardware-independent lifecycle-parity smoke the nightly CI job runs via
``run_bench.py --check-only``: scripted add/remove/replace interleavings
on both storage backends, asserting seeker-result parity with a
from-scratch build and byte-identical post-compaction storage.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.core.seekers import SeekerContext, Seekers
from repro.core.system import Blend
from repro.engine import Database
from repro.index import IndexConfig, build_alltables
from repro.lake import Table
from repro.lake.generators import CorpusConfig, generate_corpus

DEFAULT_SEED = 71


def _phase(seconds: float, rows: int) -> dict[str, float]:
    return {
        "seconds": round(seconds, 6),
        "rows_per_sec": round(rows / seconds, 1) if seconds > 0 else float("inf"),
    }


def _timed(fn: Callable[[], int]) -> tuple[float, int]:
    start = time.perf_counter()
    rows = fn()
    return time.perf_counter() - start, rows


def _bench_lake(seed: int, scale: float = 1.0):
    config = CorpusConfig(
        name="bench_maint",
        num_tables=max(4, int(120 * scale)),
        min_rows=max(2, int(80 * scale)),
        max_rows=max(4, int(300 * scale)),
        seed=seed,
    )
    lake = generate_corpus(config)
    for table in lake:
        table.numeric_columns()
    return lake


def _variant(table: Table, tag: str) -> Table:
    """A same-shape replacement table (rotated rows, fresh name)."""
    rows = table.rows[1:] + table.rows[:1]
    return Table(f"{table.name}_{tag}", table.columns, rows)


def run_benchmark(seed: int = DEFAULT_SEED, scale: float = 1.0) -> dict[str, dict[str, float]]:
    lake = _bench_lake(seed, scale)
    blend = Blend(lake, backend="column")
    blend.build_index()
    storage = blend.db.table("AllTables")
    rng = random.Random(seed)
    results: dict[str, dict[str, float]] = {}

    # -- replace cycles: the remove+reindex hot loop. Rows touched =
    # -- removed + re-added per cycle (the table's own index rows, twice).
    live = blend.lake.table_ids()
    targets = rng.sample(live, min(40, len(live) // 2))

    def replace_rows() -> int:
        touched = 0
        for cycle, table_id in enumerate(targets):
            table = blend.lake.by_id(table_id)
            per_table = sum(
                1 for _, _, v in table.iter_cells() if v is not None
            )
            blend.replace_table(table_id, _variant(table, f"r{cycle}"))
            touched += 2 * per_table  # removed + re-added
        return touched

    seconds, touched = _timed(replace_rows)
    results["maintenance"] = _phase(seconds, touched)

    # -- pure removals (tombstones + threshold compactions) --------------------
    remove_targets = rng.sample(blend.lake.table_ids(), min(30, len(blend.lake) // 3))

    def removals() -> int:
        removed_rows = 0
        for table_id in remove_targets:
            before = blend.db.num_rows("AllTables")
            blend.remove_table(table_id)
            removed_rows += before - blend.db.num_rows("AllTables")
        return removed_rows

    seconds, removed_rows = _timed(removals)
    results["maintenance_remove"] = _phase(seconds, removed_rows)

    # -- one forced full compaction --------------------------------------------
    compactions_before = storage.compactions
    seconds, _ = _timed(lambda: (blend.compact_index(), 0)[1])
    results["maintenance_compact"] = _phase(seconds, blend.db.num_rows("AllTables"))
    assert storage.compactions > compactions_before
    return results


def format_report(results: dict[str, dict[str, float]]) -> str:
    lines = [f"{'phase':<20} {'seconds':>10} {'rows/s':>14}"]
    for phase, numbers in results.items():
        lines.append(
            f"{phase:<20} {numbers['seconds']:>10.4f} {numbers['rows_per_sec']:>14,.0f}"
        )
    return "\n".join(lines)


# -- the hardware-independent lifecycle smoke (run_bench --check-only) ---------


def _scripted_mutations(blend: Blend, rng: random.Random) -> None:
    counter = 0
    for _ in range(8):
        live = blend.lake.table_ids()
        op = rng.choice(("add", "remove", "replace"))
        if op == "add" or len(live) <= 3:
            counter += 1
            blend.add_table(
                Table(
                    f"smoke_add{counter}",
                    ["k", "n"],
                    [(f"sm{rng.randint(0, 20)}", rng.randint(0, 9)) for _ in range(6)],
                )
            )
        elif op == "remove":
            blend.remove_table(rng.choice(live))
        else:
            counter += 1
            table = blend.lake.by_id(rng.choice(live))
            blend.replace_table(
                blend.lake.id_of(table.name), _variant(table, f"s{counter}")
            )


def _seeker_results(context: SeekerContext, lake) -> dict:
    table = lake.by_id(lake.table_ids()[0])
    values = [v for v in table.column_values(table.columns[0]) if v is not None][:8]
    seekers = {"SC": Seekers.SC(values, k=10), "KW": Seekers.KW(values, k=10)}
    wide = [r[:2] for r in table.rows if all(v is not None for v in r[:2])]
    if table.num_columns >= 2 and len(wide) >= 2:
        seekers["MC"] = Seekers.MC(wide[:6], k=10)
    flags = table.numeric_columns()
    if any(flags) and not all(flags):
        seekers["C"] = Seekers.Correlation(
            table.column_values(table.columns[flags.index(False)]),
            table.column_values(table.columns[flags.index(True)]),
            k=10,
            min_support=2,
        )
    return {
        kind: [(hit.table_id, hit.score) for hit in seeker.execute(context)]
        for kind, seeker in seekers.items()
    }


def run_check(seed: int = DEFAULT_SEED, scale: float = 0.25) -> str:
    """Reduced-scale lifecycle-parity smoke: after scripted
    add/remove/replace interleavings, every seeker agrees with a
    from-scratch build of the final lake on BOTH backends, and compacted
    storage row order equals the fresh build's. Raises AssertionError on
    divergence; no timing, hence hardware-independent."""
    checked = 0
    for backend in ("row", "column"):
        lake = _bench_lake(seed, min(scale, 0.15))
        blend = Blend(lake, backend=backend)
        blend.build_index()
        _scripted_mutations(blend, random.Random(seed + checked))

        fresh_db = Database(backend=backend)
        build_alltables(blend.lake, fresh_db, IndexConfig())
        fresh_context = SeekerContext(db=fresh_db, lake=blend.lake)

        maintained = _seeker_results(blend.context(), blend.lake)
        rebuilt = _seeker_results(fresh_context, blend.lake)
        if maintained != rebuilt:
            raise AssertionError(
                f"lifecycle parity violated on the {backend} backend: "
                f"maintained {maintained} != rebuilt {rebuilt}"
            )
        sql = "SELECT * FROM AllTables"
        maintained_rows = sorted(blend.db.execute(sql).rows)
        fresh_rows = sorted(fresh_db.execute(sql).rows)
        if maintained_rows != fresh_rows:
            raise AssertionError(
                f"lifecycle parity violated on the {backend} backend: "
                f"{len(maintained_rows)} maintained index rows diverge "
                f"from {len(fresh_rows)} rebuilt rows"
            )
        blend.compact_index()
        if blend.db.execute(sql).rows != fresh_db.execute(sql).rows:
            raise AssertionError(
                f"post-compaction storage order diverges from the fresh "
                f"build on the {backend} backend"
            )
        checked += len(maintained)
    return (
        f"lifecycle parity OK: {checked} seeker templates x 2 backends, "
        f"rebuild + post-compaction byte-order identical (scale={scale})"
    )


PHASES = ("maintenance", "maintenance_remove", "maintenance_compact")
