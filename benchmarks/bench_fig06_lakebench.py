"""Fig. 6 -- LakeBench experiment: runtime and effectiveness of BLEND,
JOSIE, and DeepJoin on a webtable-like join benchmark with ground truth.

Expected shape (paper §VIII-D): DeepJoin fastest (HNSW look-up); BLEND
and Josie identical effectiveness (same exact-overlap semantics);
DeepJoin's semantic matching gives it different (often higher) P@k/R@k.
"""

from __future__ import annotations

import statistics

import pytest

from repro import Blend
from repro.baselines import DeepJoinIndex, JosieIndex
from repro.eval import precision_at_k, recall_at_k, render_table, timed
from repro.lake.generators import make_join_benchmark

KS = (5, 10, 15, 20)


@pytest.fixture(scope="module")
def setup():
    bench = make_join_benchmark(
        name="webtable_like", num_tables=250, query_sizes=(200, 1200),
        queries_per_size=5, max_rows=50, seed=71,
    )
    blend = Blend(bench.lake, backend="column")
    blend.build_index()
    josie = JosieIndex(bench.lake)
    deepjoin = DeepJoinIndex(bench.lake)
    return bench, blend, josie, deepjoin


def _search(system_name, systems, values, k):
    bench, blend, josie, deepjoin = systems
    if system_name == "blend":
        return blend.join_search(values, k=k).table_ids()
    if system_name == "josie":
        return josie.search(values, k=k).table_ids()
    return deepjoin.search(values, k=k).table_ids()


@pytest.mark.parametrize("system", ["josie", "deepjoin", "blend"])
def test_lakebench_runtime(benchmark, setup, system):
    query = setup[0].queries[-1]
    benchmark(lambda: _search(system, setup, list(query.values), 10))


def test_fig06_report(benchmark, setup, report_writer):
    bench = setup[0]

    def evaluate():
        runtimes = {}
        quality = {}
        for system in ("josie", "deepjoin", "blend"):
            samples = []
            for query in bench.queries:
                values = list(query.values)
                _search(system, setup, values, 10)  # warm
                samples.append(timed(lambda: _search(system, setup, values, 10))[1])
            runtimes[system] = statistics.fmean(samples)
            quality[system] = {}
            for k in KS:
                precisions, recalls = [], []
                for query in bench.queries:
                    truth = bench.ground_truth(query, k)
                    retrieved = _search(system, setup, list(query.values), k)
                    precisions.append(precision_at_k(retrieved, truth, k))
                    recalls.append(recall_at_k(retrieved, truth, k))
                quality[system][k] = (
                    statistics.fmean(precisions),
                    statistics.fmean(recalls),
                )
        return runtimes, quality

    runtimes, quality = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    rows = []
    for system in ("josie", "deepjoin", "blend"):
        row = [system.capitalize(), f"{runtimes[system] * 1e3:.2f} ms"]
        for k in KS:
            p, r = quality[system][k]
            row.append(f"{p * 100:.0f}%/{r * 100:.0f}%")
        rows.append(row)
    report_writer(
        "fig06_lakebench",
        render_table(
            "Fig. 6 (reproduction): LakeBench runtime and P@k/R@k",
            ["System", "Runtime"] + [f"P/R@{k}" for k in KS],
            rows,
            note="ground truth = exact top-k overlap; BLEND == Josie by construction",
        ),
    )

    # Shape assertions. DeepJoin's quality is NOT asserted: with the
    # hashing-based encoder substitution it cannot reach the paper's
    # semantic precision (documented in EXPERIMENTS.md).
    assert runtimes["deepjoin"] < runtimes["blend"]
    assert runtimes["deepjoin"] < runtimes["josie"]
    for k in KS:
        assert quality["blend"][k] == quality["josie"][k]
        assert quality["blend"][k][0] >= 0.95  # exact search: near-perfect P@k