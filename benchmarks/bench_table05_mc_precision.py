"""Table V -- multi-column join discovery: BLEND's MC seeker vs MATE.

Measures TP / FP / precision of the pre-validation candidate sets on two
lakes (the paper's DWTC and German Open Data roles). A TP is a candidate
row truly joinable with a query tuple on the full composite key; an FP is
a candidate that survives each system's filtering but is not joinable.

Expected shape: recall 100 % for both (XASH has no false negatives);
BLEND >99 % precision (its SQL join demands index hits from every query
column in the same row) vs MATE's much lower precision (single-column
fetch + bloom filter); BLEND faster because fewer candidates reach
validation.
"""

from __future__ import annotations

import pytest

from repro import Blend
from repro.baselines import MateIndex
from repro.core.seekers import MultiColumnSeeker
from repro.eval import render_table
from repro.lake.generators import make_multicolumn_benchmark

LAKES = {
    "dwtc_like": dict(
        num_queries=5, key_width=2, rows_per_query=10,
        aligned_tables_per_query=4, misaligned_tables_per_query=6,
        wide_tables_per_query=4, wide_width=18, wide_rows=40,
        distractor_tables=60, seed=51,
    ),
    "opendata_like": dict(
        num_queries=5, key_width=3, rows_per_query=8,
        aligned_tables_per_query=3, misaligned_tables_per_query=5,
        wide_tables_per_query=3, wide_width=18, wide_rows=30,
        distractor_tables=40, seed=53,
    ),
}


@pytest.fixture(scope="module", params=list(LAKES))
def setup(request):
    bench = make_multicolumn_benchmark(name=f"mc_{request.param}", **LAKES[request.param])
    blend = Blend(bench.lake, backend="column")
    blend.build_index()
    mate = MateIndex(bench.lake)
    return request.param, bench, blend, mate


def _blend_counts(bench, blend, query):
    """BLEND's (TP, FP) among post-superkey candidates."""
    seeker = MultiColumnSeeker(query.table.rows, k=10)
    context = blend.context()
    candidates = seeker.fetch_candidates(context)
    filtered = seeker.superkey_filter(candidates, context)
    validated = set(seeker.validate(filtered, context))
    tp = len(validated)
    fp = len(filtered) - tp
    return tp, fp


def _mate_counts(bench, mate, query):
    mate.search(query.table.rows, k=10)
    return mate.last_stats.true_positives, mate.last_stats.false_positives


def test_mc_runtime_blend(benchmark, setup):
    _, bench, blend, _ = setup
    query = bench.queries[0]
    benchmark(lambda: blend.multi_column_join_search(query.table.rows, k=10))


def test_mc_runtime_mate(benchmark, setup):
    _, bench, _, mate = setup
    query = bench.queries[0]
    benchmark(lambda: mate.search(query.table.rows, k=10))


def test_table05_report(benchmark, setup, report_writer):
    lake_name, bench, blend, mate = setup

    def measure():
        blend_tp = blend_fp = mate_tp = mate_fp = 0
        for query in bench.queries:
            tp, fp = _blend_counts(bench, blend, query)
            blend_tp += tp
            blend_fp += fp
            tp, fp = _mate_counts(bench, mate, query)
            mate_tp += tp
            mate_fp += fp
        return blend_tp, blend_fp, mate_tp, mate_fp

    blend_tp, blend_fp, mate_tp, mate_fp = benchmark.pedantic(measure, rounds=1, iterations=1)
    blend_precision = blend_tp / max(1, blend_tp + blend_fp)
    mate_precision = mate_tp / max(1, mate_tp + mate_fp)
    report_writer(
        f"table05_mc_precision_{lake_name}",
        render_table(
            f"TABLE V (reproduction): MC precision on {lake_name}",
            ["System", "TP", "FP", "Precision"],
            [
                ["BLEND", blend_tp, blend_fp, f"{blend_precision * 100:.2f}%"],
                ["MATE", mate_tp, mate_fp, f"{mate_precision * 100:.2f}%"],
            ],
            note="candidate rows after each system's filtering, summed over queries",
        ),
    )

    # Paper shape: identical TPs (recall 100 % both), BLEND cleaner.
    assert blend_tp == mate_tp
    assert blend_precision > mate_precision
    assert blend_precision >= 0.9
