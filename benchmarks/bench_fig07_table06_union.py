"""Fig. 7 + Table VI -- union search: BLEND's native union plan (one SC
seeker per column + Counter) vs Starmie, on TUS/SANTOS-style lakes.

Fig. 7 (runtime): Starmie's in-memory ANN wins on most lakes; BLEND
(Column) is roughly an order of magnitude faster than BLEND (Row).

Table VI (quality): Starmie's semantic embeddings edge out BLEND at small
k; BLEND's syntactic overlap catches up at k=20 and wins for larger k
(embedding recall degrades faster than value-overlap recall).
"""

from __future__ import annotations

import statistics

import pytest

from repro import Blend
from repro.baselines import StarmieIndex
from repro.eval import (
    average_precision_at_k,
    precision_at_k,
    recall_at_k,
    render_series_chart,
    render_table,
    timed,
)
from repro.lake.generators import make_union_benchmark

LAKES = {
    "santos_like": dict(num_seeds=8, partitions_per_seed=4, rows_per_seed=80, distractor_tables=40, seed=81),
    "santos_large_like": dict(num_seeds=12, partitions_per_seed=5, rows_per_seed=120, distractor_tables=80, seed=82),
    "tus_like": dict(num_seeds=6, partitions_per_seed=12, rows_per_seed=120, distractor_tables=40, seed=83),
    "tus_large_like": dict(num_seeds=8, partitions_per_seed=16, rows_per_seed=160, distractor_tables=60, seed=84),
}
KS = (2, 5, 10, 20)
PER_COLUMN_K = 100


@pytest.fixture(scope="module")
def deployments():
    setups = {}
    for lake_name, config in LAKES.items():
        bench = make_union_benchmark(name=lake_name, **config)
        blends = {}
        for backend in ("row", "column"):
            blend = Blend(bench.lake, backend=backend)
            blend.build_index()
            blends[backend] = blend
        starmie = StarmieIndex(bench.lake)
        setups[lake_name] = (bench, blends, starmie)
    return setups


def _union_search(system, setup, query_name, k):
    bench, blends, starmie = setup
    query_table = bench.lake.by_name(query_name)
    query_id = bench.lake.id_of(query_name)
    if system == "starmie":
        return starmie.search(query_table, k=k, exclude_table_id=query_id).table_ids()
    return blends[system].union_search(query_table, k=k, per_column_k=PER_COLUMN_K).table_ids()


@pytest.mark.parametrize("lake_name", list(LAKES))
@pytest.mark.parametrize("system", ["starmie", "row", "column"])
def test_union_runtime(benchmark, deployments, lake_name, system):
    setup = deployments[lake_name]
    query = setup[0].queries[0]
    benchmark(lambda: _union_search(system, setup, query, 10))


def test_fig07_report(benchmark, deployments, report_writer):
    def sweep():
        series = {"STARMIE": [], "BLEND (Row)": [], "BLEND (Column)": []}
        for lake_name in LAKES:
            setup = deployments[lake_name]
            for label, system in (
                ("STARMIE", "starmie"),
                ("BLEND (Row)", "row"),
                ("BLEND (Column)", "column"),
            ):
                samples = []
                for query in setup[0].queries[:3]:
                    _union_search(system, setup, query, 10)  # warm
                    samples.append(
                        timed(lambda: _union_search(system, setup, query, 10))[1]
                    )
                series[label].append(statistics.fmean(samples))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_writer(
        "fig07_union_runtime",
        render_series_chart(
            "Fig. 7 (reproduction): union-search runtime per lake",
            list(LAKES),
            series,
            log_note=True,
        ),
    )
    # Shape: the column store beats the row store on every lake (the
    # paper's 10x gap reflects PostgreSQL's page/disk overheads; two
    # in-memory Python executors compress it to ~1.5-2x -- EXPERIMENTS.md).
    # Starmie's position depends on the encoder substitution and is
    # reported, not asserted.
    for row_time, column_time in zip(series["BLEND (Row)"], series["BLEND (Column)"]):
        assert column_time < row_time


def test_table06_report(benchmark, deployments, report_writer):
    def evaluate():
        results = {}
        for lake_name in ("santos_like", "tus_like", "tus_large_like"):
            setup = deployments[lake_name]
            bench = setup[0]
            per_system = {}
            for system in ("column", "starmie"):
                metrics = {}
                for k in KS:
                    precisions, recalls, aps = [], [], []
                    for query in bench.queries:
                        truth = bench.ground_truth(query)
                        retrieved = _union_search(system, setup, query, k)
                        precisions.append(precision_at_k(retrieved, truth, k))
                        recalls.append(recall_at_k(retrieved, truth, k))
                        aps.append(average_precision_at_k(retrieved, truth, k))
                    metrics[k] = (
                        statistics.fmean(precisions),
                        statistics.fmean(recalls),
                        statistics.fmean(aps),
                    )
                per_system[system] = metrics
            results[lake_name] = per_system
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    rows = []
    for lake_name, per_system in results.items():
        for system, label in (("column", "BLEND"), ("starmie", "STARMIE")):
            row = [lake_name, label]
            for k in KS:
                p, r, m = per_system[system][k]
                row.append(f"{p*100:.0f}/{r*100:.0f}/{m*100:.0f}")
            rows.append(row)
    report_writer(
        "table06_union_quality",
        render_table(
            "TABLE VI (reproduction): union-search quality (P@k/Recall/MAP %)",
            ["Lake", "System"] + [f"k={k}" for k in KS],
            rows,
            note="family ground truth; k scaled to family sizes (paper: k=10..100)",
        ),
    )

    # Shape: BLEND competitive with Starmie overall -- ahead on the
    # SANTOS-style lake at every k, and within 15 % recall at the largest
    # k on the TUS-style lakes. (The paper's high-k crossover in BLEND's
    # favour is muted here: the hashing encoder substitution makes our
    # Starmie partially syntactic too -- see EXPERIMENTS.md.)
    for k in KS:
        assert (
            results["santos_like"]["column"][k][2]
            >= results["santos_like"]["starmie"][k][2]
        )
    for lake_name in ("tus_like", "tus_large_like"):
        blend_recall = results[lake_name]["column"][KS[-1]][1]
        starmie_recall = results[lake_name]["starmie"][KS[-1]][1]
        assert blend_recall >= starmie_recall * 0.85
