"""Table VII -- correlation discovery: BLEND, BLEND (rand), and the QCR
sketch baseline on the NYC-like benchmark, with categorical-only and
mixed (numeric-join-key) query regimes.

Expected shape (paper §VIII-G): on NYC (All) BLEND clearly beats the
baseline (numeric join keys break the categorical-only sketch); on NYC
(Cat.) the baseline is competitive or slightly ahead; BLEND (rand)
(pre-shuffled index rows => random h-sample) >= vanilla BLEND, whose
``RowId < h`` convenience sample can be unrepresentative.
"""

from __future__ import annotations

import statistics

import pytest

from repro import Blend
from repro.baselines import QcrIndex
from repro.eval import precision_at_k, recall_at_k, render_table, timed
from repro.index.alltables import IndexConfig
from repro.lake.generators import make_correlation_benchmark

K = 10
H = 256

REGIMES = {
    "nyc_cat_like": "categorical",
    "nyc_all_like": "mixed",
}


@pytest.fixture(scope="module", params=list(REGIMES))
def setup(request):
    bench = make_correlation_benchmark(
        name=request.param, num_queries=6, num_entities=200,
        tables_per_query=6, rows_per_table=400,
        distractor_tables=25, key_regime=REGIMES[request.param], seed=91,
    )
    blend = Blend(bench.lake, backend="column")
    blend.build_index()
    blend_rand = Blend(
        bench.lake, backend="column",
        index_config=IndexConfig(shuffle_rows=True, shuffle_seed=7),
    )
    blend_rand.build_index()
    qcr = QcrIndex(bench.lake, h=H)
    return request.param, bench, {"blend": blend, "blend_rand": blend_rand, "qcr": qcr}


def _search(system_name, systems, query, k):
    if system_name == "qcr":
        return systems["qcr"].search(list(query.keys), list(query.targets), k=k).table_ids()
    return (
        systems[system_name]
        .correlation_search(list(query.keys), list(query.targets), k=k, h=H)
        .table_ids()
    )


@pytest.mark.parametrize("system", ["blend", "blend_rand", "qcr"])
def test_correlation_runtime(benchmark, setup, system):
    _, bench, systems = setup
    query = bench.queries[0]
    benchmark(lambda: _search(system, systems, query, K))


def test_table07_report(benchmark, setup, report_writer):
    regime_name, bench, systems = setup

    def evaluate():
        rows = {}
        for system in ("blend", "blend_rand", "qcr"):
            precisions, recalls, times = [], [], []
            for query in bench.queries:
                truth = bench.ground_truth(query, K)
                _search(system, systems, query, K)  # warm
                retrieved, seconds = timed(lambda: _search(system, systems, query, K))
                times.append(seconds)
                precisions.append(precision_at_k(retrieved, truth, K))
                recalls.append(recall_at_k(retrieved, truth, K))
            rows[system] = (
                statistics.fmean(precisions),
                statistics.fmean(recalls),
                statistics.fmean(times),
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    report_writer(
        f"table07_correlation_{regime_name}",
        render_table(
            f"TABLE VII (reproduction): correlation discovery on {regime_name} "
            f"(k={K}, h={H})",
            ["System", "P@10", "R@10", "Runtime"],
            [
                ["BLEND", f"{rows['blend'][0]*100:.0f}%", f"{rows['blend'][1]*100:.0f}%", f"{rows['blend'][2]*1e3:.2f} ms"],
                ["BLEND (rand)", f"{rows['blend_rand'][0]*100:.0f}%", f"{rows['blend_rand'][1]*100:.0f}%", f"{rows['blend_rand'][2]*1e3:.2f} ms"],
                ["Baseline (QCR)", f"{rows['qcr'][0]*100:.0f}%", f"{rows['qcr'][1]*100:.0f}%", f"{rows['qcr'][2]*1e3:.2f} ms"],
            ],
            note="ground truth = exact top-k |Pearson| over joined pairs",
        ),
    )

    if regime_name == "nyc_all_like":
        # Numeric join keys break the categorical-only sketch baseline.
        assert rows["blend"][0] > rows["qcr"][0]
        assert rows["blend"][1] > rows["qcr"][1]
    else:
        # Categorical regime: the baseline is competitive with BLEND.
        assert rows["qcr"][0] >= rows["blend"][0] * 0.6
    # Random sampling at least matches convenience sampling.
    assert rows["blend_rand"][0] >= rows["blend"][0] - 0.1
