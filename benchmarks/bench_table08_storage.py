"""Table VIII -- index storage: BLEND's single AllTables relation vs the
sum of the five standalone state-of-the-art indexes (DataXFormer, JOSIE,
MATE, Starmie, QCR), measured on the actually built index structures.

Expected shape: BLEND below the combination on every lake (the paper
reports an average 57 % saving; the exact fraction depends on how
numeric-column-heavy a lake is, since the QCR index is quadratic in
column pairs).
"""

from __future__ import annotations

import pytest

from repro import Blend
from repro.baselines import (
    DataXFormerIndex,
    JosieIndex,
    MateIndex,
    QcrIndex,
    StarmieIndex,
)
from repro.eval import render_table
from repro.index import format_bytes, measure_breakdown
from repro.lake.generators import CorpusConfig, generate_corpus

LAKES = {
    "gittables_like": CorpusConfig(name="s8_gittables", num_tables=150, min_rows=10, max_rows=100, seed=95),
    "opendata_like": CorpusConfig(name="s8_opendata", num_tables=40, min_rows=50, max_rows=300, seed=96),
    "webtable_like": CorpusConfig(name="s8_webtable", num_tables=250, min_rows=5, max_rows=40, seed=97),
}


@pytest.fixture(scope="module")
def breakdowns():
    results = []
    for lake_name, config in LAKES.items():
        lake = generate_corpus(config)
        blend = Blend(lake, backend="column")
        blend.build_index()
        results.append(
            measure_breakdown(
                lake_name=lake_name,
                blend_bytes=blend.db.storage_bytes("AllTables"),
                dataxformer_bytes=DataXFormerIndex(lake).storage_bytes(),
                josie_bytes=JosieIndex(lake).storage_bytes(),
                mate_bytes=MateIndex(lake).storage_bytes(),
                starmie_bytes=StarmieIndex(lake).storage_bytes(),
                qcr_bytes=QcrIndex(lake, h=256).storage_bytes(),
            )
        )
    return results


def test_blend_index_build_storage(benchmark):
    """Benchmark: offline index build on the mid-size lake."""
    lake = generate_corpus(LAKES["opendata_like"])

    def build():
        blend = Blend(lake, backend="column")
        blend.build_index()
        return blend.db.storage_bytes("AllTables")

    assert benchmark(build) > 0


def test_table08_report(benchmark, breakdowns, report_writer):
    rows = benchmark.pedantic(
        lambda: [
            [
                b.lake_name,
                format_bytes(b.blend_bytes),
                format_bytes(b.combined_sota_bytes),
                f"{b.saving_fraction * 100:.0f}%",
                format_bytes(b.dataxformer_bytes),
                format_bytes(b.josie_bytes),
                format_bytes(b.mate_bytes),
                format_bytes(b.starmie_bytes),
                format_bytes(b.qcr_bytes),
            ]
            for b in breakdowns
        ],
        rounds=1,
        iterations=1,
    )
    report_writer(
        "table08_storage",
        render_table(
            "TABLE VIII (reproduction): index storage, BLEND vs combined SOTA",
            ["Lake", "BLEND", "Combined", "Saving", "DataXF", "Josie", "MATE", "Starmie", "QCR"],
            rows,
            note="measured on the actually built structures (paper avg saving: 57%)",
        ),
    )
    for breakdown in breakdowns:
        assert breakdown.blend_bytes < breakdown.combined_sota_bytes
