"""Micro-benchmark: persistent index snapshots (save / mmap warm start).

The offline/online split made operational: instead of re-running the
vectorised ``AllTables`` build on every process start, serving processes
``Blend.load`` a snapshot saved once. Phases measured (seeded
Table-II-style lake, the same one as the index suite):

=====================  ====================================================
snapshot_cold_build    vectorised ``build_alltables`` (the cost a warm
                       start avoids; re-timed here so the artefact holds
                       an apples-to-apples pair from one run)
snapshot_save          ``Blend.save``: seal + write manifest, ``.npy``
                       payloads, stats, lake pickle
snapshot_load          ``Blend.load(path, lake=lake)``: mmap warm start
                       with the lake already in memory (the N-worker
                       shape; CRC verification on -- the default)
snapshot_load_full     self-contained ``Blend.load(path)``: additionally
                       unpickles the lake cell payload
=====================  ====================================================

Results merge into ``BENCH_index.json`` (run through
``benchmarks/run_bench.py --suite snapshot``); ``rows_per_sec`` counts
index rows per second through each phase. ``run_check`` is the
hardware-independent round-trip smoke the nightly CI job runs via
``run_bench.py --check-only``: save -> load -> assert seeker parity and
byte-identical AllTables content vs the in-memory build, then mutate the
loaded deployment and assert rebuild parity -- on both storage backends.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Callable

from repro.core.seekers import Seekers
from repro.core.system import Blend
from repro.engine import Database
from repro.index import build_alltables
from repro.lake import Table
from repro.lake.generators import CorpusConfig, generate_corpus

DEFAULT_SEED = 71


def _phase(seconds: float, rows: int) -> dict[str, float]:
    return {
        "seconds": round(seconds, 6),
        "rows_per_sec": round(rows / seconds, 1) if seconds > 0 else float("inf"),
    }


def _timed(fn: Callable[[], object]) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _bench_lake(seed: int, scale: float = 1.0):
    """Same shape as the index suite's lake, so the committed
    ``snapshot_load`` row compares against the same build cost."""
    config = CorpusConfig(
        name="bench_index",
        num_tables=max(2, int(200 * scale)),
        min_rows=max(2, int(100 * scale)),
        max_rows=max(4, int(400 * scale)),
        seed=seed,
    )
    lake = generate_corpus(config)
    for table in lake:
        table.numeric_columns()
    return lake


def run_benchmark(seed: int = DEFAULT_SEED, scale: float = 1.0) -> dict[str, dict[str, float]]:
    lake = _bench_lake(seed, scale)
    results: dict[str, dict[str, float]] = {}

    blend = Blend(lake, backend="column")
    seconds, report = _timed(blend.build_index)
    index_rows = report.num_index_rows
    results["snapshot_cold_build"] = _phase(seconds, index_rows)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "snapshot"
        seconds, _ = _timed(lambda: blend.save(path))
        results["snapshot_save"] = _phase(seconds, index_rows)

        seconds, warm = _timed(lambda: Blend.load(path, lake=lake))
        results["snapshot_load"] = _phase(seconds, index_rows)

        seconds, full = _timed(lambda: Blend.load(path))
        results["snapshot_load_full"] = _phase(seconds, index_rows)

        # The timed loads must be real: spot-check one seeker result.
        table = lake.by_id(0)
        probe = [v for v in table.column_values(table.columns[0]) if v is not None][:8]
        expected = blend.keyword_search(probe).table_ids()
        for loaded in (warm, full):
            if loaded.keyword_search(probe).table_ids() != expected:
                raise AssertionError("loaded snapshot diverges from the built system")

    return results


def format_report(results: dict[str, dict[str, float]]) -> str:
    lines = [f"{'phase':<22} {'seconds':>10} {'rows/s':>14}"]
    for phase, numbers in results.items():
        lines.append(
            f"{phase:<22} {numbers['seconds']:>10.4f} {numbers['rows_per_sec']:>14,.0f}"
        )
    build = results.get("snapshot_cold_build", {}).get("seconds")
    load = results.get("snapshot_load", {}).get("seconds")
    if build and load:
        lines.append(f"warm-start speedup (mmap load vs cold build): {build / load:.1f}x")
    full = results.get("snapshot_load_full", {}).get("seconds")
    if build and full:
        lines.append(f"self-contained load (incl. lake payload): {build / full:.1f}x")
    return "\n".join(lines)


def seeker_results(blend: Blend) -> dict:
    """One ranked result list per seeker template -- the shared parity
    probe of this suite's ``run_check`` and the CI cross-version driver
    (``benchmarks/snapshot_compat.py``), so both compare snapshots the
    same way."""
    table = blend.lake.by_id(blend.lake.table_ids()[0])
    values = [v for v in table.column_values(table.columns[0]) if v is not None]
    seekers = {
        "SC": Seekers.SC(values[:8], k=10),
        "KW": Seekers.KW(values[:8], k=10),
    }
    wide = [r[:2] for r in table.rows if all(v is not None for v in r[:2])]
    if table.num_columns >= 2 and len(wide) >= 2:
        seekers["MC"] = Seekers.MC(wide[:6], k=10)
    context = blend.context()
    return {
        kind: [(hit.table_id, hit.score) for hit in seeker.execute(context)]
        for kind, seeker in seekers.items()
    }


def assert_lifecycle_rebuild_parity(loaded: Blend, backend: str) -> None:
    """Mutate a loaded deployment (add + remove) and assert its index
    equals a from-scratch build of the final lake -- shared by
    ``run_check`` and the cross-version CI driver. Must run while the
    snapshot files are still on disk: the base arrays stay read-only
    mmaps for the life of the deployment (mutations land in the delta
    layer, never promote the base)."""
    sql = "SELECT * FROM AllTables"
    loaded.add_table(
        Table("snap_check_add", ["a", "b"], [(f"v{i}", i) for i in range(6)])
    )
    loaded.remove_table(loaded.lake.table_ids()[0])
    fresh = Database(backend=backend)
    build_alltables(loaded.lake, fresh, loaded.index_config)
    if sorted(loaded.db.execute(sql).rows) != sorted(fresh.execute(sql).rows):
        raise AssertionError(f"[{backend}] post-load lifecycle diverges from rebuild")


def run_check(seed: int = DEFAULT_SEED, scale: float = 0.25) -> str:
    """Hardware-independent snapshot round-trip smoke
    (``run_bench.py --check-only``): on both storage backends, save ->
    load -> assert seeker parity and identical ``AllTables`` content vs
    the in-memory build; then mutate the loaded deployment and assert
    parity with a from-scratch build of the final lake. No timing
    thresholds -- raises ``AssertionError`` on any divergence."""
    checked = 0
    sql = "SELECT * FROM AllTables"
    for backend in ("column", "row"):
        lake = _bench_lake(seed, scale)
        blend = Blend(lake, backend=backend)
        blend.build_index()
        with tempfile.TemporaryDirectory() as tmp:
            path = blend.save(Path(tmp) / "snapshot")
            loaded = Blend.load(path)
            if seeker_results(loaded) != seeker_results(blend):
                raise AssertionError(f"[{backend}] loaded seeker results diverge")
            if loaded.db.execute(sql).rows != blend.db.execute(sql).rows:
                raise AssertionError(f"[{backend}] loaded AllTables rows diverge")
            if loaded.stats != blend.stats:
                raise AssertionError(f"[{backend}] loaded statistics diverge")
            # Lifecycle rebuild parity, while the mmap'd payloads still
            # exist (copy-on-write promotion happens on this mutation).
            assert_lifecycle_rebuild_parity(loaded, backend)
        checked += 1
    return (
        f"snapshot round-trip parity OK: {checked} backends, save -> mmap load -> "
        f"mutate all match the in-memory build (scale={scale})"
    )


PHASES = (
    "snapshot_cold_build",
    "snapshot_save",
    "snapshot_load",
    "snapshot_load_full",
)
