"""Micro-benchmark: streaming ingest over the base+delta write path.

A loaded deployment keeps its base snapshot as a frozen read-only mmap;
mutations append to delta segments and ``save()`` against the base
writes only the diff. Phases measured (same seeded lake as the index and
snapshot suites, so the rows compare directly):

======================  ===================================================
delta_mutation          one lifecycle mutation (add a small table) on a
                        loaded frozen-base deployment -- the
                        ingestion-to-queryable latency; ``rows_per_sec``
                        counts ingested cells
delta_save_full         ``save(..., incremental="never")`` of the mutated
                        deployment into a fresh directory: the O(lake)
                        cost incremental persistence avoids
delta_save_incremental  ``save_delta()`` of the same state into the base:
                        O(delta) -- asserted >= 10x faster than the full
                        save in-run
delta_query_basedelta   the snapshot suite's seeker battery over
                        base ∪ delta (the query-time overhead of the
                        unmerged delta layer)
delta_query_compacted   the same battery after ``compact_index()`` folds
                        the delta away -- the overhead baseline
delta_compaction        ``compact_snapshot``: load base+delta, fold, write
                        the next clean generation
======================  ===================================================

Results merge into ``BENCH_index.json`` (run through
``benchmarks/run_bench.py --suite delta``). Every timed phase is
oracle-checked in-run: the mutated deployment's seeker results must
match a from-scratch build of the final lake, and the incremental
round-trip must land on the writer's exact lake. ``run_check`` is the
hardware-independent base+delta parity smoke the nightly CI job runs via
``run_bench.py --check-only --suite all`` -- no timing thresholds.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core.system import Blend
from repro.engine import Database
from repro.index import build_alltables
from repro.lake import Table
from repro.serving.compaction import compact_snapshot

from bench_snapshot import _bench_lake, _phase, _timed, seeker_results

DEFAULT_SEED = 71
_MUTATION_ROUNDS = 12


def _ingest_table(i: int, rows: int = 24) -> Table:
    return Table(
        f"stream{i}",
        ["key", "val", "num"],
        [(f"sk{i}_{j}", f"tok{j % 7}", j * i) for j in range(rows)],
    )


def run_benchmark(seed: int = DEFAULT_SEED, scale: float = 1.0) -> dict[str, dict[str, float]]:
    lake = _bench_lake(seed, scale)
    blend = Blend(lake, backend="column")
    blend.build_index()

    results: dict[str, dict[str, float]] = {}
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "base"
        blend.save(base)
        served = Blend.load(base)

        # -- mutation latency on the frozen base -------------------------------
        ingested_cells = 0
        start = time.perf_counter()
        for i in range(_MUTATION_ROUNDS):
            table = _ingest_table(i)
            served.add_table(table)
            ingested_cells += table.num_rows * table.num_columns
        removed = served.remove_table(served.lake.table_ids()[0])
        ingested_cells += removed.num_rows * removed.num_columns
        seconds = time.perf_counter() - start
        results["delta_mutation"] = _phase(seconds, ingested_cells)
        stats = served.delta_stats()
        if not stats["frozen"] or stats["delta_rows"] == 0:
            raise AssertionError("mutations did not take the delta path")

        # -- incremental vs full persistence -----------------------------------
        # (incremental first: a full save into a fresh directory adopts
        # that directory as the new base, re-anchoring later deltas)
        incr_seconds, _ = _timed(served.save_delta)
        results["delta_save_incremental"] = _phase(incr_seconds, ingested_cells)
        full_seconds, _ = _timed(
            lambda: served.save(Path(tmp) / "full", incremental="never")
        )
        results["delta_save_full"] = _phase(full_seconds, ingested_cells)
        if incr_seconds * 10 > full_seconds:
            raise AssertionError(
                f"incremental save ({incr_seconds:.4f}s) is not >=10x faster "
                f"than the full save ({full_seconds:.4f}s)"
            )

        # Oracle: the incremental round-trip lands on the writer's lake.
        reloaded = Blend.load(base)
        if seeker_results(reloaded) != seeker_results(served):
            raise AssertionError("base+delta round-trip diverges from the writer")

        # -- query overhead: base ∪ delta vs compacted -------------------------
        # (both deployments warmed first, so the rows compare steady-state
        # query cost rather than one side's lazy first-touch builds)
        reloaded.warm()
        basedelta_seconds, over_delta = _timed(lambda: seeker_results(reloaded))
        results["delta_query_basedelta"] = _phase(basedelta_seconds, ingested_cells)

        compaction_seconds, compacted = _timed(
            lambda: compact_snapshot(base, Path(tmp) / "gen-0001")
        )
        results["delta_compaction"] = _phase(compaction_seconds, ingested_cells)
        compacted.warm()
        compacted_seconds, over_compacted = _timed(lambda: seeker_results(compacted))
        results["delta_query_compacted"] = _phase(compacted_seconds, ingested_cells)
        if over_delta != over_compacted:
            raise AssertionError("compaction changed seeker results")

        # Oracle: base ∪ delta equals a from-scratch build of the final lake.
        fresh = Blend(reloaded.lake, backend="column", index_config=reloaded.index_config)
        fresh.build_index()
        if seeker_results(fresh) != over_delta:
            raise AssertionError("base+delta diverges from a from-scratch build")

    return results


def format_report(results: dict[str, dict[str, float]]) -> str:
    lines = [f"{'phase':<24} {'seconds':>10} {'cells/s':>14}"]
    for phase, numbers in results.items():
        lines.append(
            f"{phase:<24} {numbers['seconds']:>10.4f} {numbers['rows_per_sec']:>14,.0f}"
        )
    full = results.get("delta_save_full", {}).get("seconds")
    incr = results.get("delta_save_incremental", {}).get("seconds")
    if full and incr:
        lines.append(f"incremental-save speedup vs full rewrite: {full / incr:.1f}x")
    basedelta = results.get("delta_query_basedelta", {}).get("seconds")
    compacted = results.get("delta_query_compacted", {}).get("seconds")
    if basedelta and compacted:
        lines.append(
            f"base ∪ delta query overhead vs compacted: {basedelta / compacted:.2f}x"
        )
    return "\n".join(lines)


def run_check(seed: int = DEFAULT_SEED, scale: float = 0.25) -> str:
    """Hardware-independent base+delta parity smoke
    (``run_bench.py --check-only``): on both storage backends, save ->
    load -> mutate (frozen base, no promote) -> incremental save ->
    reload, asserting seeker parity with a from-scratch build of the
    final lake and that ``delta=False`` still restores the bare base.
    No timing thresholds -- raises ``AssertionError`` on divergence."""
    checked = 0
    sql = "SELECT * FROM AllTables"
    for backend in ("column", "row"):
        lake = _bench_lake(seed, scale)
        blend = Blend(lake, backend=backend)
        blend.build_index()
        base_rows = sorted(blend.db.execute(sql).rows)
        with tempfile.TemporaryDirectory() as tmp:
            base = Path(tmp) / "base"
            blend.save(base)
            served = Blend.load(base)
            for i in range(4):
                served.add_table(_ingest_table(i, rows=8))
            served.remove_table(served.lake.table_ids()[0])
            if not served.delta_stats()["frozen"]:
                raise AssertionError(f"[{backend}] mutations promoted the base")
            served.save_delta()

            reloaded = Blend.load(base)
            if seeker_results(reloaded) != seeker_results(served):
                raise AssertionError(f"[{backend}] base+delta reload diverges")
            fresh = Database(backend=backend)
            build_alltables(reloaded.lake, fresh, reloaded.index_config)
            if sorted(reloaded.db.execute(sql).rows) != sorted(fresh.execute(sql).rows):
                raise AssertionError(
                    f"[{backend}] base ∪ delta diverges from a from-scratch build"
                )
            bare = Blend.load(base, delta=False)
            if sorted(bare.db.execute(sql).rows) != base_rows:
                raise AssertionError(f"[{backend}] delta=False lost the base")
        checked += 1
    return (
        f"base+delta parity OK: {checked} backends, mutate -> incremental save -> "
        f"reload matches a from-scratch build (scale={scale})"
    )


PHASES = (
    "delta_mutation",
    "delta_save_full",
    "delta_save_incremental",
    "delta_query_basedelta",
    "delta_query_compacted",
    "delta_compaction",
)
