"""Fig. 5 -- single-column join search runtime: BLEND vs JOSIE across
query sizes, on the row store and the column store.

Three lakes play the WDC / Canada-US-UK / GitTables roles, each with
query batches of growing |Q|. Expected shape: BLEND (Column) fastest and
widening with |Q|; JOSIE's tight posting loops competitive with (and
often ahead of) BLEND (Row), whose tuple-at-a-time executor pays Python
interpretation per index row -- the paper's PostgreSQL observation.
"""

from __future__ import annotations

import statistics

import pytest

from repro import Blend
from repro.baselines import JosieIndex
from repro.eval import render_series_chart, timed
from repro.lake.generators import make_join_benchmark

LAKES = {
    "wdc_like": dict(num_tables=150, query_sizes=(10, 100, 1500), max_rows=100, seed=61),
    "canada_like": dict(num_tables=120, query_sizes=(10, 200, 2000), max_rows=200, seed=62),
    "gittables_like": dict(num_tables=200, query_sizes=(10, 100, 1000), max_rows=80, seed=63),
}
QUERIES_PER_SIZE = 3
K = 10


@pytest.fixture(scope="module", params=list(LAKES))
def setup(request):
    config = dict(LAKES[request.param])
    config["queries_per_size"] = QUERIES_PER_SIZE
    bench = make_join_benchmark(name=f"f5_{request.param}", **config)
    systems = {"josie": JosieIndex(bench.lake)}
    for backend in ("row", "column"):
        blend = Blend(bench.lake, backend=backend)
        blend.build_index()
        systems[f"blend_{backend}"] = blend
    return request.param, bench, systems


def _run(system_name, systems, values):
    if system_name == "josie":
        return systems["josie"].search(values, k=K)
    return systems[system_name].join_search(values, k=K)


def _queries_of_size(bench, size):
    return [q for q in bench.queries if abs(q.size - size) <= size * 0.5][:QUERIES_PER_SIZE]


@pytest.mark.parametrize("system", ["josie", "blend_row", "blend_column"])
def test_join_search_runtime(benchmark, setup, system):
    """Benchmark: the largest query batch on each system."""
    _, bench, systems = setup
    query = max(bench.queries, key=lambda q: q.size)
    benchmark(lambda: _run(system, systems, list(query.values)))


def test_fig05_report(benchmark, setup, report_writer):
    lake_name, bench, systems = setup
    sizes = LAKES[lake_name]["query_sizes"]

    def sweep():
        series = {name: [] for name in ("blend_row", "josie", "blend_column")}
        for size in sizes:
            queries = _queries_of_size(bench, size)
            for name in series:
                samples = []
                for query in queries:
                    values = list(query.values)
                    _run(name, systems, values)  # warm
                    samples.append(timed(lambda: _run(name, systems, values))[1])
                series[name].append(statistics.fmean(samples))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_writer(
        f"fig05_join_runtime_{lake_name}",
        render_series_chart(
            f"Fig. 5 (reproduction): SC join runtime on {lake_name} (k={K})",
            [f"|Q|<={s}" for s in sizes],
            {
                "BLEND (Row)": series["blend_row"],
                "Josie": series["josie"],
                "BLEND (Column)": series["blend_column"],
            },
            log_note=True,
        ),
    )

    # Shape: BLEND (Column) always beats BLEND (Row), and is at worst
    # within 2x of Josie at the largest |Q| (it wins on the GitTables-like
    # lake; on the frequent-token canada-like lake Josie's output-
    # sensitive pruning keeps it ahead, matching the paper's own
    # row-store panels where Josie leads except at very large queries --
    # see EXPERIMENTS.md).
    largest = -1
    assert series["blend_column"][largest] <= series["josie"][largest] * 2.0
    assert series["blend_column"][largest] <= series["blend_row"][largest]


def test_outputs_identical_to_josie(benchmark, setup):
    """Fig. 6's premise: BLEND SC and Josie produce identical rankings."""
    _, bench, systems = setup

    def verify():
        for query in bench.queries[:4]:
            values = list(query.values)
            expected = systems["josie"].search(values, k=K).table_ids()
            assert systems["blend_column"].join_search(values, k=K).table_ids() == expected
            assert systems["blend_row"].join_search(values, k=K).table_ids() == expected
        return True

    assert benchmark.pedantic(verify, rounds=1, iterations=1)
