"""Micro-benchmark: online MC seeker throughput, scalar vs vectorized
phases (the perf surface of the batched phase-2/3 PR).

The lake is built MC-heavy: a shared pool of (city, country) pairs is
sampled into every table -- mostly row-aligned (validating candidates),
partly re-paired at random (candidates the super-key filter and exact
validation must prune). That reproduces the regime MATE reports, where
filtering + validation dominate end-to-end multi-column search latency.

Phases measured::

==================  ========================================================
mc_scalar           seed tuple-at-a-time phases 2/3 (reference oracle)
mc_vectorized       batched pipeline (columnar fetch, bitwise filter,
                    per-table factorized validation)
sc_query            SC template throughput (dictionary-coded aggregation)
kw_query            KW template throughput
==================  ========================================================

Before timing, the harness asserts the two MC pipelines produce identical
validated row sets and identical rankings -- the oracle guarantee behind
the committed speedup. Results serialise as
``{phase: {"seconds": ..., "queries_per_sec": ...}}`` into
``BENCH_seeker.json`` via ``benchmarks/run_bench.py --suite seeker``.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable


from repro.core.seekers import SeekerContext, Seekers
from repro.engine import Database
from repro.index import build_alltables
from repro.index.xash import xash
from repro.lake.datalake import DataLake
from repro.lake.table import Table

DEFAULT_SEED = 71
QUERY_ROUNDS = 12
MC_TUPLES = 48


def _phase(seconds: float, queries: int) -> dict[str, float]:
    return {
        "seconds": round(seconds, 6),
        "queries_per_sec": round(queries / seconds, 1) if seconds > 0 else float("inf"),
    }


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _bench_lake(seed: int, scale: float = 1.0) -> DataLake:
    """An MC-heavy lake: pool pairs recur across tables so the SQL join
    fans out, and ~30 % of placements are re-paired so phases 2/3 have
    real pruning to do."""
    rng = random.Random(seed)
    pool_size = max(10, int(400 * scale))
    countries = [f"country{i}" for i in range(max(3, pool_size // 6))]
    pool = [(f"city{i}", countries[i % len(countries)]) for i in range(pool_size)]
    num_tables = max(2, int(40 * scale))
    lake = DataLake("bench_seeker")
    for table_id in range(num_tables):
        num_rows = rng.randint(max(4, int(80 * scale)), max(8, int(240 * scale)))
        rows = []
        for _ in range(num_rows):
            city, country = pool[rng.randrange(pool_size)]
            if rng.random() < 0.3:  # mis-paired: candidate but not joinable
                country = countries[rng.randrange(len(countries))]
            rows.append(
                (
                    city,
                    country,
                    f"tok{rng.randrange(4000)}",
                    round(rng.random() * 100, 3),
                    rng.randrange(1000),
                )
            )
        lake.add(
            Table(
                f"t{table_id:03d}",
                ["city", "country", "noise", "metric", "count"],
                rows,
            )
        )
    lake._bench_pool = pool  # type: ignore[attr-defined]  # query source
    return lake


def _mc_queries(lake: DataLake, seed: int) -> list:
    rng = random.Random(seed + 1)
    pool = lake._bench_pool  # type: ignore[attr-defined]
    queries = []
    for offset in range(3):
        tuples = [pool[rng.randrange(len(pool))] for _ in range(MC_TUPLES)]
        # A few absent tuples: the filter must prune them everywhere.
        tuples += [(f"ghost{offset}_{i}", "nowhere") for i in range(4)]
        queries.append(Seekers.MC(tuples, k=10))
    return queries


def _value_queries(lake: DataLake, seed: int) -> tuple[list, list]:
    rng = random.Random(seed + 2)
    pool = lake._bench_pool  # type: ignore[attr-defined]
    values = [pool[rng.randrange(len(pool))][0] for _ in range(24)]
    return (
        [Seekers.SC(values, k=10)],
        [Seekers.KW(values, k=10)],
    )


def _assert_oracle_parity(queries: list, scalar: SeekerContext, vector: SeekerContext) -> None:
    """The acceptance bar behind the speedup: identical validated row
    sets AND identical rankings between the scalar and batched phases."""
    for seeker in queries:
        candidates = seeker.fetch_candidates(scalar)
        survivors = seeker.superkey_filter(candidates, scalar)
        validated = set(seeker.validate(survivors, scalar))
        t, r, s = seeker.fetch_candidate_arrays(vector)
        ft, fr = seeker.superkey_filter_batch(t, r, s, vector)
        vt, vr = seeker.validate_batch(ft, fr, vector)
        batched = set(zip(vt.tolist(), vr.tolist()))
        if batched != validated:
            raise AssertionError(
                f"validated-set divergence: {len(batched)} batched vs "
                f"{len(validated)} scalar rows"
            )
        ranking_scalar = [
            (hit.table_id, hit.score) for hit in seeker.execute(scalar)
        ]
        ranking_vector = [
            (hit.table_id, hit.score) for hit in seeker.execute(vector)
        ]
        if ranking_scalar != ranking_vector:
            raise AssertionError(
                f"ranking divergence: {ranking_vector} vs {ranking_scalar}"
            )


def run_benchmark(seed: int = DEFAULT_SEED, scale: float = 1.0) -> dict[str, dict[str, float]]:
    """Time the seeker phases on a freshly generated MC-heavy lake;
    returns the ``BENCH_seeker.json`` payload."""
    lake = _bench_lake(seed, scale)
    xash.cache_clear()
    db = Database(backend="column")
    build_alltables(lake, db)

    scalar = SeekerContext(db=db, lake=lake, vectorized=False)
    vector = SeekerContext(db=db, lake=lake, vectorized=True)
    mc_queries = _mc_queries(lake, seed)
    sc_queries, kw_queries = _value_queries(lake, seed)

    _assert_oracle_parity(mc_queries, scalar, vector)

    results: dict[str, dict[str, float]] = {}

    def run_all(queries: list, context: SeekerContext) -> None:
        for _ in range(QUERY_ROUNDS):
            for seeker in queries:
                seeker.execute(context)

    total_mc = QUERY_ROUNDS * len(mc_queries)
    seconds, _ = _timed(lambda: run_all(mc_queries, scalar))
    results["mc_scalar"] = _phase(seconds, total_mc)
    seconds, _ = _timed(lambda: run_all(mc_queries, vector))
    results["mc_vectorized"] = _phase(seconds, total_mc)

    total_values = QUERY_ROUNDS * len(sc_queries)
    seconds, _ = _timed(lambda: run_all(sc_queries, vector))
    results["sc_query"] = _phase(seconds, total_values)
    seconds, _ = _timed(lambda: run_all(kw_queries, vector))
    results["kw_query"] = _phase(seconds, total_values)

    return results


def run_check(seed: int = DEFAULT_SEED, scale: float = 0.25) -> str:
    """Hardware-independent parity smoke (``run_bench.py --check-only``):
    assert the scalar MC oracle and the batched pipeline produce
    identical validated row sets and rankings on a reduced-scale lake.
    No timing -- raises ``AssertionError`` on divergence."""
    lake = _bench_lake(seed, scale)
    xash.cache_clear()
    db = Database(backend="column")
    build_alltables(lake, db)
    scalar = SeekerContext(db=db, lake=lake, vectorized=False)
    vector = SeekerContext(db=db, lake=lake, vectorized=True)
    queries = _mc_queries(lake, seed)
    _assert_oracle_parity(queries, scalar, vector)
    return (
        f"MC seeker oracle parity OK: {len(queries)} queries, scalar and "
        f"batched pipelines agree on validated rows and rankings (scale={scale})"
    )


def format_report(results: dict[str, dict[str, float]]) -> str:
    lines = [f"{'phase':<16} {'seconds':>10} {'queries/s':>12}"]
    for phase, numbers in results.items():
        lines.append(
            f"{phase:<16} {numbers['seconds']:>10.4f} {numbers['queries_per_sec']:>12,.1f}"
        )
    scalar, vector = (
        results.get("mc_scalar", {}).get("seconds"),
        results.get("mc_vectorized", {}).get("seconds"),
    )
    if scalar and vector:
        lines.append(f"MC end-to-end speedup: {scalar / vector:.1f}x")
    return "\n".join(lines)


PHASES = ("mc_scalar", "mc_vectorized", "sc_query", "kw_query")
