#!/usr/bin/env python
"""Entry point for the perf-trajectory micro-benchmarks.

Two suites, each emitting one committed JSON artefact at the repo root:

* ``--suite index`` (default): ``bench_index_build`` ->
  ``BENCH_index.json`` (schema ``{phase: {"seconds": ...,
  "rows_per_sec": ...}}``);
* ``--suite seeker``: ``bench_seeker`` -> ``BENCH_seeker.json`` (schema
  ``{phase: {"seconds": ..., "queries_per_sec": ...}}``), asserting the
  scalar MC oracle agrees with the batched pipeline before timing;
* ``--suite all``: both.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--suite S] [--seed N]
        [--scale S] [--output PATH] [--repeat R]

``--repeat`` keeps the fastest-of-R result per phase, damping scheduler
noise. ``--output`` overrides the artefact path for single-suite runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_index_build  # noqa: E402
import bench_seeker  # noqa: E402

DEFAULT_SEED = bench_index_build.DEFAULT_SEED

_REPO_ROOT = Path(__file__).resolve().parent.parent
SUITES = {
    "index": (bench_index_build, _REPO_ROOT / "BENCH_index.json"),
    "seeker": (bench_seeker, _REPO_ROOT / "BENCH_seeker.json"),
}


def _run_suite(module, output: Path, args) -> None:
    best: dict[str, dict[str, float]] = {}
    for _ in range(max(1, args.repeat)):
        results = module.run_benchmark(seed=args.seed, scale=args.scale)
        for phase, numbers in results.items():
            if phase not in best or numbers["seconds"] < best[phase]["seconds"]:
                best[phase] = numbers

    output.write_text(json.dumps(best, indent=2) + "\n", encoding="utf-8")
    print(module.format_report(best))
    print(f"[written to {output}]")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=(*SUITES, "all"), default="index")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--scale", type=float, default=1.0, help="lake size multiplier")
    parser.add_argument("--repeat", type=int, default=1, help="keep fastest of N runs")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="artefact path override (single-suite runs only)",
    )
    args = parser.parse_args(argv)

    selected = list(SUITES) if args.suite == "all" else [args.suite]
    if args.output is not None and len(selected) > 1:
        parser.error("--output requires a single --suite")
    for name in selected:
        module, default_output = SUITES[name]
        _run_suite(module, args.output or default_output, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
