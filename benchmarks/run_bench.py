#!/usr/bin/env python
"""Entry point for the perf-trajectory micro-benchmarks.

Two suites, each emitting one committed JSON artefact at the repo root:

* ``--suite index`` (default): ``bench_index_build`` ->
  ``BENCH_index.json`` (schema ``{phase: {"seconds": ...,
  "rows_per_sec": ...}}``);
* ``--suite seeker``: ``bench_seeker`` -> ``BENCH_seeker.json`` (schema
  ``{phase: {"seconds": ..., "queries_per_sec": ...}}``), asserting the
  scalar MC oracle agrees with the batched pipeline before timing;
* ``--suite maintenance``: ``bench_maintenance`` (remove+reindex
  throughput under the table lifecycle) -- its rows merge into
  ``BENCH_index.json`` alongside the build phases;
* ``--suite snapshot``: ``bench_snapshot`` (save / mmap warm-start load
  vs the cold build) -- rows merge into ``BENCH_index.json`` too;
* ``--suite delta``: ``bench_delta`` (streaming ingest: mutation latency
  on a frozen base, incremental vs full save, base ∪ delta query
  overhead vs compacted; parity oracle-checked in-run) -- rows merge
  into ``BENCH_index.json``;
* ``--suite serving``: ``bench_serving`` -> ``BENCH_serving.json``
  (batched admission vs per-request serialization on one worker pool,
  plus hot-swap under sustained load; answers parity-checked in-run);
* ``--suite sharded``: ``bench_sharded`` (scatter-gather over K shard
  workers vs one process, all five modalities, answers checked against
  the single-process oracle in-run) -- rows merge into
  ``BENCH_serving.json``;
* ``--suite all``: all of them.

Artefacts are merged per phase: a suite run updates its own rows in the
output JSON and leaves rows owned by sibling suites untouched.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--suite S] [--seed N]
        [--scale S] [--output PATH] [--repeat R] [--workers N]
        [--check-only]

``--repeat`` keeps the fastest-of-R result per phase, damping scheduler
noise. ``--output`` overrides the artefact path for single-suite runs.
``--workers`` sets the sharded-build axis of the index suite
(``build_parallel_wN``; 0 disables it). ``--check-only`` runs each
suite's oracle-parity assertions on a reduced-scale lake and writes no
artefact -- no timing thresholds, so the exit code is hardware
independent (the CI smoke job runs exactly this).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_delta  # noqa: E402
import bench_hybrid  # noqa: E402
import bench_index_build  # noqa: E402
import bench_maintenance  # noqa: E402
import bench_seeker  # noqa: E402
import bench_serving  # noqa: E402
import bench_sharded  # noqa: E402
import bench_snapshot  # noqa: E402

DEFAULT_SEED = bench_index_build.DEFAULT_SEED

_REPO_ROOT = Path(__file__).resolve().parent.parent
SUITES = {
    "index": (bench_index_build, _REPO_ROOT / "BENCH_index.json"),
    "seeker": (bench_seeker, _REPO_ROOT / "BENCH_seeker.json"),
    "hybrid": (bench_hybrid, _REPO_ROOT / "BENCH_seeker.json"),
    "maintenance": (bench_maintenance, _REPO_ROOT / "BENCH_index.json"),
    "snapshot": (bench_snapshot, _REPO_ROOT / "BENCH_index.json"),
    "delta": (bench_delta, _REPO_ROOT / "BENCH_index.json"),
    "serving": (bench_serving, _REPO_ROOT / "BENCH_serving.json"),
    "sharded": (bench_sharded, _REPO_ROOT / "BENCH_serving.json"),
}


def _suite_kwargs(fn, args, **overrides) -> dict:
    """Keyword arguments for a suite entry point (only the index suite
    has a workers axis; forwarding is signature-driven so suites stay
    decoupled)."""
    kwargs = {"seed": args.seed, "scale": args.scale, **overrides}
    if "workers" in inspect.signature(fn).parameters:
        kwargs["workers"] = args.workers
    return kwargs


def _run_suite(module, output: Path, args) -> None:
    best: dict[str, dict[str, float]] = {}
    for _ in range(max(1, args.repeat)):
        results = module.run_benchmark(**_suite_kwargs(module.run_benchmark, args))
        for phase, numbers in results.items():
            if phase not in best or numbers["seconds"] < best[phase]["seconds"]:
                best[phase] = numbers

    # Merge per phase: suites sharing one artefact (index + maintenance
    # both land in BENCH_index.json) update their own rows and keep the
    # sibling suite's rows intact.
    merged = best
    if output.exists():
        try:
            merged = json.loads(output.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            merged = {}
        merged.update(best)
    output.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    print(module.format_report(best))
    print(f"[written to {output}]")


def _run_checks(selected: list[str], args) -> int:
    """``--check-only``: reduced-scale oracle-parity assertions, no
    artefacts, no timing. Prints one OK line per suite; an
    AssertionError in any suite fails the run."""
    check_scale = min(args.scale, 0.25)
    for name in selected:
        module, _ = SUITES[name]
        kwargs = _suite_kwargs(module.run_check, args, scale=check_scale)
        summary = module.run_check(**kwargs)
        print(f"[{name}] {summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=(*SUITES, "all"), default="index")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--scale", type=float, default=1.0, help="lake size multiplier")
    parser.add_argument("--repeat", type=int, default=1, help="keep fastest of N runs")
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="sharded-build axis of the index suite (0 disables)",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="run oracle-parity assertions at reduced scale; no timing, no artefacts",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="artefact path override (single-suite runs only)",
    )
    args = parser.parse_args(argv)

    selected = list(SUITES) if args.suite == "all" else [args.suite]
    if args.check_only:
        return _run_checks(selected, args)
    if args.output is not None and len(selected) > 1:
        parser.error("--output requires a single --suite")
    for name in selected:
        module, default_output = SUITES[name]
        _run_suite(module, args.output or default_output, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
