#!/usr/bin/env python
"""Entry point for the indexing micro-benchmark: runs
``bench_index_build`` with a fixed seed and emits ``BENCH_index.json``
(schema ``{phase: {"seconds": ..., "rows_per_sec": ...}}``) so future PRs
can diff the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--seed N] [--scale S]
        [--output PATH] [--repeat R]

``--repeat`` keeps the fastest-of-R result per phase, damping scheduler
noise. The default output path is ``BENCH_index.json`` at the repo root
(the committed artefact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_index_build import DEFAULT_SEED, format_report, run_benchmark  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--scale", type=float, default=1.0, help="lake size multiplier")
    parser.add_argument("--repeat", type=int, default=1, help="keep fastest of N runs")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_index.json",
    )
    args = parser.parse_args(argv)

    best: dict[str, dict[str, float]] = {}
    for _ in range(max(1, args.repeat)):
        results = run_benchmark(seed=args.seed, scale=args.scale)
        for phase, numbers in results.items():
            if phase not in best or numbers["seconds"] < best[phase]["seconds"]:
                best[phase] = numbers

    args.output.write_text(json.dumps(best, indent=2) + "\n", encoding="utf-8")
    print(format_report(best))
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
