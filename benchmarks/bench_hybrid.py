"""Micro-benchmark: hybrid semantic+exact fusion seeker throughput.

The lake mixes overlap structure (a shared city/country pool, as in
``bench_seeker``) with morphological families (``customer_<n>``-style
tokens) so both fusion lanes have real signal: the exact lane ranks by
hash-overlap evidence, the semantic lane by embedding similarity over
``AllVectors``.

Phases measured::

==================  ========================================================
hybrid_rrf          HY solo execution, alpha-weighted reciprocal-rank
                    fusion (deterministic exact=True semantic lane)
hybrid_learned      same queries with cost-model-calibrated lane weights
semantic_exact      pure SS lane, brute-force oracle mode
semantic_hnsw       pure SS lane, HNSW beam search
==================  ========================================================

Before timing, the harness asserts the in-run exact-lane oracle
guarantees behind the committed numbers: ``alpha=0`` degenerates to the
pure exact lane's ranking, ``alpha=1`` to the pure semantic lane's, and
the two-shard scatter-gather merge of fused partials is identical to
solo execution. Results serialise as
``{phase: {"seconds": ..., "queries_per_sec": ...}}`` into
``BENCH_seeker.json`` via ``benchmarks/run_bench.py --suite hybrid``.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from repro.core.hybrid import HybridSeeker
from repro.core.semantic import SemanticSeeker
from repro.core.system import Blend
from repro.lake.datalake import DataLake
from repro.lake.table import Table
from repro.serving import ShardCoordinator
from repro.snapshot import save_sharded

DEFAULT_SEED = 71
QUERY_ROUNDS = 8


def _phase(seconds: float, queries: int) -> dict[str, float]:
    return {
        "seconds": round(seconds, 6),
        "queries_per_sec": round(queries / seconds, 1) if seconds > 0 else float("inf"),
    }


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _bench_lake(seed: int, scale: float = 1.0) -> DataLake:
    """Overlap pool + morphological families: evidence for both lanes."""
    rng = random.Random(seed)
    pool_size = max(10, int(240 * scale))
    countries = [f"country{i}" for i in range(max(3, pool_size // 6))]
    pool = [(f"city{i}", countries[i % len(countries)]) for i in range(pool_size)]
    families = ["customer", "invoice", "shipment", "account"]
    num_tables = max(3, int(30 * scale))
    lake = DataLake("bench_hybrid")
    for table_id in range(num_tables):
        family = families[table_id % len(families)]
        rows = []
        for _ in range(rng.randint(max(4, int(40 * scale)), max(8, int(120 * scale)))):
            city, country = pool[rng.randrange(pool_size)]
            rows.append(
                (
                    city,
                    country,
                    f"{family}_{rng.randrange(400)}",
                    rng.randrange(1000),
                )
            )
        lake.add(Table(f"t{table_id:03d}", ["city", "country", "entity", "count"], rows))
    lake._bench_pool = pool  # type: ignore[attr-defined]  # query source
    return lake


def _hybrid_queries(lake: DataLake, seed: int, k: int = 10) -> list[HybridSeeker]:
    rng = random.Random(seed + 1)
    pool = lake._bench_pool  # type: ignore[attr-defined]
    queries = []
    for offset in range(3):
        values = [pool[rng.randrange(len(pool))][0] for _ in range(16)]
        about = [f"customer_{rng.randrange(400)}" for _ in range(4)]
        queries.append(
            HybridSeeker(values, about=about, k=k, alpha=0.3 + 0.2 * offset)
        )
    return queries


def _assert_fusion_oracles(blend: Blend, seed: int) -> int:
    """The in-run acceptance bar: alpha degeneracy against the exact-lane
    oracle, and sharded-merge parity with solo execution."""
    rng = random.Random(seed + 2)
    pool = blend.lake._bench_pool  # type: ignore[attr-defined]
    values = [pool[rng.randrange(len(pool))][0] for _ in range(12)]
    about = [f"customer_{rng.randrange(400)}" for _ in range(3)]
    context = blend.context()

    pure_exact = HybridSeeker(values, about=about, k=8, alpha=0.0)
    oracle = pure_exact.exact_seeker.execute(context)
    fused = pure_exact.execute(context)
    if fused.table_ids() != oracle.table_ids()[:8]:
        raise AssertionError(
            f"alpha=0 fusion diverged from the exact lane: "
            f"{fused.table_ids()} vs {oracle.table_ids()[:8]}"
        )
    pure_semantic = HybridSeeker(values, about=about, k=8, alpha=1.0)
    oracle = SemanticSeeker(about, k=8, exact=True).execute(context)
    fused = pure_semantic.execute(context)
    if fused.table_ids() != oracle.table_ids():
        raise AssertionError(
            f"alpha=1 fusion diverged from the semantic lane: "
            f"{fused.table_ids()} vs {oracle.table_ids()}"
        )

    checked = 2
    queries = _hybrid_queries(blend.lake, seed, k=8)
    solo = [q.execute(context) for q in queries]
    root = Path(tempfile.mkdtemp(prefix="check_hybrid_"))
    try:
        save_sharded(blend, root / "s2", num_shards=2)
        with ShardCoordinator.load(root / "s2") as coordinator:
            for query, reference in zip(queries, solo):
                merged = coordinator.execute(query)
                if [(h.table_id, h.score) for h in merged] != [
                    (h.table_id, h.score) for h in reference
                ]:
                    raise AssertionError(
                        "2-shard fused merge diverged from solo execution"
                    )
                checked += 1
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return checked


def run_benchmark(seed: int = DEFAULT_SEED, scale: float = 1.0) -> dict[str, dict[str, float]]:
    """Time the fusion phases on a freshly built semantic-enabled lake;
    returns the ``BENCH_seeker.json`` payload (hybrid rows)."""
    blend = Blend(_bench_lake(seed, scale), backend="column")
    blend.build_index()
    blend.enable_semantic()
    blend.train_optimizer(samples_per_type=3, seed=seed)
    _assert_fusion_oracles(blend, seed)

    context = blend.context()
    queries = _hybrid_queries(blend.lake, seed)
    total = QUERY_ROUNDS * len(queries)
    results: dict[str, dict[str, float]] = {}

    seconds, _ = _timed(
        lambda: [q.execute(context) for _ in range(QUERY_ROUNDS) for q in queries]
    )
    results["hybrid_rrf"] = _phase(seconds, total)

    calibrated = [
        q.calibrate(blend.optimizer.cost_model, blend.stats) for q in queries
    ]
    seconds, _ = _timed(
        lambda: [q.execute(context) for _ in range(QUERY_ROUNDS) for q in calibrated]
    )
    results["hybrid_learned"] = _phase(seconds, total)

    topics = [q.semantic_seeker.values for q in queries]
    for phase, exact in (("semantic_exact", True), ("semantic_hnsw", False)):
        lane = [SemanticSeeker(topic, k=10, exact=exact) for topic in topics]
        seconds, _ = _timed(
            lambda lane=lane: [
                q.execute(context) for _ in range(QUERY_ROUNDS) for q in lane
            ]
        )
        results[phase] = _phase(seconds, total)

    return results


def run_check(seed: int = DEFAULT_SEED, scale: float = 0.25) -> str:
    """Hardware-independent fusion parity smoke
    (``run_bench.py --check-only``): alpha-degeneracy against each pure
    lane's oracle and 2-shard fused-merge parity with solo execution on
    a reduced-scale lake. No timing -- raises ``AssertionError`` on
    divergence."""
    blend = Blend(_bench_lake(seed, scale), backend="column")
    blend.build_index()
    blend.enable_semantic()
    checked = _assert_fusion_oracles(blend, seed)
    return (
        f"hybrid fusion oracle parity OK: {checked} checks, alpha "
        f"degeneracy and 2-shard fused merge agree with solo execution "
        f"(scale={scale})"
    )


def format_report(results: dict[str, dict[str, float]]) -> str:
    lines = [f"{'phase':<16} {'seconds':>10} {'queries/s':>12}"]
    for phase, numbers in results.items():
        lines.append(
            f"{phase:<16} {numbers['seconds']:>10.4f} {numbers['queries_per_sec']:>12,.1f}"
        )
    exact, hnsw = (
        results.get("semantic_exact", {}).get("seconds"),
        results.get("semantic_hnsw", {}).get("seconds"),
    )
    if exact and hnsw:
        lines.append(f"HNSW beam speedup over exact lane: {exact / hnsw:.1f}x")
    return "\n".join(lines)


PHASES = ("hybrid_rrf", "hybrid_learned", "semantic_exact", "semantic_hnsw")
