"""Shared infrastructure for the reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper.
Besides pytest-benchmark's timing output, each module writes its
paper-style report to ``benchmarks/results/<artefact>.txt`` via
:func:`write_report` (these files are what EXPERIMENTS.md quotes).

Benchmarks run with laptop-scale lakes (hundreds of tables) -- the goal
is reproducing each experiment's *shape* (who wins, by what factor, where
crossovers fall), not the paper's absolute server-scale numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_report(name: str, text: str) -> None:
    """Persist a paper-style report and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    sys.stdout.write(f"\n{text}\n[report written to {path}]\n")


@pytest.fixture(scope="session")
def report_writer():
    return write_report
