"""Micro-benchmark: offline AllTables build + bulk ingest + seeker query
hot path (the perf surfaces of the vectorised indexing PR).

Phases measured (all on a seeded Table-II-style generated lake):

==================  ========================================================
build_scalar        seed cell-at-a-time ``build_alltables`` (reference)
build_vectorized    columnar fast path (batch XASH + ``insert_columns``)
build_parallel_wN   sharded build, ``IndexConfig(workers=N)`` (the
                    ``--workers`` axis; adaptive scheduling, so on a
                    single-CPU host this measures the in-process sharded
                    kernel and the fan-out engages where cores exist)
normalize_scalar    per-cell ``normalize_cell`` loop over the lake's full
                    cell matrix (the old flush-path tokenisation)
normalize           the batched ``normalize_tokens`` kernel on the same
                    cells (byte-identical output, asserted in-run)
ingest_rows         storage-layer ``insert`` of prepared AllTables tuples
ingest_columns      storage-layer typed bulk ``insert_columns`` of the same
query_cold          four seeker templates, plan cache cleared per query
query_cached        same queries against a warm plan cache
==================  ========================================================

Results serialise as ``{phase: {"seconds": ..., "rows_per_sec": ...}}``
(for the query phases ``rows_per_sec`` counts *queries* per second), the
schema future PRs diff via ``BENCH_index.json``. Run through
``benchmarks/run_bench.py`` for the committed artefact, or import
:func:`run_benchmark` directly.

Importable without pytest; ``tests/benchmarks/test_bench_harness.py``
smoke-tests the harness under CI.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.core.seekers import SeekerContext, Seekers
from repro.engine import Database
from repro.index import IndexConfig, build_alltables
from repro.index.alltables import ALLTABLES_SCHEMA, _available_cpus
from repro.index.xash import xash
from repro.lake.generators import CorpusConfig, generate_corpus
from repro.lake.table import normalize_cell, normalize_tokens

DEFAULT_SEED = 71
QUERY_ROUNDS = 25


def _phase(seconds: float, rows: int) -> dict[str, float]:
    return {
        "seconds": round(seconds, 6),
        "rows_per_sec": round(rows / seconds, 1) if seconds > 0 else float("inf"),
    }


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _bench_lake(seed: int, scale: float = 1.0):
    """A Table-II-style lake (opendata_like shape, scaled up so per-cell
    costs dominate per-table overheads)."""
    config = CorpusConfig(
        name="bench_index",
        num_tables=max(2, int(200 * scale)),
        min_rows=max(2, int(100 * scale)),
        max_rows=max(4, int(400 * scale)),
        seed=seed,
    )
    lake = generate_corpus(config)
    for table in lake:  # warm type inference: both paths consume it
        table.numeric_columns()
    return lake


def run_benchmark(
    seed: int = DEFAULT_SEED, scale: float = 1.0, workers: int = 4
) -> dict[str, dict[str, float]]:
    """Time every phase on a freshly generated lake; returns the
    ``BENCH_index.json`` payload. *workers* adds one ``build_parallel_wN``
    phase for the sharded build (0 disables the phase)."""
    lake = _bench_lake(seed, scale)
    results: dict[str, dict[str, float]] = {}

    # -- offline build: scalar reference vs columnar fast path ----------------
    xash.cache_clear()  # a fresh process has a cold token cache
    db_scalar = Database(backend="column")
    seconds, report = _timed(
        lambda: build_alltables(lake, db_scalar, IndexConfig(vectorized=False))
    )
    index_rows = report.num_index_rows
    results["build_scalar"] = _phase(seconds, index_rows)

    db_vector = Database(backend="column")
    seconds, _ = _timed(
        lambda: build_alltables(lake, db_vector, IndexConfig(vectorized=True))
    )
    results["build_vectorized"] = _phase(seconds, index_rows)

    if workers:
        db_parallel = Database(backend="column")
        seconds, parallel_report = _timed(
            lambda: build_alltables(lake, db_parallel, IndexConfig(workers=workers))
        )
        if parallel_report.num_index_rows != index_rows:
            raise AssertionError(
                f"parallel build produced {parallel_report.num_index_rows} "
                f"index rows, serial produced {index_rows}"
            )
        results[f"build_parallel_w{workers}"] = _phase(seconds, index_rows)

    # -- flush-path tokenisation: scalar loop vs batched kernel ---------------
    cells = [value for table in lake for row in table.rows for value in row]
    seconds, scalar_tokens = _timed(lambda: [normalize_cell(v) for v in cells])
    results["normalize_scalar"] = _phase(seconds, len(cells))
    seconds, kernel_tokens = _timed(lambda: normalize_tokens(cells))
    if kernel_tokens != scalar_tokens:
        raise AssertionError(
            "normalize_tokens diverged from the scalar normalize_cell oracle"
        )
    results["normalize"] = _phase(seconds, len(cells))

    # -- storage-layer ingest: tuple inserts vs typed bulk append -------------
    rows = db_vector.execute("SELECT * FROM AllTables").rows
    chunks = _rows_to_chunks(rows)

    db_rows = Database(backend="column")
    db_rows.create_table("Ingest", ALLTABLES_SCHEMA)
    seconds, _ = _timed(
        lambda: (db_rows.insert("Ingest", rows), db_rows.storage_bytes("Ingest"))
    )
    results["ingest_rows"] = _phase(seconds, len(rows))

    db_cols = Database(backend="column")
    db_cols.create_table("Ingest", ALLTABLES_SCHEMA)
    seconds, _ = _timed(
        lambda: (db_cols.insert_columns("Ingest", chunks), db_cols.storage_bytes("Ingest"))
    )
    results["ingest_columns"] = _phase(seconds, len(rows))

    # -- online seeker hot path: cold vs cached plans --------------------------
    context = SeekerContext(db=db_vector, lake=lake)
    seekers = _query_mix(lake)

    def run_queries() -> None:
        for seeker in seekers:
            seeker.execute(context)

    run_queries()  # warm storage-side caches so both variants compare plans only
    total_queries = QUERY_ROUNDS * len(seekers)

    def cold() -> None:
        for _ in range(QUERY_ROUNDS):
            db_vector._plan_cache.clear()
            run_queries()

    seconds, _ = _timed(cold)
    results["query_cold"] = _phase(seconds, total_queries)

    def cached() -> None:
        for _ in range(QUERY_ROUNDS):
            run_queries()

    seconds, _ = _timed(cached)
    results["query_cached"] = _phase(seconds, total_queries)

    return results


def _rows_to_chunks(rows: list[tuple]) -> list[tuple]:
    """AllTables tuples as typed (data, null) column chunks."""
    values = np.empty(len(rows), dtype=object)
    values[:] = [row[0] for row in rows]
    table_ids = np.fromiter((row[1] for row in rows), dtype=np.int64, count=len(rows))
    column_ids = np.fromiter((row[2] for row in rows), dtype=np.int64, count=len(rows))
    row_ids = np.fromiter((row[3] for row in rows), dtype=np.int64, count=len(rows))
    super_keys = np.fromiter((row[4] for row in rows), dtype=np.int64, count=len(rows))
    quadrant = np.fromiter(
        (-1 if row[5] is None else int(row[5]) for row in rows),
        dtype=np.int8,
        count=len(rows),
    )
    return [
        (values, None),
        (table_ids, None),
        (column_ids, None),
        (row_ids, None),
        (super_keys, None),
        (quadrant, None),
    ]


def _query_mix(lake) -> list:
    """One instance of each seeker template over lake-derived queries."""
    table = lake.by_id(0)
    text_values = [v for v in table.column_values(table.columns[0]) if v is not None]
    seekers = [
        Seekers.SC(text_values[:12], k=10),
        Seekers.KW(text_values[:12], k=10),
    ]
    if table.num_columns >= 2:
        wide = [r[:2] for r in table.rows if all(v is not None for v in r[:2])]
        if len(wide) >= 2:
            seekers.append(Seekers.MC(wide[:8], k=10))
    flags = table.numeric_columns()
    if any(flags) and not all(flags):
        keys = table.column_values(table.columns[flags.index(False)])
        nums = table.column_values(table.columns[flags.index(True)])
        seekers.append(Seekers.Correlation(keys, nums, k=10, min_support=2))
    return seekers


def format_report(results: dict[str, dict[str, float]]) -> str:
    lines = [f"{'phase':<18} {'seconds':>10} {'rows/s':>14}"]
    for phase, numbers in results.items():
        lines.append(
            f"{phase:<18} {numbers['seconds']:>10.4f} {numbers['rows_per_sec']:>14,.0f}"
        )
    build = results.get("build_scalar", {}).get("seconds")
    fast = results.get("build_vectorized", {}).get("seconds")
    if build and fast:
        lines.append(f"build speedup: {build / fast:.1f}x")
    parallel = [
        (phase, numbers["seconds"])
        for phase, numbers in results.items()
        if phase.startswith("build_parallel_w")
    ]
    for phase, seconds in parallel:
        if fast and seconds:
            lines.append(
                f"parallel build speedup ({phase[len('build_parallel_'):]}, "
                f"{_available_cpus()} cpu available): {fast / seconds:.2f}x vs vectorized serial"
            )
    norm_scalar, norm_kernel = (
        results.get("normalize_scalar", {}).get("seconds"),
        results.get("normalize", {}).get("seconds"),
    )
    if norm_scalar and norm_kernel:
        lines.append(f"normalize speedup: {norm_scalar / norm_kernel:.1f}x")
    ingest, bulk = (
        results.get("ingest_rows", {}).get("seconds"),
        results.get("ingest_columns", {}).get("seconds"),
    )
    if ingest and bulk:
        lines.append(f"ingest speedup: {ingest / bulk:.1f}x")
    cold, cached = (
        results.get("query_cold", {}).get("seconds"),
        results.get("query_cached", {}).get("seconds"),
    )
    if cold and cached:
        lines.append(f"plan-cache query speedup: {cold / cached:.2f}x")
    return "\n".join(lines)


def run_check(seed: int = DEFAULT_SEED, scale: float = 0.25, workers: int = 4) -> str:
    """Hardware-independent parity smoke (``run_bench.py --check-only``):
    assert the scalar oracle, the vectorised serial build, and the
    sharded parallel build (both adaptive and pinned-pool scheduling)
    produce byte-identical ``AllTables`` relations on a reduced-scale
    lake, and that the batched ``normalize_tokens`` kernel matches the
    per-cell ``normalize_cell`` oracle cell-for-cell over the same lake.
    No timing thresholds -- raises ``AssertionError`` on any divergence,
    returns a summary line otherwise.
    """
    lake = _bench_lake(seed, scale)
    cells = [value for table in lake for row in table.rows for value in row]
    if normalize_tokens(cells) != [normalize_cell(v) for v in cells]:
        raise AssertionError(
            "token parity violated: normalize_tokens diverged from the "
            "scalar normalize_cell oracle"
        )
    configs = {
        "scalar": IndexConfig(vectorized=False),
        "vectorized": IndexConfig(vectorized=True),
    }
    if workers:  # 0 disables the parallel pipelines, mirroring run_benchmark
        configs[f"parallel_w{workers}"] = IndexConfig(workers=workers)
        configs[f"parallel_w{workers}_pinned"] = IndexConfig(
            workers=workers, pin_workers=True
        )
    rows = {}
    for name, config in configs.items():
        db = Database(backend="column")
        build_alltables(lake, db, config)
        rows[name] = db.execute("SELECT * FROM AllTables").rows
    reference = rows.pop("scalar")
    for name, produced in rows.items():
        if produced != reference:
            raise AssertionError(
                f"build parity violated: {name} produced {len(produced)} rows "
                f"diverging from the scalar oracle ({len(reference)} rows)"
            )
    return (
        f"index build parity OK: {len(configs)} pipelines x "
        f"{len(reference)} identical AllTables rows (scale={scale}); "
        f"normalize kernel matches the scalar oracle on {len(cells)} cells"
    )


PHASES = (
    "build_scalar",
    "build_vectorized",
    "build_parallel_w4",
    "normalize_scalar",
    "normalize",
    "ingest_rows",
    "ingest_columns",
    "query_cold",
    "query_cached",
)
