#!/usr/bin/env python
"""Cross-version snapshot compatibility driver (the CI matrix job).

A snapshot written by one Python version must load -- and serve
identical results -- on another: CI builds + saves on py3.10, uploads
the directory as a workflow artifact, downloads it on py3.12 and
verifies (and the reverse). The lake is regenerated deterministically
from the seed on BOTH sides, so verification compares the loaded
deployment against a fresh in-memory build of the *same* corpus on the
*loading* interpreter: any drift in the on-disk format, pickle payloads,
numpy serialisation, or hashing across versions surfaces as a hard
failure here.

Usage::

    PYTHONPATH=src python benchmarks/snapshot_compat.py --save DIR
    PYTHONPATH=src python benchmarks/snapshot_compat.py --load DIR

Both commands cover both storage backends (``DIR/column``, ``DIR/row``).
The saved directories are **base+delta**: the saver loads its own base
back, applies a deterministic mutation batch, and persists it with an
incremental ``save_delta`` -- so the artifact round-trips the streaming
ingest layer (``delta.json`` + payloads) across interpreters, not just
the base manifest. ``--load`` additionally exercises the post-load
lifecycle (mutate, then rebuild parity), bare-base recovery
(``delta=False``), and the failure paths (a truncated payload -- base or
delta -- must raise ``SnapshotError``). Exit code 0 = verified.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_snapshot import (  # noqa: E402
    assert_lifecycle_rebuild_parity,
    seeker_results,
)
from repro import Blend, Table  # noqa: E402
from repro.errors import SnapshotError  # noqa: E402
from repro.index import IndexConfig  # noqa: E402
from repro.lake.generators import CorpusConfig, generate_corpus  # noqa: E402

DEFAULT_SEED = 71
DEFAULT_SCALE = 0.25
BACKENDS = ("column", "row")
# The artifact ships the vector extension: AllVectors payloads and the
# manifest's semantic parameters must survive the interpreter hop too.
INDEX_CONFIG = IndexConfig(semantic=True, semantic_dimensions=16)
SEMANTIC_PROBE = ["compat", "probe", "token"]


def _semantic_results(blend: Blend) -> list[int]:
    """Deterministic exact-lane semantic ranking (graph-independent:
    depends only on the stored vectors, not HNSW insertion order)."""
    return blend.discover(
        SEMANTIC_PROBE, modalities=("semantic",), k=8, exact=True
    ).table_ids()


def _lake(seed: int, scale: float):
    config = CorpusConfig(
        name="compat",
        num_tables=max(2, int(200 * scale)),
        min_rows=max(2, int(100 * scale)),
        max_rows=max(4, int(400 * scale)),
        seed=seed,
    )
    lake = generate_corpus(config)
    for table in lake:
        table.numeric_columns()
    return lake


def _mutate_for_delta(blend: Blend) -> None:
    """The deterministic mutation batch both sides apply: the saver
    persists it as the artifact's delta layer, the loader replays it
    through the in-memory reference."""
    blend.add_table(
        Table(
            "compat_delta",
            ["key", "val"],
            [(f"dk{i}", f"dv{i % 3}") for i in range(9)],
        )
    )
    live = blend.lake.table_ids()
    blend.remove_table(live[0])
    blend.replace_table(
        live[1],
        Table("compat_swap", ["key", "val"], [(f"rk{i}", f"rv{i}") for i in range(5)]),
    )


def save(root: Path, seed: int, scale: float) -> int:
    root.mkdir(parents=True, exist_ok=True)
    for backend in BACKENDS:
        blend = Blend(_lake(seed, scale), backend=backend, index_config=INDEX_CONFIG)
        blend.build_index()
        blend.train_optimizer(samples_per_type=3, seed=seed)
        path = blend.save(root / backend)
        # Ship a delta layer on top of the base: load the base back,
        # mutate, persist incrementally.
        loaded = Blend.load(path)
        _mutate_for_delta(loaded)
        loaded.save_delta()
        print(f"[save] {backend}: {path} +delta ({sys.version_info.major}."
              f"{sys.version_info.minor}, {platform.machine()})")
    (root / "meta.json").write_text(
        json.dumps(
            {
                "seed": seed,
                "scale": scale,
                "python": platform.python_version(),
            }
        )
    )
    return 0


def load(root: Path) -> int:
    meta = json.loads((root / "meta.json").read_text())
    seed, scale = meta["seed"], meta["scale"]
    print(
        f"[load] verifying snapshot saved on py{meta['python']} "
        f"under py{platform.python_version()}"
    )
    sql = "SELECT * FROM AllTables"
    for backend in BACKENDS:
        lake = _lake(seed, scale)
        base_reference = Blend(lake, backend=backend, index_config=INDEX_CONFIG)
        base_reference.build_index()
        base_results = seeker_results(base_reference)

        # Bare base first: delta=False must reproduce the pre-mutation
        # build without reading a byte of the delta layer.
        bare = Blend.load(root / backend, backend=backend, delta=False)
        if seeker_results(bare) != base_results:
            raise AssertionError(f"[{backend}] cross-version base results diverge")
        if _semantic_results(bare) != _semantic_results(base_reference):
            raise AssertionError(f"[{backend}] cross-version semantic base diverges")
        if bare.db.execute(sql).rows != base_reference.db.execute(sql).rows:
            raise AssertionError(f"[{backend}] cross-version base rows diverge")

        # Full load replays the artifact's delta layer; the reference
        # applies the same mutation batch through the in-memory lifecycle.
        reference = base_reference
        _mutate_for_delta(reference)
        loaded = Blend.load(root / backend, backend=backend)
        if seeker_results(loaded) != seeker_results(reference):
            raise AssertionError(f"[{backend}] cross-version seeker results diverge")
        if sorted(loaded.db.execute(sql).rows) != sorted(reference.db.execute(sql).rows):
            raise AssertionError(f"[{backend}] cross-version AllTables rows diverge")
        if loaded.stats != reference.stats:
            raise AssertionError(f"[{backend}] cross-version statistics diverge")
        # The delta replay maintained the vector extension too.
        if _semantic_results(loaded) != _semantic_results(reference):
            raise AssertionError(f"[{backend}] cross-version semantic results diverge")
        vec_sql = "SELECT * FROM AllVectors"
        if sorted(loaded.db.execute(vec_sql).rows) != sorted(
            reference.db.execute(vec_sql).rows
        ):
            raise AssertionError(f"[{backend}] cross-version AllVectors rows diverge")
        if not loaded.optimizer.cost_model.is_trained():
            raise AssertionError(f"[{backend}] trained cost model lost in transit")
        loaded.compact_index()
        reference.compact_index()
        if loaded.db.execute(sql).rows != reference.db.execute(sql).rows:
            raise AssertionError(f"[{backend}] compacted base+delta rows diverge")

        # The loaded deployment is first-class: mutate, then rebuild parity.
        assert_lifecycle_rebuild_parity(loaded, backend)
        print(f"[load] {backend}: OK ({len(reference.db.execute(sql).rows)} index rows)")

    # Corruption must fail loudly, on this interpreter too -- in the base
    # payloads and in the delta layer alike.
    manifest = json.loads((root / BACKENDS[0] / "manifest.json").read_text())
    victim = root / BACKENDS[0] / next(
        rel for rel in manifest["files"] if rel.endswith(".npy")
    )
    payload = victim.read_bytes()
    victim.write_bytes(payload[: len(payload) - 5])
    try:
        Blend.load(root / BACKENDS[0])
    except SnapshotError as exc:
        print(f"[load] truncation refused as expected: {str(exc)[:88]}")
    else:
        raise AssertionError("truncated snapshot loaded without error")
    finally:
        victim.write_bytes(payload)

    # ... including in the vector extension's own payloads.
    vectors_meta = next(
        meta for meta in manifest["tables"] if meta["name"] == "AllVectors"
    )
    rel = next(
        column_meta[key]
        for column_meta in vectors_meta["payload"]
        for key in ("data", "codes")
        if key in column_meta
    )
    victim = root / BACKENDS[0] / rel
    payload = victim.read_bytes()
    victim.write_bytes(payload[: len(payload) - 5])
    try:
        Blend.load(root / BACKENDS[0])
    except SnapshotError as exc:
        print(f"[load] AllVectors truncation refused as expected: {str(exc)[:70]}")
    else:
        raise AssertionError("truncated AllVectors payload loaded without error")
    finally:
        victim.write_bytes(payload)

    delta_manifest = json.loads((root / BACKENDS[0] / "delta.json").read_text())
    victim = root / BACKENDS[0] / next(iter(delta_manifest["files"]))
    payload = victim.read_bytes()
    victim.write_bytes(payload[: len(payload) - 5])
    try:
        Blend.load(root / BACKENDS[0])
    except SnapshotError as exc:
        print(f"[load] delta truncation refused as expected: {str(exc)[:80]}")
    else:
        raise AssertionError("truncated delta loaded without error")
    finally:
        victim.write_bytes(payload)
    Blend.load(root / BACKENDS[0], delta=False)  # base survives a dead delta
    print("[load] cross-version snapshot compatibility verified (base + delta)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--save", type=Path, metavar="DIR")
    group.add_argument("--load", type=Path, metavar="DIR")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args(argv)
    if args.save is not None:
        return save(args.save, args.seed, args.scale)
    return load(args.load)


if __name__ == "__main__":
    raise SystemExit(main())
