"""Table IX -- the user study: regenerate the statistics table from the
recorded (reconstructed) participant responses.

The study itself cannot be re-run offline; what IS reproducible is the
aggregation pipeline -- raw responses in, the published table out (see
repro.userstudy and DESIGN.md's substitution notes).
"""

from __future__ import annotations

from repro.userstudy import ALL_PARTICIPANTS, render_table_ix, summarize


def test_table09_report(benchmark, report_writer):
    text = benchmark(lambda: render_table_ix(ALL_PARTICIPANTS))
    report_writer("table09_user_study", text)

    # The published headline numbers must come out of the aggregation.
    for expected in (
        "27.5%",  # Q1 research average
        "100%",  # Q4 scripts (research) / Q7 unanimity
        "94%",  # Q5 Python overall
        "89%",  # Q9 BLEND for complex tasks
    ):
        assert expected in text


def test_summaries_structure(benchmark):
    summaries = benchmark(lambda: summarize(ALL_PARTICIPANTS))
    assert len(summaries) == 9
    assert all(summary.rows for summary in summaries)
