"""Micro-benchmark: the serving tier -- batched concurrent scheduling
vs one-query-per-pass serialization, and hot-swap under sustained load.

The lake reuses the MC-heavy shape of the seeker suite (shared
(city, country) pool sampled into every table, ~30 % re-paired), served
through :class:`repro.serving.BatchScheduler` over a
:class:`repro.serving.DeploymentManager`. Both timed phases run the SAME
worker pool (2 workers) and the SAME concurrent client threads; the only
difference is admission batching:

==================  ========================================================
serving_serial      ``max_batch=1``: every request is one full pass
                    through the kernels (the pre-serving baseline shape)
serving_batched     ``max_batch=64``, 2 ms admission window: concurrent
                    same-modality requests coalesce into single stacked
                    passes (one scan per SC/KW window, one phase-2/3
                    pass per MC window)
serving_swap        sustained mixed load while the deployment hot-swaps
                    between two lake generations every ~80 ms; zero
                    failed requests is an assertion, not a metric
==================  ========================================================

Every request's answer is checked in-run against the direct
``Seeker.execute`` oracle for its generation -- a wrong answer aborts the
phase, so the committed numbers are parity-guaranteed. Each phase also
records client-observed ``p50_ms`` / ``p99_ms`` next to the standard
``{"seconds", "queries_per_sec"}`` pair. Results serialise into
``BENCH_serving.json`` via ``benchmarks/run_bench.py --suite serving``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable

from repro.core.seekers import Seekers
from repro.core.system import Blend
from repro.lake.datalake import DataLake
from repro.lake.table import Table
from repro.serving import BatchScheduler, DeploymentManager

DEFAULT_SEED = 71
CLIENT_THREADS = 32
QUERY_COUNT = 512
SWAP_PERIOD = 0.08

SWAP_ROWS = [
    ("swapville", "country0", "tok1", 1.0, 1),
    ("swapburg", "country1", "tok2", 2.0, 2),
] * 8


def _phase(seconds: float, queries: int, latencies: list[float]) -> dict[str, float]:
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))] * 1e3

    return {
        "seconds": round(seconds, 6),
        "queries_per_sec": round(queries / seconds, 1) if seconds > 0 else float("inf"),
        "p50_ms": round(pct(0.50), 3),
        "p99_ms": round(pct(0.99), 3),
    }


def _bench_lake(seed: int, scale: float = 1.0) -> DataLake:
    """Same regime as the seeker suite: recurring pool pairs so batches
    share scan work, mis-pairings so MC validation stays non-trivial."""
    rng = random.Random(seed)
    pool_size = max(10, int(800 * scale))
    countries = [f"country{i}" for i in range(max(3, pool_size // 6))]
    pool = [(f"city{i}", countries[i % len(countries)]) for i in range(pool_size)]
    num_tables = max(2, int(120 * scale))
    lake = DataLake("bench_serving")
    for table_id in range(num_tables):
        num_rows = rng.randint(max(4, int(100 * scale)), max(8, int(300 * scale)))
        rows = []
        for _ in range(num_rows):
            city, country = pool[rng.randrange(pool_size)]
            if rng.random() < 0.3:
                country = countries[rng.randrange(len(countries))]
            rows.append(
                (
                    city,
                    country,
                    f"tok{rng.randrange(4000)}",
                    round(rng.random() * 100, 3),
                    rng.randrange(1000),
                )
            )
        lake.add(
            Table(
                f"t{table_id:03d}",
                ["city", "country", "noise", "metric", "count"],
                rows,
            )
        )
    lake._bench_pool = pool  # type: ignore[attr-defined]  # query source
    return lake


def _hot(rng: random.Random, n: int) -> int:
    """Zipf-ish draw: concurrent discovery traffic concentrates on hot
    values, which is what makes coalesced scans overlap -- disjoint scans
    would just be additive."""
    return int(n * rng.random() ** 2.5)


def _workload(lake: DataLake, seed: int, count: int) -> list:
    """A mixed stream shaped like a discovery serving load: mostly SC/KW
    column and keyword probes (the scan-dominated modalities batching
    coalesces into shared passes) over a hot-skewed value distribution,
    plus a steady minority of MC joins (the expensive modality batching
    must also carry without regressing). A fifth of the stream re-issues
    one of a handful of canned hot queries -- the dashboard/retry traffic
    every serving tier sees -- which the batched tier answers once per
    admission window via key coalescing while the serialized tier runs
    each copy in full."""
    rng = random.Random(seed + 3)
    pool = lake._bench_pool  # type: ignore[attr-defined]

    def fresh(i: int):
        roll = rng.random()
        if roll < 0.5:
            values = [pool[_hot(rng, len(pool))][0] for _ in range(14)]
            return Seekers.SC(values, k=10)
        if roll < 0.85:
            values = [pool[_hot(rng, len(pool))][c % 2] for c in range(14)]
            return Seekers.KW(values, k=10)
        tuples = [pool[_hot(rng, len(pool))] for _ in range(6)]
        tuples.append((f"ghost{i}", "nowhere"))
        return Seekers.MC(tuples, k=10)

    canned = [fresh(-1 - c) for c in range(6)]
    queries = []
    for i in range(count):
        if rng.random() < 0.2:
            queries.append(rng.choice(canned))
        else:
            queries.append(fresh(i))
    return queries


def _query_key(seeker) -> tuple:
    """Semantic identity for scheduler-level coalescing: same modality,
    same query payload, same k => same answer."""
    if seeker.kind == "MC":
        payload = tuple(tuple(t) for t in seeker.tuples)
    else:
        payload = tuple(seeker.tokens)
    return (seeker.kind, payload, seeker.k)


def _drive(
    scheduler: BatchScheduler,
    queries: list,
    expected_of: Callable[[int, Any], Any],
    threads: int = CLIENT_THREADS,
) -> tuple[float, list[float]]:
    """Fire the workload from concurrent client threads; every answer is
    compared in-run to the oracle for its generation. Returns wall time
    and the client-observed per-request latencies."""
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    latencies: list[list[float]] = [[] for _ in range(threads)]
    failures: list[str] = []

    def client(slot: int) -> None:
        while True:
            with cursor_lock:
                i = cursor["next"]
                if i >= len(queries):
                    return
                cursor["next"] = i + 1
            started = time.perf_counter()
            try:
                outcome = scheduler.execute(queries[i], key=_query_key(queries[i]))
            except Exception as exc:  # noqa: BLE001 -- the assertion target
                failures.append(f"q{i}: {type(exc).__name__}: {exc}")
                continue
            latencies[slot].append(time.perf_counter() - started)
            if outcome.result != expected_of(i, outcome.generation):
                failures.append(f"q{i}: diverged from oracle (gen={outcome.generation})")

    workers = [threading.Thread(target=client, args=(s,)) for s in range(threads)]
    start = time.perf_counter()
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    seconds = time.perf_counter() - start
    if failures:
        raise AssertionError(
            f"{len(failures)} serving failures, first: {failures[0]}"
        )
    return seconds, [lat for per_thread in latencies for lat in per_thread]


def run_benchmark(
    seed: int = DEFAULT_SEED, scale: float = 1.0
) -> dict[str, dict[str, float]]:
    lake = _bench_lake(seed, scale)
    blend = Blend(lake, backend="column")
    blend.build_index()
    queries = _workload(lake, seed, max(16, int(QUERY_COUNT * scale)))
    context = blend.context()
    oracle = [q.execute(context) for q in queries]

    results: dict[str, dict[str, float]] = {}

    def fixed_oracle(i: int, generation: int):
        return oracle[i]

    # serving_serial: same pool, same clients, no admission batching.
    manager = DeploymentManager(blend)
    with BatchScheduler(
        manager, workers=2, max_batch=1, batch_window=0.0
    ) as scheduler:
        seconds, latencies = _drive(scheduler, queries, fixed_oracle)
    results["serving_serial"] = _phase(seconds, len(queries), latencies)

    # serving_batched: only the admission policy changes.
    manager = DeploymentManager(blend)
    with BatchScheduler(
        manager, workers=2, max_batch=64, batch_window=0.002
    ) as scheduler:
        seconds, latencies = _drive(scheduler, queries, fixed_oracle)
    results["serving_batched"] = _phase(seconds, len(queries), latencies)

    # serving_swap: the batched configuration under generation churn.
    old_generation = blend.lake.generation
    new_blend = _next_generation(seed, scale)
    new_oracle = [q.execute(new_blend.context()) for q in queries]
    per_generation = {
        old_generation: oracle,
        new_blend.lake.generation: new_oracle,
    }

    def swap_oracle(i: int, generation: int):
        return per_generation[generation][i]

    manager = DeploymentManager(blend)
    stop = threading.Event()
    swaps = {"n": 0}

    def churn() -> None:
        flip = [new_blend, blend]
        while not stop.is_set():
            time.sleep(SWAP_PERIOD)
            manager.swap(flip[swaps["n"] % 2], drain_timeout=30.0)
            swaps["n"] += 1

    with BatchScheduler(
        manager, workers=2, max_batch=64, batch_window=0.002
    ) as scheduler:
        swapper = threading.Thread(target=churn)
        swapper.start()
        try:
            seconds, latencies = _drive(scheduler, queries, swap_oracle)
        finally:
            stop.set()
            swapper.join()
    if swaps["n"] == 0:
        raise AssertionError("swap phase finished before any hot-swap happened")
    results["serving_swap"] = _phase(seconds, len(queries), latencies)
    return results


def _next_generation(seed: int, scale: float) -> Blend:
    """The replacement deployment: same seeded lake plus one extra
    table, indexed fresh -- a strictly newer generation."""
    lake = _bench_lake(seed, scale)
    lake.add(
        Table("swap_extra", ["city", "country", "noise", "metric", "count"], list(SWAP_ROWS))
    )
    replacement = Blend(lake, backend="column")
    replacement.build_index()
    return replacement


def run_check(seed: int = DEFAULT_SEED, scale: float = 0.25) -> str:
    """Hardware-independent serving smoke (``run_bench.py --check-only``):
    on both storage backends, a concurrent batched run must match the
    direct-execute oracle answer for answer; then one hot-swap under load
    must complete with zero failed requests and post-swap answers equal
    to a fresh build of the new generation. No timing thresholds."""
    checked = 0
    for backend in ("column", "row"):
        lake = _bench_lake(seed, scale)
        blend = Blend(lake, backend=backend)
        blend.build_index()
        queries = _workload(lake, seed, 48)
        oracle = [q.execute(blend.context()) for q in queries]

        manager = DeploymentManager(blend)
        with BatchScheduler(
            manager, workers=2, max_batch=32, batch_window=0.002
        ) as scheduler:
            _drive(scheduler, queries, lambda i, gen: oracle[i], threads=8)
        checked += 1

    # One hot-swap under load (column backend): zero failures, post-swap
    # parity against the fresh new-generation build.
    lake = _bench_lake(seed, scale)
    blend = Blend(lake, backend="column")
    blend.build_index()
    queries = _workload(lake, seed, 48)
    replacement = _next_generation(seed, scale)
    per_generation = {
        blend.lake.generation: [q.execute(blend.context()) for q in queries],
        replacement.lake.generation: [
            q.execute(replacement.context()) for q in queries
        ],
    }
    manager = DeploymentManager(blend)
    with BatchScheduler(
        manager, workers=2, max_batch=32, batch_window=0.002
    ) as scheduler:
        swapped = {"report": None}

        def swap_midway() -> None:
            time.sleep(0.05)
            swapped["report"] = manager.swap(replacement, drain_timeout=30.0)

        swapper = threading.Thread(target=swap_midway)
        swapper.start()
        _drive(
            scheduler,
            queries * 2,
            lambda i, gen: per_generation[gen][i % len(queries)],
            threads=8,
        )
        swapper.join()
        if swapped["report"] is None or not swapped["report"].drained:
            raise AssertionError("hot-swap did not drain the old generation")
        for i, query in enumerate(queries[:6]):
            outcome = scheduler.execute(query)
            if outcome.generation != replacement.lake.generation:
                raise AssertionError("post-swap request served by old generation")
            if outcome.result != per_generation[outcome.generation][i]:
                raise AssertionError("post-swap answer diverges from fresh build")
    return (
        f"serving parity OK: {checked} backends batched == direct execute, "
        f"hot-swap under load zero failures, post-swap matches fresh build "
        f"(scale={scale})"
    )


def format_report(results: dict[str, dict[str, float]]) -> str:
    lines = [
        f"{'phase':<18} {'seconds':>10} {'queries/s':>12} {'p50 ms':>9} {'p99 ms':>9}"
    ]
    for phase, numbers in results.items():
        lines.append(
            f"{phase:<18} {numbers['seconds']:>10.4f}"
            f" {numbers['queries_per_sec']:>12,.1f}"
            f" {numbers.get('p50_ms', 0.0):>9.2f}"
            f" {numbers.get('p99_ms', 0.0):>9.2f}"
        )
    serial = results.get("serving_serial", {}).get("queries_per_sec")
    batched = results.get("serving_batched", {}).get("queries_per_sec")
    if serial and batched:
        lines.append(
            f"admission batching speedup (same worker pool): {batched / serial:.1f}x"
        )
    return "\n".join(lines)


PHASES = ("serving_serial", "serving_batched", "serving_swap")
