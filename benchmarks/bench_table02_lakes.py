"""Table II -- data lakes used in the experiments.

Generates the scaled-down synthetic counterparts of the paper's ten lakes
and reports their statistics (tables / columns / rows), plus benchmarks
corpus generation and AllTables indexing throughput on the largest one.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.eval import render_table
from repro.index import build_alltables
from repro.lake.generators import CorpusConfig, generate_corpus

# The reproduction's lake suite: name -> (paper counterpart, config).
LAKE_SUITE = {
    "gittables_like": ("Gittables", CorpusConfig(name="gittables_like", num_tables=300, min_rows=10, max_rows=120, seed=101)),
    "webtable_like": ("Lakebench Webtable Large", CorpusConfig(name="webtable_like", num_tables=400, min_rows=5, max_rows=40, seed=102)),
    "opendata_like": ("German Open Data", CorpusConfig(name="opendata_like", num_tables=60, min_rows=50, max_rows=400, seed=103)),
    "dwtc_like": ("DWTC", CorpusConfig(name="dwtc_like", num_tables=500, min_rows=5, max_rows=60, seed=104)),
    "tus_like": ("TUS", CorpusConfig(name="tus_like", num_tables=80, min_rows=20, max_rows=120, seed=105)),
    "santos_like": ("SANTOS", CorpusConfig(name="santos_like", num_tables=50, min_rows=30, max_rows=150, seed=106)),
}


@pytest.fixture(scope="module")
def lake_suite():
    return {key: generate_corpus(config) for key, (_, config) in LAKE_SUITE.items()}


def test_table02_report(lake_suite, report_writer, benchmark):
    """Regenerate Table II (lake statistics) for the synthetic suite."""

    def build_rows():
        rows = []
        for key, (counterpart, _) in LAKE_SUITE.items():
            stats = lake_suite[key].stats()
            rows.append(
                [key, counterpart, stats.num_tables, stats.num_columns, stats.num_rows]
            )
        return rows

    rows = benchmark(build_rows)
    report_writer(
        "table02_lakes",
        render_table(
            "TABLE II (reproduction): Data lakes used in the experiments",
            ["Lake", "Paper counterpart", "Tables", "Columns", "Rows"],
            rows,
            note="synthetic, seeded; scaled to laptop size (see DESIGN.md)",
        ),
    )
    assert len(rows) == len(LAKE_SUITE)


def test_corpus_generation_throughput(benchmark):
    """Benchmark: generating a mid-size lake."""
    config = CorpusConfig(name="bench_gen", num_tables=100, max_rows=60, seed=7)
    lake = benchmark(lambda: generate_corpus(config))
    assert len(lake) == 100


@pytest.mark.parametrize("backend", ["row", "column"])
def test_alltables_indexing_throughput(lake_suite, benchmark, backend):
    """Benchmark: the offline phase (AllTables build) per backend."""
    lake = lake_suite["santos_like"]

    def build():
        db = Database(backend=backend)
        return build_alltables(lake, db)

    report = benchmark(build)
    assert report.num_index_rows > 0
