"""Micro-benchmark: scatter-gather sharded serving vs one process.

The lake reuses the serving suite's MC-heavy shape, saved as K
per-shard snapshots (:func:`repro.snapshot.save_sharded`) and served by
a :class:`repro.serving.ShardCoordinator`. Every coordinator answer is
compared in-run against the direct single-process ``Seeker.execute``
oracle -- the mergeable-partials redesign makes the two byte-identical
by construction, so a mismatch aborts the phase and the committed
numbers are parity-guaranteed.

==================  ========================================================
sharded_solo        the oracle itself: the full query stream through
                    direct ``Seeker.execute`` on the unsharded blend
sharded_scatter2    coordinator over 2 in-process shard workers (each a
                    deployment manager + batching scheduler of its own)
sharded_scatter4    the same over 4 shards -- the fan-out axis
sharded_partition   one-off cost: partitioning + re-indexing the lake
                    into the 4 per-shard snapshots (tables/sec recorded
                    as ``queries_per_sec`` for schema uniformity)
==================  ========================================================

Rows land in ``BENCH_serving.json`` via ``run_bench.py --suite sharded``.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from pathlib import Path

from repro.core.semantic import SemanticSeeker
from repro.core.seekers import Seekers
from repro.core.system import Blend
from repro.lake.datalake import DataLake
from repro.serving import ShardCoordinator
from repro.snapshot import save_sharded

from bench_serving import _bench_lake, _phase

DEFAULT_SEED = 73
QUERY_COUNT = 256


def _workload(lake: DataLake, seed: int, count: int) -> list:
    """All five modalities, hot-skewed like real discovery traffic: the
    scan modalities dominate, with a steady minority of MC joins,
    correlation probes, and semantic look-ups."""
    rng = random.Random(seed + 5)
    pool = lake._bench_pool  # type: ignore[attr-defined]

    def hot() -> tuple:
        return pool[int(len(pool) * rng.random() ** 2.5)]

    queries = []
    for i in range(count):
        roll = rng.random()
        if roll < 0.40:
            queries.append(Seekers.SC([hot()[0] for _ in range(12)], k=10))
        elif roll < 0.70:
            queries.append(Seekers.KW([hot()[c % 2] for c in range(12)], k=10))
        elif roll < 0.85:
            tuples = [hot() for _ in range(5)] + [(f"ghost{i}", "nowhere")]
            queries.append(Seekers.MC(tuples, k=10))
        elif roll < 0.95:
            keys = [hot()[0] for _ in range(20)]
            targets = [str(j * 3 % 7) for j in range(20)]
            queries.append(Seekers.C(keys, targets, k=8, min_support=1))
        else:
            # exact=True: deterministic column search, so scatter-gather
            # parity holds at any lake scale (the HNSW beam is only
            # exhaustive on small indexes).
            queries.append(SemanticSeeker([hot()[0], hot()[1]], k=8, exact=True))
    return queries


def _sharded_blend(seed: int, scale: float) -> Blend:
    blend = Blend(_bench_lake(seed, scale), backend="column")
    blend.build_index()
    blend.enable_semantic()
    return blend


def _drive_coordinator(coordinator: ShardCoordinator, queries, oracle) -> tuple:
    latencies = []
    start = time.perf_counter()
    for i, query in enumerate(queries):
        began = time.perf_counter()
        result = coordinator.execute(query)
        latencies.append(time.perf_counter() - began)
        if result != oracle[i]:
            raise AssertionError(
                f"q{i} ({query.kind}) diverged from the single-process oracle "
                f"on {coordinator.num_shards} shards"
            )
    return time.perf_counter() - start, latencies


def run_benchmark(seed: int = DEFAULT_SEED, scale: float = 1.0) -> dict:
    blend = _sharded_blend(seed, scale)
    queries = _workload(blend.lake, seed, max(16, int(QUERY_COUNT * scale)))
    context = blend.context()

    results: dict[str, dict[str, float]] = {}

    latencies = []
    start = time.perf_counter()
    oracle = []
    for query in queries:
        began = time.perf_counter()
        oracle.append(query.execute(context))
        latencies.append(time.perf_counter() - began)
    seconds = time.perf_counter() - start
    results["sharded_solo"] = _phase(seconds, len(queries), latencies)

    root = Path(tempfile.mkdtemp(prefix="bench_sharded_"))
    try:
        num_tables = len(blend.lake.table_ids())
        partition_started = time.perf_counter()
        save_sharded(blend, root / "shards4", num_shards=4)
        partition_seconds = time.perf_counter() - partition_started
        results["sharded_partition"] = {
            "seconds": round(partition_seconds, 6),
            "queries_per_sec": round(num_tables / partition_seconds, 1),
        }
        save_sharded(blend, root / "shards2", num_shards=2)

        for phase, shards in (("sharded_scatter2", 2), ("sharded_scatter4", 4)):
            # batch_window=0: one serial client drives the coordinator,
            # so there is nothing to coalesce -- waiting out an admission
            # window per shard would just tax every query.
            with ShardCoordinator.load(
                root / f"shards{shards}", batch_window=0.0
            ) as coordinator:
                seconds, latencies = _drive_coordinator(coordinator, queries, oracle)
            results[phase] = _phase(seconds, len(queries), latencies)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return results


def run_check(seed: int = DEFAULT_SEED, scale: float = 0.25) -> str:
    """Hardware-independent scatter-gather parity smoke
    (``run_bench.py --check-only``): on both storage backends and K in
    {1, 3}, the coordinator's answer for every modality must equal the
    direct single-process oracle -- including across a lifecycle
    mutation routed through the coordinator, with the generation stamp
    rejecting the stale view. No timing thresholds."""
    from repro.errors import StaleContextError
    from repro.lake.table import Table

    checked = 0
    for backend in ("column", "row"):
        blend = Blend(_bench_lake(seed, scale), backend=backend)
        blend.build_index()
        blend.enable_semantic()
        queries = _workload(blend.lake, seed, 24)
        root = Path(tempfile.mkdtemp(prefix="check_sharded_"))
        try:
            for shards in (1, 3):
                save_sharded(blend, root / f"s{shards}", num_shards=shards)
                with ShardCoordinator.load(root / f"s{shards}") as coordinator:
                    oracle = [q.execute(blend.context()) for q in queries]
                    _drive_coordinator(coordinator, queries, oracle)
                    if shards == 3 and backend == "column":
                        stamped = coordinator.generation
                        extra = Table(
                            "check_extra",
                            ["city", "country", "noise", "metric", "count"],
                            [("checkville", "checkland", "tok0", 1.0, 1)] * 4,
                        )
                        if coordinator.add_table(extra) != blend.add_table(extra):
                            raise AssertionError("sharded table id diverged from solo")
                        try:
                            coordinator.execute(queries[0], generation=stamped)
                            raise AssertionError("stale generation accepted")
                        except StaleContextError:
                            pass
                        oracle = [q.execute(blend.context()) for q in queries]
                        _drive_coordinator(coordinator, queries, oracle)
                    checked += len(queries)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return (
        f"scatter-gather parity OK: {checked} coordinator answers == "
        f"single-process oracle across backends x shard counts, lifecycle "
        f"routing id-stable, stale generations rejected (scale={scale})"
    )


def format_report(results: dict) -> str:
    lines = [
        f"{'phase':<20} {'seconds':>10} {'queries/s':>12} {'p50 ms':>9} {'p99 ms':>9}"
    ]
    for phase, numbers in results.items():
        lines.append(
            f"{phase:<20} {numbers['seconds']:>10.4f}"
            f" {numbers['queries_per_sec']:>12,.1f}"
            f" {numbers.get('p50_ms', 0.0):>9.2f}"
            f" {numbers.get('p99_ms', 0.0):>9.2f}"
        )
    solo = results.get("sharded_solo", {}).get("queries_per_sec")
    scatter = results.get("sharded_scatter4", {}).get("queries_per_sec")
    if solo and scatter:
        lines.append(
            f"scatter-gather over 4 shards vs one process: {scatter / solo:.2f}x "
            f"(answers byte-identical by merge construction)"
        )
    return "\n".join(lines)


PHASES = (
    "sharded_solo",
    "sharded_scatter2",
    "sharded_scatter4",
    "sharded_partition",
)
