"""Table III -- complex discovery tasks: BLEND vs B-NO vs federated
baselines on runtime, LOC, number of systems, and number of indexes.

Tasks (paper §VIII-B): data discovery with negative examples, example-
based data imputation, multicollinearity-aware feature discovery, and
multi-objective discovery. Expected shape: BLEND faster than the
baseline on every task; B-NO between them except multi-objective (equal
to BLEND -- its sub-plans meet only at a Union combiner, which is never
rewritten); BLEND's task definitions an order of magnitude shorter.
"""

from __future__ import annotations

import statistics

import pytest

from repro import Blend
from repro.baselines import (
    JosieIndex,
    MateIndex,
    QcrIndex,
    StarmieIndex,
    feature_discovery_baseline,
    imputation_baseline,
    loc_of,
    multi_objective_baseline,
    negative_examples_baseline,
)
from repro.baselines.federation import TASK_PROFILES
from repro.core import tasks
from repro.eval import render_table, timed
from repro.lake.generators import (
    make_correlation_benchmark,
    make_imputation_benchmark,
)
from repro.lake.table import Table

K = 10


# ---------------------------------------------------------------------------
# Shared deployments (built once per module)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def impute_bench():
    # The decoy tables are the paper's regime: many large tables share the
    # example values, so example-driven baselines must validate them row
    # by row while BLEND's rewritten plans never touch them. Example keys
    # come from the shared city vocabulary (long posting lists), making
    # unrestricted example searches expensive -- GitTables-like skew.
    from repro.lake.generators.vocabulary import CITIES, COUNTRIES

    return make_imputation_benchmark(
        num_queries=4, num_keys=150, num_examples=12,
        complete_tables_per_query=3, partial_tables_per_query=2,
        distractor_tables=250, decoy_tables_per_query=12, decoy_rows=500,
        example_key_pool=CITIES + COUNTRIES, seed=31,
    )


@pytest.fixture(scope="module")
def corr_bench():
    return make_correlation_benchmark(
        num_queries=4, num_entities=150, tables_per_query=8,
        rows_per_table=200, distractor_tables=100, seed=37,
    )


@pytest.fixture(scope="module")
def impute_blend(impute_bench):
    blend = Blend(impute_bench.lake, backend="column")
    blend.build_index()
    return blend


@pytest.fixture(scope="module")
def corr_blend(corr_bench):
    blend = Blend(corr_bench.lake, backend="column")
    blend.build_index()
    return blend


@pytest.fixture(scope="module")
def impute_baseline_indexes(impute_bench):
    return MateIndex(impute_bench.lake), JosieIndex(impute_bench.lake)


@pytest.fixture(scope="module")
def corr_baseline_indexes(corr_bench):
    return (
        QcrIndex(corr_bench.lake, h=128),
        MateIndex(corr_bench.lake),
        JosieIndex(corr_bench.lake),
        StarmieIndex(corr_bench.lake),
    )


# ---------------------------------------------------------------------------
# Task inputs
# ---------------------------------------------------------------------------


def negative_task_inputs(impute_bench, query_index):
    """Positive examples from one imputation query; negatives from a
    different query's mapping (absent from the positives' tables). The
    paper uses ~1k negatives; scaled here to 60."""
    query = impute_bench.queries[query_index]
    other = impute_bench.queries[(query_index + 1) % len(impute_bench.queries)]
    positive = list(query.examples)
    negative = list(zip(other.query_keys[:60], other.answers[:60]))
    return positive, negative


def feature_task_inputs(corr_bench, query_index):
    from repro.lake.generators.vocabulary import CITIES, COUNTRIES

    query = corr_bench.queries[query_index]
    keys = list(query.keys)
    target = list(query.targets)
    # Existing features: near-copies of the target -> candidates
    # correlating with them are multicollinear and must be filtered.
    features = [[t * 1.0 for t in target], [t + 0.1 for t in target]]
    # Join columns use the shared vocabulary (long posting lists): the
    # joinability check is the expensive step, as on the paper's lakes.
    offset = 5 * query_index
    join_rows = [
        (city, country)
        for city, country in zip(
            (CITIES * 2)[offset : offset + 25], (COUNTRIES * 3)[offset : offset + 25]
        )
    ]
    return join_rows, keys, target, features


def multi_objective_inputs(corr_bench, query_index):
    query = corr_bench.queries[query_index]
    examples = Table(
        f"mo_query_{query_index}",
        ["key", "target"],
        list(zip(query.keys[:30], query.targets[:30])),
    )
    keywords = [query.keys[0], query.keys[1], query.keys[2]]
    return keywords, examples


# ---------------------------------------------------------------------------
# Runtime benchmarks (one per Table III runtime cell)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("system", ["blend", "b-no", "baseline"])
def test_negative_examples_runtime(benchmark, impute_bench, impute_blend, impute_baseline_indexes, system):
    mate, _ = impute_baseline_indexes
    positive, negative = negative_task_inputs(impute_bench, 0)
    if system == "baseline":
        benchmark(
            lambda: negative_examples_baseline(mate, impute_bench.lake, positive, negative, k=K)
        )
    else:
        plan = tasks.negative_examples_plan(positive, negative, k=K)
        benchmark(lambda: impute_blend.run(plan, optimize=(system == "blend")))


@pytest.mark.parametrize("system", ["blend", "b-no", "baseline"])
def test_imputation_runtime(benchmark, impute_bench, impute_blend, impute_baseline_indexes, system):
    mate, josie = impute_baseline_indexes
    query = impute_bench.queries[0]
    examples = list(query.examples)
    queries = list(query.query_keys)
    if system == "baseline":
        benchmark(lambda: imputation_baseline(mate, josie, examples, queries, k=K))
    else:
        plan = tasks.imputation_plan(examples, queries, k=K)
        benchmark(lambda: impute_blend.run(plan, optimize=(system == "blend")))


@pytest.mark.parametrize("system", ["blend", "b-no", "baseline"])
def test_feature_discovery_runtime(benchmark, corr_bench, corr_blend, corr_baseline_indexes, system):
    qcr, mate, _, _ = corr_baseline_indexes
    join_rows, keys, target, features = feature_task_inputs(corr_bench, 0)
    if system == "baseline":
        benchmark(
            lambda: feature_discovery_baseline(qcr, mate, join_rows, keys, target, features, k=K)
        )
    else:
        plan = tasks.feature_discovery_plan(join_rows, keys, target, features, k=K)
        benchmark(lambda: corr_blend.run(plan, optimize=(system == "blend")))


@pytest.mark.parametrize("system", ["blend", "b-no", "baseline"])
def test_multi_objective_runtime(benchmark, corr_bench, corr_blend, corr_baseline_indexes, system):
    qcr, _, josie, starmie = corr_baseline_indexes
    keywords, examples = multi_objective_inputs(corr_bench, 0)
    if system == "baseline":
        benchmark(
            lambda: multi_objective_baseline(
                josie, starmie, qcr, keywords, examples, "key", "target", k=K
            )
        )
    else:
        plan = tasks.multi_objective_plan_no_imputation(
            keywords, examples, "key", "target", k=K
        )
        benchmark(lambda: corr_blend.run(plan, optimize=(system == "blend")))


# ---------------------------------------------------------------------------
# The full Table III report (runtime means over queries + LOC + counts)
# ---------------------------------------------------------------------------


def test_table03_report(
    benchmark,
    report_writer,
    impute_bench,
    impute_blend,
    impute_baseline_indexes,
    corr_bench,
    corr_blend,
    corr_baseline_indexes,
):
    mate_i, josie_i = impute_baseline_indexes
    qcr, mate_c, josie_c, starmie = corr_baseline_indexes

    def run_cell(task, system):
        """One (task, system) runtime: warm-up run, then the mean of two
        timed runs over distinct benchmark queries."""
        samples = []
        for query_index in range(2):
            if task == "negative_examples":
                positive, negative = negative_task_inputs(impute_bench, query_index)
                if system == "baseline":
                    def runner():
                        return negative_examples_baseline(
                            mate_i, impute_bench.lake, positive, negative, k=K
                        )
                else:
                    plan = tasks.negative_examples_plan(positive, negative, k=K)
                    def runner(plan=plan):
                        return impute_blend.run(plan, optimize=(system == "blend"))
            elif task == "imputation":
                query = impute_bench.queries[query_index]
                examples, queries = list(query.examples), list(query.query_keys)
                if system == "baseline":
                    def runner():
                        return imputation_baseline(mate_i, josie_i, examples, queries, k=K)
                else:
                    plan = tasks.imputation_plan(examples, queries, k=K)
                    def runner(plan=plan):
                        return impute_blend.run(plan, optimize=(system == "blend"))
            elif task == "feature_discovery":
                join_rows, keys, target, features = feature_task_inputs(corr_bench, query_index)
                if system == "baseline":
                    def runner():
                        return feature_discovery_baseline(
                            qcr, mate_c, join_rows, keys, target, features, k=K
                        )
                else:
                    plan = tasks.feature_discovery_plan(join_rows, keys, target, features, k=K)
                    def runner(plan=plan):
                        return corr_blend.run(plan, optimize=(system == "blend"))
            else:  # multi_objective
                keywords, examples = multi_objective_inputs(corr_bench, query_index)
                if system == "baseline":
                    def runner():
                        return multi_objective_baseline(
                            josie_c, starmie, qcr, keywords, examples, "key", "target", k=K
                        )
                else:
                    plan = tasks.multi_objective_plan_no_imputation(
                        keywords, examples, "key", "target", k=K
                    )
                    def runner(plan=plan):
                        return corr_blend.run(plan, optimize=(system == "blend"))
            runner()  # warm-up: parse caches, XASH cache, sealed columns
            samples.extend(timed(runner)[1] for _ in range(3))
        return statistics.fmean(samples)

    task_list = ["negative_examples", "imputation", "feature_discovery", "multi_objective"]
    runtimes = benchmark.pedantic(
        lambda: {
            task: {system: run_cell(task, system) for system in ("blend", "b-no", "baseline")}
            for task in task_list
        },
        rounds=1,
        iterations=1,
    )

    blend_loc = {
        "negative_examples": loc_of(tasks.negative_examples_plan),
        "imputation": loc_of(tasks.imputation_plan),
        "feature_discovery": loc_of(tasks.feature_discovery_plan),
        "multi_objective": loc_of(tasks.multi_objective_plan_no_imputation),
    }
    baseline_loc = {
        "negative_examples": loc_of(negative_examples_baseline),
        "imputation": loc_of(imputation_baseline),
        "feature_discovery": loc_of(feature_discovery_baseline),
        "multi_objective": loc_of(multi_objective_baseline),
    }

    rows = []
    for task in task_list:
        profile = TASK_PROFILES[task]
        cells = runtimes[task]
        rows.append(
            [
                profile.name,
                f"{cells['blend'] * 1e3:.1f}",
                f"{cells['b-no'] * 1e3:.1f}",
                f"{cells['baseline'] * 1e3:.1f}",
                blend_loc[task],
                baseline_loc[task],
                f"{profile.blend_systems}/{profile.baseline_systems}",
                f"{profile.blend_indexes}/{profile.baseline_indexes}",
            ]
        )
    report_writer(
        "table03_complex_tasks",
        render_table(
            "TABLE III (reproduction): Complex discovery tasks",
            [
                "Task",
                "BLEND ms",
                "B-NO ms",
                "Baseline ms",
                "LOC BLEND",
                "LOC Baseline",
                "#Systems B/Base",
                "#Indexes B/Base",
            ],
            rows,
            note="runtime = mean over 2 queries; LOC measured from source",
        ),
    )

    # Shape assertions (paper's qualitative claims). Small tolerance on
    # runtime: single-process timings at millisecond scale are noisy.
    #
    # Feature discovery is asserted against B-NO instead of the baseline:
    # our in-memory Python QCR baseline has no cross-system data loading,
    # and the paper's own §VIII-G shows the QCR baseline beating BLEND on
    # raw correlation runtime -- Table III's baseline deficit there stems
    # from federation overhead a single process cannot recreate (see
    # EXPERIMENTS.md).
    for task in ("negative_examples", "imputation", "multi_objective"):
        assert runtimes[task]["blend"] <= runtimes[task]["baseline"] * 1.3, task
    assert (
        runtimes["feature_discovery"]["blend"]
        <= runtimes["feature_discovery"]["b-no"] * 1.2
    )
    for task in task_list:
        assert baseline_loc[task] > 2 * blend_loc[task], task
