"""Ablations of BLEND's design choices (beyond the paper's headline
experiments; DESIGN.md §3 calls these out).

1. **Query rewriting** -- how much work does intermediate-result
   injection remove from the MC seeker (index rows scanned, candidates)?
2. **XASH geometry** -- super-key filter false-positive rate as a
   function of hash width (63 vs 128 bits) and characters hashed per
   token (1-3). MATE's paper tunes these; here they are measured on the
   actual filter.
3. **Correlation sample size h** -- ranking quality and runtime as the
   ``RowId < h`` sample grows (the knob the paper's §V makes query-time
   adjustable, vs. rebuild-time in the original QCR index).
4. **Backend per seeker** -- row vs column store runtime for each seeker
   type on one lake (the per-operator view behind Figs. 5/7).
"""

from __future__ import annotations

import statistics

import pytest

from repro import Blend
from repro.core.seekers import (
    CorrelationSeeker,
    KeywordSeeker,
    MultiColumnSeeker,
    Rewrite,
    SingleColumnSeeker,
)
from repro.eval import precision_at_k, render_table, timed
from repro.index import IndexConfig, may_contain, super_key, tuple_hash
from repro.lake.generators import (
    make_correlation_benchmark,
    make_multicolumn_benchmark,
)
from repro.lake.generators.vocabulary import Vocabulary


# ---------------------------------------------------------------------------
# 1. Query rewriting work reduction
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def mc_setup():
    bench = make_multicolumn_benchmark(
        num_queries=4, distractor_tables=40, aligned_tables_per_query=3,
        misaligned_tables_per_query=4, seed=101,
    )
    blend = Blend(bench.lake, backend="column")
    blend.build_index()
    return bench, blend


def test_ablation_rewrite_work(benchmark, mc_setup, report_writer):
    bench, blend = mc_setup
    context = blend.context()

    def measure():
        rows = []
        for query in bench.queries:
            seeker = MultiColumnSeeker(query.table.rows, k=10)
            plain = seeker.fetch_candidates(context)
            full_result = seeker.execute(context)
            restrict = Rewrite(
                mode="intersect", table_ids=tuple(full_result.table_ids())
            )
            rewritten = seeker.fetch_candidates(context, restrict)
            rows.append((len(plain), len(rewritten)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = [
        [f"query {i}", plain, rewritten, f"{(1 - rewritten / max(plain, 1)) * 100:.0f}%"]
        for i, (plain, rewritten) in enumerate(rows)
    ]
    report_writer(
        "ablation_rewrite_work",
        render_table(
            "Ablation: MC candidates with vs without TableId IN rewriting",
            ["Query", "Unrewritten", "Rewritten", "Reduction"],
            table,
        ),
    )
    for plain, rewritten in rows:
        assert rewritten <= plain


# ---------------------------------------------------------------------------
# 2. XASH geometry
# ---------------------------------------------------------------------------


def test_ablation_xash_geometry(benchmark, report_writer):
    vocab = Vocabulary(5)
    pool = vocab.synthetic_pool(600)
    rng = vocab.rng
    rows = [
        tuple(rng.choice(pool) for _ in range(rng.randint(3, 10)))
        for _ in range(400)
    ]
    probes = [tuple(rng.sample(pool, 2)) for _ in range(300)]

    def measure():
        results = []
        for hash_size in (63, 128):
            for num_chars in (1, 2, 3):
                false_positives = 0
                trials = 0
                for row in rows:
                    row_key = super_key(row, hash_size, num_chars)
                    row_tokens = set(row)
                    for probe in probes[:40]:
                        if probe[0] in row_tokens and probe[1] in row_tokens:
                            continue  # would be a true positive
                        trials += 1
                        if may_contain(row_key, tuple_hash(probe, hash_size, num_chars)):
                            false_positives += 1
                results.append((hash_size, num_chars, false_positives / max(trials, 1)))
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    report_writer(
        "ablation_xash_geometry",
        render_table(
            "Ablation: XASH super-key filter false-positive rate",
            ["Hash bits", "Chars/token", "FP rate"],
            [[h, c, f"{fp * 100:.2f}%"] for h, c, fp in results],
            note="rows 3-10 tokens wide; probes are 2-token non-member tuples",
        ),
    )
    by_key = {(h, c): fp for h, c, fp in results}
    # Wider hashes and more hashed characters must not increase FPs.
    assert by_key[(128, 2)] <= by_key[(63, 2)] + 1e-9
    # At 63 bits, hashing more characters saturates rows and RAISES FPs
    # eventually -- assert only the 1->2 direction, which is clean.
    assert by_key[(63, 2)] <= by_key[(63, 1)] + 0.05


# ---------------------------------------------------------------------------
# 3. Correlation sample size h
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corr_setup():
    bench = make_correlation_benchmark(
        num_queries=4, num_entities=150, tables_per_query=5,
        rows_per_table=300, distractor_tables=10, seed=103,
    )
    blend = Blend(
        bench.lake, backend="column",
        index_config=IndexConfig(shuffle_rows=True, shuffle_seed=1),
    )
    blend.build_index()
    return bench, blend


def test_ablation_sample_size(benchmark, corr_setup, report_writer):
    bench, blend = corr_setup

    def sweep():
        rows = []
        for h in (16, 64, 256, 1024):
            precisions, times = [], []
            for query in bench.queries:
                truth = bench.ground_truth(query, 10)
                def run():
                    return blend.correlation_search(
                        list(query.keys), list(query.targets), k=10, h=h
                    ).table_ids()
                run()  # warm
                retrieved, seconds = timed(run)
                precisions.append(precision_at_k(retrieved, truth, 10))
                times.append(seconds)
            rows.append((h, statistics.fmean(precisions), statistics.fmean(times)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_writer(
        "ablation_sample_size",
        render_table(
            "Ablation: correlation seeker sample size h (shuffled index)",
            ["h", "P@10", "Runtime"],
            [[h, f"{p * 100:.0f}%", f"{t * 1e3:.2f} ms"] for h, p, t in rows],
            note="h is chosen at query time in BLEND; the original QCR "
            "index would re-index the lake for every h",
        ),
    )
    # Larger samples must not hurt precision.
    assert rows[-1][1] >= rows[0][1] - 1e-9


# ---------------------------------------------------------------------------
# 4. Backend per seeker type
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def backend_setup(corr_setup):
    bench, _ = corr_setup
    blends = {}
    for backend in ("row", "column"):
        blend = Blend(bench.lake, backend=backend)
        blend.build_index()
        blends[backend] = blend
    return bench, blends


def test_ablation_backend_per_seeker(benchmark, backend_setup, report_writer):
    bench, blends = backend_setup
    query = bench.queries[0]
    tokens = [str(k) for k in query.keys[:60]]
    pairs = [(k, t) for k, t in zip(query.keys[:8], query.targets[:8])]

    seekers = {
        "SC": SingleColumnSeeker(tokens, k=10),
        "KW": KeywordSeeker(tokens[:10], k=10),
        "MC": MultiColumnSeeker([(str(a), str(b)) for a, b in pairs], k=10),
        "C": CorrelationSeeker(list(query.keys), list(query.targets), k=10),
    }

    def sweep():
        rows = []
        for kind, seeker in seekers.items():
            timings = {}
            for backend, blend in blends.items():
                context = blend.context()
                seeker.execute(context)  # warm
                samples = [timed(lambda: seeker.execute(context))[1] for _ in range(3)]
                timings[backend] = statistics.fmean(samples)
            rows.append((kind, timings["row"], timings["column"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_writer(
        "ablation_backend_per_seeker",
        render_table(
            "Ablation: seeker runtime by storage backend",
            ["Seeker", "Row store", "Column store", "Column speed-up"],
            [
                [kind, f"{r * 1e3:.2f} ms", f"{c * 1e3:.2f} ms", f"{r / c:.1f}x"]
                for kind, r, c in rows
            ],
        ),
    )
    # The vectorised backend wins decisively on the join-heavy C seeker;
    # for the tiny SC query used here the two backends are within noise
    # (the at-scale SC claim is asserted by bench_fig05_join_runtime).
    by_kind = {kind: (r, c) for kind, r, c in rows}
    assert by_kind["C"][1] < by_kind["C"][0]
    assert by_kind["SC"][1] < by_kind["SC"][0] * 1.5
