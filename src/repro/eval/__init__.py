"""Evaluation utilities: retrieval metrics, timing harness, and
paper-style report rendering."""

from .harness import ExperimentLog, ExperimentRecord, Timing, measure, timed
from .metrics import (
    average_precision_at_k,
    f1_score,
    mean_average_precision,
    precision_at_k,
    recall_at_k,
)
from .reporting import format_percent, render_series_chart, render_table

__all__ = [
    "ExperimentLog",
    "ExperimentRecord",
    "Timing",
    "measure",
    "timed",
    "average_precision_at_k",
    "f1_score",
    "mean_average_precision",
    "precision_at_k",
    "recall_at_k",
    "format_percent",
    "render_series_chart",
    "render_table",
]
