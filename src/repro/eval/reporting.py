"""Text rendering for paper-style tables and ASCII figures.

The benchmark harness prints every reproduced table/figure in a layout
mirroring the paper so EXPERIMENTS.md can juxtapose paper-reported and
measured values directly.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: Optional[str] = None,
) -> str:
    """A boxed monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    separator = "-+-".join("-" * width for width in widths)
    lines = [title, "=" * max(len(title), len(separator))]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_series_chart(
    title: str,
    x_labels: Sequence[Any],
    series: dict[str, Sequence[float]],
    unit: str = "s",
    width: int = 40,
    log_note: bool = False,
) -> str:
    """An ASCII bar chart per x position -- the textual stand-in for the
    paper's line plots (Figs. 5-7). One bar row per (x, series) pair,
    scaled to the global maximum."""
    maximum = max(
        (value for values in series.values() for value in values if value == value),
        default=0.0,
    )
    lines = [title, "=" * len(title)]
    name_width = max(len(name) for name in series)
    label_width = max(len(str(x)) for x in x_labels)
    for index, x in enumerate(x_labels):
        for name, values in series.items():
            value = values[index]
            bar = "#" * (int(value / maximum * width) if maximum > 0 else 0)
            lines.append(
                f"{str(x).rjust(label_width)} {name.ljust(name_width)} "
                f"|{bar.ljust(width)}| {value:.4g}{unit}"
            )
        lines.append("")
    if log_note:
        lines.append("(paper plots these on a log axis; bars here are linear)")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:
            return "nan"
        if abs(value) >= 100 or value == int(value):
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_percent(value: float) -> str:
    """0.423 -> '42%' (paper-style rounding)."""
    return f"{round(value * 100):d}%"
