"""Experiment-harness utilities: timing, repetition, and result records.

The benchmark scripts under ``benchmarks/`` use these helpers to produce
paper-style rows; keeping them in the library makes the experiments
scriptable from user code too.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Timing:
    """Aggregated wall-clock measurements of one operation."""

    seconds_mean: float
    seconds_min: float
    seconds_max: float
    repetitions: int

    @property
    def milliseconds_mean(self) -> float:
        return self.seconds_mean * 1e3


def timed(function: Callable[[], T]) -> tuple[T, float]:
    """Run once; return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def measure(function: Callable[[], Any], repetitions: int = 3) -> Timing:
    """Run *repetitions* times and aggregate timings (result discarded)."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    samples = []
    for _ in range(repetitions):
        _, elapsed = timed(function)
        samples.append(elapsed)
    return Timing(
        seconds_mean=statistics.fmean(samples),
        seconds_min=min(samples),
        seconds_max=max(samples),
        repetitions=repetitions,
    )


@dataclass
class ExperimentRecord:
    """One measured cell of a result table: experiment id, condition
    labels, and the measured values."""

    experiment: str
    condition: dict[str, Any]
    values: dict[str, Any] = field(default_factory=dict)


class ExperimentLog:
    """Accumulates records and renders them grouped by experiment."""

    def __init__(self) -> None:
        self.records: list[ExperimentRecord] = []

    def record(self, experiment: str, condition: dict[str, Any], **values: Any) -> None:
        self.records.append(
            ExperimentRecord(experiment=experiment, condition=condition, values=values)
        )

    def for_experiment(self, experiment: str) -> list[ExperimentRecord]:
        return [r for r in self.records if r.experiment == experiment]
