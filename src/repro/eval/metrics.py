"""Retrieval-quality metrics used across the paper's experiments:
precision@k, recall@k, MAP@k (Table VI, Table VII, Fig. 6)."""

from __future__ import annotations

from typing import Iterable, Sequence


def precision_at_k(retrieved: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """|top-k ∩ relevant| / k' where k' = min(k, |retrieved|).

    Normalising by the number actually retrieved (not k) follows the
    union-search evaluation convention of TUS/Starmie: a system is not
    penalised for returning fewer than k tables when fewer exist.
    """
    if k <= 0:
        return 0.0
    relevant_set = set(relevant)
    top = list(retrieved)[:k]
    if not top:
        return 0.0
    hits = sum(1 for table_id in top if table_id in relevant_set)
    return hits / len(top)


def recall_at_k(retrieved: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """|top-k ∩ relevant| / |relevant| (0 when nothing is relevant)."""
    relevant_set = set(relevant)
    if not relevant_set or k <= 0:
        return 0.0
    top = set(list(retrieved)[:k])
    return len(top & relevant_set) / len(relevant_set)


def average_precision_at_k(
    retrieved: Sequence[int], relevant: Iterable[int], k: int
) -> float:
    """AP@k: mean of precision@i over the ranks i of relevant hits."""
    relevant_set = set(relevant)
    if not relevant_set or k <= 0:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for rank, table_id in enumerate(list(retrieved)[:k], start=1):
        if table_id in relevant_set:
            hits += 1
            precision_sum += hits / rank
    if hits == 0:
        return 0.0
    return precision_sum / min(len(relevant_set), k)


def mean_average_precision(
    runs: Sequence[tuple[Sequence[int], Iterable[int]]], k: int
) -> float:
    """MAP@k over (retrieved, relevant) pairs."""
    if not runs:
        return 0.0
    return sum(
        average_precision_at_k(retrieved, relevant, k) for retrieved, relevant in runs
    ) / len(runs)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean (0 when both are 0)."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
