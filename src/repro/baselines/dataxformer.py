"""DataXFormer-style inverted index (Abedjan et al., CIDR 2015).

The content-to-location index BLEND's ``AllTables`` layout descends from:
every cell token maps to its (table, column, row) occurrences. As a
standalone system it serves keyword look-ups and example-based
transformations; in this repository it exists as (a) the keyword-search
reference and (b) one of the five standalone indexes whose summed storage
Table VIII compares BLEND against.
"""

from __future__ import annotations

from ..core.results import ResultList, TableHit
from ..lake.datalake import DataLake
from ..lake.table import Cell, normalize_cell


class DataXFormerIndex:
    """token -> list of (table, column, row) occurrences."""

    def __init__(self, lake: DataLake) -> None:
        self.lake = lake
        self._postings: dict[str, list[tuple[int, int, int]]] = {}
        for table_id, table in lake.items():
            for row_id, column_id, value in table.iter_cells():
                token = normalize_cell(value)
                if token is not None:
                    self._postings.setdefault(token, []).append(
                        (table_id, column_id, row_id)
                    )

    def lookup(self, value: Cell) -> list[tuple[int, int, int]]:
        """All (table, column, row) locations of a value."""
        token = normalize_cell(value)
        if token is None:
            return []
        return list(self._postings.get(token, ()))

    def keyword_search(self, keywords: list[Cell], k: int = 10) -> ResultList:
        """Top-k tables by distinct keyword hits (table-wide overlap)."""
        counts: dict[int, set[str]] = {}
        for keyword in keywords:
            token = normalize_cell(keyword)
            if token is None:
                continue
            for table_id, _, _ in self._postings.get(token, ()):
                counts.setdefault(table_id, set()).add(token)
        ranked = sorted(
            ((table_id, len(tokens)) for table_id, tokens in counts.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ResultList(
            TableHit(table_id, float(score)) for table_id, score in ranked[:k]
        )

    def storage_bytes(self) -> int:
        total = 0
        for token, posting in self._postings.items():
            total += 49 + len(token) + 16
            total += len(posting) * 24  # three ints per occurrence
        return total
