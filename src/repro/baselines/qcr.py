"""The QCR sketch index baseline (Santos et al., ICDE 2022).

The reference baseline for BLEND's correlation seeker (§VIII-G,
Table VII). For every (categorical key column, numeric column) pair in
every lake table, the offline phase stores the **h smallest hashes** of
``(key token, quadrant bit)`` pairs -- quadratic in column pairs, which is
exactly the storage cost BLEND's single Quadrant column avoids.

At query time the query column pair is sketched the same way, twice: once
with its quadrant bits as-is (detecting positive correlation) and once
flipped (negative correlation) -- the "calculate positive and negative
correlations twice" the paper improves on. The overlap between the
query's and a candidate's smallest-h hash sets estimates the fraction of
concordant pairs, hence |QCR|.

Faithfully reproduced limitations:

* **numeric join keys are not indexed** (categorical keys only), the
  reason the baseline collapses on NYC (All);
* the sketch size ``h`` is fixed at build time -- changing it requires
  re-indexing the lake (BLEND chooses h per query).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..core.results import ResultList, TableHit
from ..index.quadrant import column_means, quadrant_bit
from ..lake.datalake import DataLake
from ..lake.table import Cell, normalize_cell, numeric_value


def _hash_pair(token: str, quadrant: bool) -> int:
    """Deterministic 64-bit hash of a (key, quadrant) pair."""
    digest = hashlib.blake2b(
        f"{token}|{int(quadrant)}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class SketchKey:
    table_id: int
    key_column: int
    numeric_column: int


class QcrIndex:
    """Per-column-pair smallest-h hash sketches."""

    def __init__(self, lake: DataLake, h: int = 256) -> None:
        if h <= 0:
            raise ValueError("sketch size h must be positive")
        self.lake = lake
        self.h = h
        self._sketches: dict[SketchKey, frozenset[int]] = {}
        for table_id, table in lake.items():
            numeric_flags = table.numeric_columns()
            means = column_means(table)
            categorical = [
                i for i, flag in enumerate(numeric_flags) if not flag
            ]
            numeric = [i for i, flag in enumerate(numeric_flags) if flag]
            for key_position in categorical:
                key_tokens = [normalize_cell(row[key_position]) for row in table.rows]
                for numeric_position in numeric:
                    hashes: set[int] = set()
                    for row, token in zip(table.rows, key_tokens):
                        if token is None:
                            continue
                        bit = quadrant_bit(row[numeric_position], means[numeric_position])
                        if bit is None:
                            continue
                        hashes.add(_hash_pair(token, bit))
                    if not hashes:
                        continue
                    smallest = sorted(hashes)[: self.h]
                    self._sketches[
                        SketchKey(table_id, key_position, numeric_position)
                    ] = frozenset(smallest)

    @property
    def num_sketches(self) -> int:
        return len(self._sketches)

    # -- search --------------------------------------------------------------------

    def search(self, keys: Sequence[Cell], targets: Sequence[Cell], k: int = 10) -> ResultList:
        """Top-k tables by estimated |correlation| with the query target.

        Numeric join keys yield empty sketches (the baseline's stated
        limitation) and therefore no results.
        """
        if len(keys) != len(targets):
            raise ValueError("keys and targets must be aligned")
        values = [numeric_value(t) for t in targets]
        present = [v for v in values if v is not None]
        if not present:
            return ResultList()
        mean = sum(present) / len(present)

        positive: set[int] = set()
        negative: set[int] = set()
        for key, value in zip(keys, values):
            if value is None:
                continue
            if _is_numeric_key(key):
                continue  # categorical keys only
            token = normalize_cell(key)
            if token is None:
                continue
            bit = value >= mean
            positive.add(_hash_pair(token, bit))
            negative.add(_hash_pair(token, not bit))
        if not positive:
            return ResultList()
        positive_sketch = frozenset(sorted(positive)[: self.h])
        negative_sketch = frozenset(sorted(negative)[: self.h])

        best_per_table: dict[int, float] = {}
        for sketch_key, sketch in self._sketches.items():
            denominator = min(len(sketch), len(positive_sketch))
            if denominator == 0:
                continue
            concordant = len(sketch & positive_sketch) / denominator
            discordant = len(sketch & negative_sketch) / denominator
            # Two passes (positive & negative) as in the original system;
            # the larger concordance fraction estimates |QCR| via 2f - 1.
            fraction = max(concordant, discordant)
            estimate = max(0.0, 2.0 * fraction - 1.0)
            current = best_per_table.get(sketch_key.table_id, -1.0)
            if estimate > current:
                best_per_table[sketch_key.table_id] = estimate
        ranked = sorted(best_per_table.items(), key=lambda item: (-item[1], item[0]))
        return ResultList(
            TableHit(table_id, score) for table_id, score in ranked[:k]
        )

    # -- storage accounting -----------------------------------------------------------

    def storage_bytes(self) -> int:
        total = 0
        for sketch in self._sketches.values():
            total += 24  # key struct
            total += len(sketch) * 8  # 64-bit hashes
        return total


def _is_numeric_key(value: Cell) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, str):
        try:
            float(value)
            return True
        except ValueError:
            return False
    return False
