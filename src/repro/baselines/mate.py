"""MATE-style standalone multi-column join discovery (VLDB 2022).

The reference baseline for BLEND's MC seeker (paper §VIII-E, Table V).
MATE's pipeline:

1. fetch candidate rows via the inverted index using **one** query column
   (the most selective one),
2. prune candidates with the XASH super-key bloom filter,
3. validate survivors row by row at the application level.

The key difference to BLEND's MC seeker is step 1: BLEND's SQL join
demands index hits from *every* query column in the same row before any
filtering, while MATE admits every row matching the initial column that
survives XASH -- hence MATE's much larger candidate sets and lower
pre-validation precision in Table V (recall is 100 % for both, as XASH
has no false negatives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.results import ResultList, TableHit
from ..core.seekers import _row_contains_any_tuple
from ..index.xash import DEFAULT_HASH_SIZE, DEFAULT_NUM_CHARS, may_contain, super_key, xash
from ..lake.datalake import DataLake
from ..lake.table import Cell, normalize_cell


@dataclass
class MateQueryStats:
    """Table V's measured quantities for one query."""

    candidates_fetched: int = 0
    candidates_after_filter: int = 0
    true_positives: int = 0
    false_positives: int = 0

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 1.0


class MateIndex:
    """Inverted index + per-row XASH super keys, standalone."""

    def __init__(
        self,
        lake: DataLake,
        hash_size: int = DEFAULT_HASH_SIZE,
        num_chars: int = DEFAULT_NUM_CHARS,
    ) -> None:
        self.lake = lake
        self.hash_size = hash_size
        self.num_chars = num_chars
        self._postings: dict[str, list[tuple[int, int]]] = {}
        self._super_keys: dict[tuple[int, int], int] = {}
        for table_id, table in lake.items():
            for row_id, row in enumerate(table.rows):
                self._super_keys[(table_id, row_id)] = super_key(
                    row, hash_size, num_chars
                )
                seen_in_row: set[str] = set()
                for value in row:
                    token = normalize_cell(value)
                    if token is not None and token not in seen_in_row:
                        seen_in_row.add(token)
                        self._postings.setdefault(token, []).append((table_id, row_id))
        self.last_stats = MateQueryStats()

    # -- search -------------------------------------------------------------------

    def search(self, rows: Sequence[Sequence[Cell]], k: int = 10) -> ResultList:
        """Top-k tables by validated joinable-row count."""
        tuples = self._normalize_tuples(rows)
        if not tuples:
            return ResultList()
        width = len(tuples[0])
        stats = MateQueryStats()

        # Step 1: candidate fetch on the most selective query column.
        initial = self._most_selective_column(tuples, width)
        initial_tokens = {t[initial] for t in tuples}
        candidates: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for token in initial_tokens:
            for key in self._postings.get(token, ()):
                if key not in seen:
                    seen.add(key)
                    candidates.append(key)
        stats.candidates_fetched = len(candidates)

        # Step 2: XASH super-key filter.
        tuple_hashes = [
            (query_tuple, self._tuple_hash(query_tuple)) for query_tuple in tuples
        ]
        filtered: list[tuple[int, int]] = []
        for table_id, row_id in candidates:
            row_key = self._super_keys[(table_id, row_id)]
            if any(may_contain(row_key, h) for _, h in tuple_hashes):
                filtered.append((table_id, row_id))
        stats.candidates_after_filter = len(filtered)

        # Step 3: application-level row-by-row validation (the baseline's
        # bottleneck in the paper's complex-task experiments).
        counts: dict[int, int] = {}
        query_tuple_set = set(tuples)
        for table_id, row_id in filtered:
            table = self.lake.by_id(table_id)
            row_tokens = [normalize_cell(v) for v in table.rows[row_id]]
            if _row_contains_any_tuple(row_tokens, query_tuple_set, width):
                counts[table_id] = counts.get(table_id, 0) + 1
                stats.true_positives += 1
            else:
                stats.false_positives += 1
        self.last_stats = stats

        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ResultList(
            TableHit(table_id, float(count)) for table_id, count in ranked[:k]
        )

    # -- helpers -------------------------------------------------------------------

    def _normalize_tuples(self, rows: Sequence[Sequence[Cell]]) -> list[tuple[str, ...]]:
        tuples = []
        for row in rows:
            tokens = tuple(normalize_cell(v) for v in row)
            if all(token is not None for token in tokens):
                tuples.append(tokens)  # type: ignore[arg-type]
        return tuples

    def _most_selective_column(self, tuples: list[tuple[str, ...]], width: int) -> int:
        """The query column with the shortest total posting length."""
        best_position = 0
        best_cost = None
        for position in range(width):
            cost = sum(
                len(self._postings.get(t[position], ())) for t in tuples
            )
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_position = position
        return best_position

    def _tuple_hash(self, values: tuple[str, ...]) -> int:
        mask = 0
        for token in values:
            mask |= xash(token, self.hash_size, self.num_chars)
        return mask

    # -- storage accounting ------------------------------------------------------------

    def storage_bytes(self) -> int:
        total = 0
        for token, posting in self._postings.items():
            total += 49 + len(token) + 16
            total += len(posting) * 16
        total += len(self._super_keys) * (16 + 8)  # key pair + 64-bit hash
        return total
