"""Ad-hoc federated pipelines for the complex tasks of Table III.

Each function below is the paper's "Baseline" column: gluing standalone
discovery systems (MATE, JOSIE, QCR, Starmie) together with application
code. They are deliberately written the way a practitioner without a
unified system would write them -- per-system result handling, manual
validation loops, manual set algebra -- because Table III's LOC metric
measures exactly this integration burden. :func:`loc_of` counts the
effective source lines of any implementation so the benchmark compares
*measured* line counts, not the paper's constants.

System/index counts per task (the paper's last two Table III rows) are
encoded in :data:`TASK_PROFILES`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.results import ResultList, TableHit
from ..lake.datalake import DataLake
from ..lake.table import Cell, Table, normalize_cell
from .josie import JosieIndex
from .mate import MateIndex
from .qcr import QcrIndex
from .starmie import StarmieIndex


def loc_of(*functions: Callable) -> int:
    """Effective lines of code: non-blank, non-comment, non-docstring
    source lines summed over *functions*."""
    total = 0
    for function in functions:
        source = inspect.getsource(function)
        in_docstring = False
        docstring_delimiter = None
        for raw_line in source.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if in_docstring:
                if docstring_delimiter in line:
                    in_docstring = False
                continue
            if line.startswith(('"""', "'''")):
                delimiter = line[:3]
                if line.count(delimiter) == 1:
                    in_docstring = True
                    docstring_delimiter = delimiter
                continue
            total += 1
    return total


@dataclass(frozen=True)
class TaskProfile:
    """The '# of Systems' and '# of Indexes' rows of Table III."""

    name: str
    baseline_systems: int
    baseline_indexes: str
    blend_systems: int = 1
    blend_indexes: str = "Single"


TASK_PROFILES = {
    "negative_examples": TaskProfile("With Negative Examples", 1, "Multi"),
    "imputation": TaskProfile("Data Imputation", 2, "Multi"),
    "feature_discovery": TaskProfile("Feature Discovery", 2, "Multi"),
    "multi_objective": TaskProfile("Multi-Objective Discovery", 3, "Multi"),
}


# ---------------------------------------------------------------------------
# Task 1: data discovery with negative examples (MATE + application code)
# ---------------------------------------------------------------------------


def negative_examples_baseline(
    mate: MateIndex,
    lake: DataLake,
    positive_rows: Sequence[Sequence[Cell]],
    negative_rows: Sequence[Sequence[Cell]],
    k: int = 10,
) -> ResultList:
    """MATE filters tables by the positive examples; application code then
    validates every row of every remaining table against the negative
    examples -- the row-by-row loop the paper identifies as the
    bottleneck."""
    candidates = mate.search(positive_rows, k=10 * k)
    negative_tuples = []
    for row in negative_rows:
        tokens = tuple(normalize_cell(value) for value in row)
        if all(token is not None for token in tokens):
            negative_tuples.append(tokens)
    surviving = []
    for hit in candidates:
        table = lake.by_id(hit.table_id)
        contaminated = False
        for row in table.rows:
            row_tokens = [normalize_cell(value) for value in row]
            present = set(token for token in row_tokens if token is not None)
            for negative_tuple in negative_tuples:
                if all(token in present for token in negative_tuple):
                    contaminated = True
                    break
            if contaminated:
                break
        if not contaminated:
            surviving.append(hit)
        if len(surviving) == k:
            break
    return ResultList(surviving)


# ---------------------------------------------------------------------------
# Task 2: example-based data imputation (MATE + JOSIE + application glue)
# ---------------------------------------------------------------------------


def imputation_baseline(
    mate: MateIndex,
    josie: JosieIndex,
    example_rows: Sequence[Sequence[Cell]],
    query_values: Sequence[Cell],
    k: int = 10,
) -> ResultList:
    """MATE finds tables containing the complete example rows, JOSIE finds
    tables joinable on the incomplete rows' keys; application code aligns
    the two systems' outputs and intersects them."""
    complete = mate.search(example_rows, k=10 * k)
    partial = josie.search(list(query_values), k=10 * k)
    complete_ids = {hit.table_id: hit.score for hit in complete}
    merged = []
    for hit in partial:
        if hit.table_id in complete_ids:
            merged.append(
                TableHit(hit.table_id, hit.score + complete_ids[hit.table_id])
            )
    merged.sort(key=lambda hit: (-hit.score, hit.table_id))
    return ResultList(merged[:k])


# ---------------------------------------------------------------------------
# Task 3: multicollinearity-aware feature discovery (QCR rounds + MATE)
# ---------------------------------------------------------------------------


def feature_discovery_baseline(
    qcr: QcrIndex,
    mate: MateIndex,
    join_rows: Sequence[Sequence[Cell]],
    keys: Sequence[Cell],
    target: Sequence[Cell],
    features: Sequence[Sequence[Cell]],
    k: int = 10,
) -> ResultList:
    """Round one of QCR finds tables correlating with the target; one more
    QCR round per existing feature finds multicollinear tables, which are
    filtered out; MATE checks joinability on the composite key; the final
    output is the intersection."""
    correlated = qcr.search(keys, target, k=30 * k)
    kept = {hit.table_id: hit.score for hit in correlated}
    for feature in features:
        collinear = qcr.search(keys, feature, k=30 * k)
        for hit in collinear:
            kept.pop(hit.table_id, None)
    joinable = mate.search(join_rows, k=30 * k)
    joinable_ids = {hit.table_id for hit in joinable}
    merged = [
        TableHit(table_id, score)
        for table_id, score in kept.items()
        if table_id in joinable_ids
    ]
    merged.sort(key=lambda hit: (-hit.score, hit.table_id))
    return ResultList(merged[:k])


# ---------------------------------------------------------------------------
# Task 4: multi-objective discovery (JOSIE + Starmie + QCR)
# ---------------------------------------------------------------------------


def multi_objective_baseline(
    josie: JosieIndex,
    starmie: StarmieIndex,
    qcr: QcrIndex,
    keywords: Sequence[Cell],
    examples: Table,
    join_key_column: str,
    target_column: str,
    k: int = 10,
) -> ResultList:
    """Keyword search via JOSIE (attribute-agnostic join search), union
    search via Starmie, correlation search via QCR; application code
    merges three differently-shaped result sets."""
    keyword_hits = josie.search(list(keywords), k=k)
    union_hits = starmie.search(examples, k=k)
    correlation_hits = qcr.search(
        examples.column_values(join_key_column),
        examples.column_values(target_column),
        k=k,
    )
    scores: dict[int, float] = {}
    for result in (keyword_hits, union_hits, correlation_hits):
        for hit in result:
            scores[hit.table_id] = scores.get(hit.table_id, 0.0) + hit.score
    merged = sorted(
        (TableHit(table_id, score) for table_id, score in scores.items()),
        key=lambda hit: (-hit.score, hit.table_id),
    )
    return ResultList(merged[: 4 * k])
