"""JOSIE-style standalone single-column join search (Zhu et al., SIGMOD'19).

The reference baseline for BLEND's SC seeker (paper §VIII-D, Figs. 5/6).
JOSIE finds the top-k lake columns by exact set overlap with a query
column using posting lists plus cost-based pruning. This implementation
keeps the algorithmic skeleton:

* a token dictionary with per-(table, column) posting lists,
* query processing in ascending posting-length order (cheap, selective
  tokens first),
* an early-termination bound: once the running k-th best overlap cannot
  be beaten by candidates that share only the remaining tokens, scanning
  stops.

Results are exact -- identical to BLEND's SC seeker on the same lake,
which is what Fig. 6 reports ("their outputs are identical").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import ResultList, TableHit
from ..lake.datalake import DataLake
from ..lake.table import Cell, normalize_cell


@dataclass(frozen=True)
class JosieStats:
    """Query-time work counters (for runtime-shape analysis)."""

    tokens_processed: int
    postings_scanned: int
    early_terminated: bool


class JosieIndex:
    """Posting-list index: token -> sorted list of (table, column) ids."""

    def __init__(self, lake: DataLake) -> None:
        self.lake = lake
        self._postings: dict[str, list[tuple[int, int]]] = {}
        self._column_sizes: dict[tuple[int, int], int] = {}
        for table_id, table in lake.items():
            for position in range(table.num_columns):
                tokens = {
                    normalize_cell(row[position]) for row in table.rows
                }
                tokens.discard(None)
                if not tokens:
                    continue
                self._column_sizes[(table_id, position)] = len(tokens)
                for token in tokens:
                    self._postings.setdefault(token, []).append((table_id, position))
        self.last_stats: JosieStats = JosieStats(0, 0, False)

    # -- search ------------------------------------------------------------------

    def search(self, values: list[Cell], k: int = 10) -> ResultList:
        """Exact top-k tables by best single-column overlap."""
        tokens = []
        seen: set[str] = set()
        for value in values:
            token = normalize_cell(value)
            if token is not None and token not in seen:
                seen.add(token)
                tokens.append(token)

        # Cheapest (shortest) posting lists first: JOSIE's cost ordering.
        ordered = sorted(
            (token for token in tokens if token in self._postings),
            key=lambda token: len(self._postings[token]),
        )
        counts: dict[tuple[int, int], int] = {}
        postings_scanned = 0
        early = False
        remaining = len(ordered)
        for index, token in enumerate(ordered):
            remaining = len(ordered) - index
            if counts and len(counts) >= k:
                # Lower bound of the current k-th best column overlap. A
                # new candidate can reach at most `remaining`; the strict
                # comparison keeps boundary ties exact (ties break by
                # table id, so a late tier could still enter the top-k).
                threshold = sorted(counts.values(), reverse=True)[k - 1]
                if threshold > remaining:
                    # No unseen candidate can reach the top-k anymore, and
                    # already-seen candidates keep their relative ranking
                    # only if we finish counting -- JOSIE's bound also
                    # requires finishing the seen ones, so we keep scanning
                    # but stop admitting NEW candidates.
                    early = True
            posting = self._postings[token]
            postings_scanned += len(posting)
            for key in posting:
                if early and key not in counts:
                    continue
                counts[key] = counts.get(key, 0) + 1
        self.last_stats = JosieStats(
            tokens_processed=len(ordered),
            postings_scanned=postings_scanned,
            early_terminated=early,
        )

        best_per_table: dict[int, int] = {}
        for (table_id, _), overlap in counts.items():
            if overlap > best_per_table.get(table_id, 0):
                best_per_table[table_id] = overlap
        ranked = sorted(best_per_table.items(), key=lambda item: (-item[1], item[0]))
        return ResultList(
            TableHit(table_id, float(overlap)) for table_id, overlap in ranked[:k]
        )

    # -- storage accounting ---------------------------------------------------------

    def storage_bytes(self) -> int:
        """Postings + dictionary + per-set size catalog (JOSIE stores set
        sizes for its cost model)."""
        total = 0
        for token, posting in self._postings.items():
            total += 49 + len(token)  # dictionary entry
            total += 16  # dict slot
            total += len(posting) * 16  # (table, column) pairs
        total += len(self._column_sizes) * 24  # set-size catalog
        return total
