"""Deterministic column embeddings (substitute for Starmie's contrastive
encoder and DeepJoin's fine-tuned language model).

No pretrained models exist offline, so columns are embedded by *feature
hashing*: each value token and each character trigram hashes into a fixed
number of dimensions with log-TF weighting, L2-normalised. Token features
give exact-content similarity; trigram features give a soft, "semantic-ish"
component (morphologically close vocabularies land close), which is enough
to reproduce the baselines' qualitative profile -- fast ANN retrieval with
result sets that differ from exact-overlap search (paper §VIII-D/F).
"""

from __future__ import annotations

import math
import zlib
from typing import Iterable, Sequence

import numpy as np

from ..lake.table import Cell, Table, normalize_cell

DEFAULT_DIMENSIONS = 64
_TRIGRAM_WEIGHT = 0.35


def _feature_slot(feature: str, dimensions: int) -> tuple[int, float]:
    """Stable (dimension, sign) for a feature string.

    CRC32 is deterministic across processes (unlike ``hash()``) and an
    order of magnitude faster than cryptographic digests -- embedding is
    on DeepJoin's query path, where the paper's system only pays one
    encoder forward pass.
    """
    raw = zlib.crc32(feature.encode())
    slot = raw % dimensions
    sign = 1.0 if (raw >> 16) & 1 else -1.0
    return slot, sign


from functools import lru_cache


@lru_cache(maxsize=500_000)
def _token_features(token: str, dimensions: int) -> tuple[tuple[int, float], ...]:
    """Cached (slot, signed weight) contributions of one token -- the
    analogue of an encoder's cached vocabulary embeddings."""
    features = [(*_feature_slot("tok:" + token, dimensions), 1.0)]
    contributions = [(features[0][0], features[0][1] * features[0][2])]
    for trigram in _trigrams(token):
        slot, sign = _feature_slot("tri:" + trigram, dimensions)
        contributions.append((slot, sign * _TRIGRAM_WEIGHT))
    return tuple(contributions)


def embed_tokens(tokens: Iterable[str], dimensions: int = DEFAULT_DIMENSIONS) -> np.ndarray:
    """Embed a bag of tokens into a unit vector (zero vector if empty)."""
    counts: dict[str, int] = {}
    for token in tokens:
        counts[token] = counts.get(token, 0) + 1
    vector = np.zeros(dimensions, dtype=np.float64)
    for token, count in counts.items():
        weight = 1.0 + math.log(count)
        for slot, contribution in _token_features(token, dimensions):
            vector[slot] += contribution * weight
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector


def embed_column(
    table: Table, column_position: int, dimensions: int = DEFAULT_DIMENSIONS
) -> np.ndarray:
    """Embed one table column by its value tokens."""
    tokens = []
    for row in table.rows:
        token = normalize_cell(row[column_position])
        if token is not None:
            tokens.append(token)
    return embed_tokens(tokens, dimensions)


def embed_values(values: Sequence[Cell], dimensions: int = DEFAULT_DIMENSIONS) -> np.ndarray:
    """Embed a raw value list (query columns)."""
    tokens = []
    for value in values:
        token = normalize_cell(value)
        if token is not None:
            tokens.append(token)
    return embed_tokens(tokens, dimensions)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two (possibly zero) vectors."""
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0:
        return 0.0
    return float(np.dot(a, b) / norm)


def _trigrams(token: str) -> list[str]:
    padded = f"##{token}##"
    return [padded[i : i + 3] for i in range(len(padded) - 2)]
