"""HNSW: Hierarchical Navigable Small World graphs, from scratch.

The approximate-nearest-neighbour index Starmie and DeepJoin use for
embedding retrieval (Malkov & Yashunin, TPAMI 2018). Implements the
standard algorithm over cosine distance:

* geometric level assignment (``floor(-ln(U) * mL)``),
* greedy descent through upper layers (ef = 1),
* beam search (``ef_construction`` / ``ef_search``) on lower layers,
* bidirectional linking with degree pruning to ``M`` (``2M`` on layer 0).

Deterministic given the seed. Pure Python + NumPy; built for the
tens-of-thousands-of-columns scale of the synthetic lakes.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Optional

import numpy as np


class HnswIndex:
    """Cosine-distance HNSW over unit-normalised vectors."""

    def __init__(
        self,
        dimensions: int,
        m: int = 8,
        ef_construction: int = 64,
        seed: int = 0,
    ) -> None:
        if m < 2:
            raise ValueError("M must be at least 2")
        self.dimensions = dimensions
        self.m = m
        self.ef_construction = ef_construction
        self._level_multiplier = 1.0 / math.log(m)
        self._rng = random.Random(seed)
        self._vectors: list[np.ndarray] = []
        self._keys: list[Any] = []
        # _links[level][node] -> list of neighbour node ids
        self._links: list[dict[int, list[int]]] = []
        self._entry_point: Optional[int] = None
        self._max_level = -1

    def __len__(self) -> int:
        return len(self._vectors)

    # -- construction ------------------------------------------------------------

    def add(self, key: Any, vector: np.ndarray) -> None:
        """Insert one item (key is returned by searches)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dimensions,):
            raise ValueError(
                f"vector has shape {vector.shape}, expected ({self.dimensions},)"
            )
        node = len(self._vectors)
        self._vectors.append(vector)
        self._keys.append(key)
        level = int(-math.log(max(self._rng.random(), 1e-12)) * self._level_multiplier)

        while self._max_level < level:
            self._links.append({})
            self._max_level += 1
        for l in range(level + 1):
            self._links[l].setdefault(node, [])

        if self._entry_point is None:
            self._entry_point = node
            return

        current = self._entry_point
        # Greedy descent on layers above the new node's level.
        for l in range(self._max_level, level, -1):
            current = self._greedy_closest(vector, current, l)
        # Beam search + linking on the remaining layers.
        for l in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, [current], l, self.ef_construction)
            neighbours = [node_id for _, node_id in heapq.nsmallest(self.m, candidates)]
            for neighbour in neighbours:
                self._connect(node, neighbour, l)
            if candidates:
                current = min(candidates)[1]
        if level > self._level_of(self._entry_point):
            self._entry_point = node

    def _connect(self, a: int, b: int, level: int) -> None:
        max_degree = self.m * 2 if level == 0 else self.m
        for source, target in ((a, b), (b, a)):
            links = self._links[level].setdefault(source, [])
            if target in links or source == target:
                continue
            links.append(target)
            if len(links) > max_degree:
                # Prune to the closest max_degree neighbours.
                source_vector = self._vectors[source]
                links.sort(key=lambda n: self._distance(source_vector, self._vectors[n]))
                del links[max_degree:]

    def _level_of(self, node: int) -> int:
        for l in range(self._max_level, -1, -1):
            if node in self._links[l]:
                return l
        return 0

    # -- search --------------------------------------------------------------------

    def search(self, vector: np.ndarray, k: int = 10, ef: Optional[int] = None) -> list[tuple[Any, float]]:
        """The approximately closest *k* items as (key, cosine similarity),
        best first."""
        if self._entry_point is None:
            return []
        vector = np.asarray(vector, dtype=np.float64)
        ef = max(ef or self.ef_construction, k)
        current = self._entry_point
        for l in range(self._max_level, 0, -1):
            current = self._greedy_closest(vector, current, l)
        candidates = self._search_layer(vector, [current], 0, ef)
        best = heapq.nsmallest(k, candidates)
        return [(self._keys[node], 1.0 - distance) for distance, node in best]

    def _greedy_closest(self, vector: np.ndarray, start: int, level: int) -> int:
        current = start
        current_distance = self._distance(vector, self._vectors[current])
        improved = True
        while improved:
            improved = False
            for neighbour in self._links[level].get(current, ()):
                distance = self._distance(vector, self._vectors[neighbour])
                if distance < current_distance:
                    current = neighbour
                    current_distance = distance
                    improved = True
        return current

    def _search_layer(
        self, vector: np.ndarray, entry_points: list[int], level: int, ef: int
    ) -> list[tuple[float, int]]:
        """Beam search returning (distance, node) pairs (unordered heap)."""
        visited = set(entry_points)
        candidates = [
            (self._distance(vector, self._vectors[node]), node) for node in entry_points
        ]
        heapq.heapify(candidates)
        # Result set as a max-heap via negated distances.
        results = [(-distance, node) for distance, node in candidates]
        heapq.heapify(results)
        while candidates:
            distance, node = heapq.heappop(candidates)
            if results and distance > -results[0][0] and len(results) >= ef:
                break
            for neighbour in self._links[level].get(node, ()):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                neighbour_distance = self._distance(vector, self._vectors[neighbour])
                if len(results) < ef or neighbour_distance < -results[0][0]:
                    heapq.heappush(candidates, (neighbour_distance, neighbour))
                    heapq.heappush(results, (-neighbour_distance, neighbour))
                    if len(results) > ef:
                        heapq.heappop(results)
        return [(-negated, node) for negated, node in results]

    @staticmethod
    def _distance(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine distance for unit-ish vectors."""
        norm = np.linalg.norm(a) * np.linalg.norm(b)
        if norm == 0:
            return 1.0
        return 1.0 - float(np.dot(a, b) / norm)

    # -- storage accounting ------------------------------------------------------------

    def storage_bytes(self) -> int:
        total = len(self._vectors) * self.dimensions * 8
        for layer in self._links:
            for links in layer.values():
                total += 16 + len(links) * 8
        return total
