"""Standalone baseline systems the paper compares BLEND against, each
built from scratch: JOSIE, MATE, the QCR sketch index, DataXFormer's
inverted index, Starmie, DeepJoin, and the ad-hoc federated pipelines of
Table III."""

from .dataxformer import DataXFormerIndex
from .deepjoin import DeepJoinIndex
from .embeddings import cosine_similarity, embed_column, embed_tokens, embed_values
from .federation import (
    TASK_PROFILES,
    feature_discovery_baseline,
    imputation_baseline,
    loc_of,
    multi_objective_baseline,
    negative_examples_baseline,
)
from .hnsw import HnswIndex
from .josie import JosieIndex
from .mate import MateIndex
from .qcr import QcrIndex
from .starmie import StarmieIndex

__all__ = [
    "DataXFormerIndex",
    "DeepJoinIndex",
    "cosine_similarity",
    "embed_column",
    "embed_tokens",
    "embed_values",
    "TASK_PROFILES",
    "feature_discovery_baseline",
    "imputation_baseline",
    "loc_of",
    "multi_objective_baseline",
    "negative_examples_baseline",
    "HnswIndex",
    "JosieIndex",
    "MateIndex",
    "QcrIndex",
    "StarmieIndex",
]
