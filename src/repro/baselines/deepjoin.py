"""DeepJoin-style semantic join search baseline (Dong et al., VLDB 2023).

Appears in the paper's LakeBench experiment (Fig. 6): the fastest system
thanks to its HNSW index, with higher P@k/R@k than exact-overlap search
because it also retrieves *semantically* joinable columns. Architecture
here: one embedding per lake column (encoder substitution documented in
:mod:`.embeddings`), a single HNSW over all columns, and query-time
ranking of tables by their best column's similarity to the query column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.results import ResultList, TableHit
from ..lake.datalake import DataLake
from ..lake.table import Cell
from .embeddings import DEFAULT_DIMENSIONS, embed_column, embed_values
from .hnsw import HnswIndex


@dataclass(frozen=True)
class ColumnRef:
    table_id: int
    column_position: int


class DeepJoinIndex:
    """Column-embedding + HNSW join-search index."""

    def __init__(
        self,
        lake: DataLake,
        dimensions: int = DEFAULT_DIMENSIONS,
        m: int = 8,
        ef_construction: int = 48,
        seed: int = 0,
    ) -> None:
        self.lake = lake
        self.dimensions = dimensions
        self._hnsw = HnswIndex(dimensions, m=m, ef_construction=ef_construction, seed=seed)
        self._num_columns = 0
        for table_id, table in lake.items():
            for position in range(table.num_columns):
                vector = embed_column(table, position, dimensions)
                if not np.any(vector):
                    continue
                self._hnsw.add(ColumnRef(table_id, position), vector)
                self._num_columns += 1

    def search(self, values: Sequence[Cell], k: int = 10, ef: int = 96) -> ResultList:
        """Top-k tables whose best column is nearest to the query column
        in embedding space."""
        query_vector = embed_values(values, self.dimensions)
        if not np.any(query_vector):
            return ResultList()
        # Over-fetch columns: several columns of one table may rank high.
        hits = self._hnsw.search(query_vector, k=k * 4, ef=max(ef, k * 4))
        best_per_table: dict[int, float] = {}
        for ref, similarity in hits:
            if similarity > best_per_table.get(ref.table_id, float("-inf")):
                best_per_table[ref.table_id] = similarity
        ranked = sorted(best_per_table.items(), key=lambda item: (-item[1], item[0]))
        return ResultList(
            TableHit(table_id, score) for table_id, score in ranked[:k]
        )

    def storage_bytes(self) -> int:
        return self._num_columns * self.dimensions * 8 + self._hnsw.storage_bytes()
