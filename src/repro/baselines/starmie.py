"""Starmie-style union search baseline (Fan et al., VLDB 2023).

The reference baseline for BLEND's union plan (§VIII-F, Fig. 7 and
Table VI). Starmie embeds every column with a contrastive encoder and
retrieves unionable tables via HNSW over column vectors, scoring a
candidate table by a bipartite matching between query and candidate
column embeddings. This reproduction keeps the architecture -- per-column
embeddings (see :mod:`.embeddings` for the encoder substitution), an HNSW
index, and greedy bipartite column alignment -- so its qualitative
behaviour matches the paper: very fast in-memory retrieval, and result
sets that differ from BLEND's purely syntactic overlap search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.results import ResultList, TableHit
from ..lake.datalake import DataLake
from ..lake.table import Table
from .embeddings import DEFAULT_DIMENSIONS, cosine_similarity, embed_column
from .hnsw import HnswIndex


@dataclass(frozen=True)
class ColumnRef:
    table_id: int
    column_position: int


class StarmieIndex:
    """Column-embedding + HNSW union-search index."""

    def __init__(
        self,
        lake: DataLake,
        dimensions: int = DEFAULT_DIMENSIONS,
        m: int = 8,
        ef_construction: int = 48,
        seed: int = 0,
    ) -> None:
        self.lake = lake
        self.dimensions = dimensions
        self._vectors: dict[ColumnRef, np.ndarray] = {}
        self._hnsw = HnswIndex(dimensions, m=m, ef_construction=ef_construction, seed=seed)
        for table_id, table in lake.items():
            for position in range(table.num_columns):
                vector = embed_column(table, position, dimensions)
                if not np.any(vector):
                    continue
                ref = ColumnRef(table_id, position)
                self._vectors[ref] = vector
                self._hnsw.add(ref, vector)

    # -- search -------------------------------------------------------------------

    def search(
        self,
        query: Table,
        k: int = 10,
        candidates_per_column: int = 50,
        exclude_table_id: int | None = None,
    ) -> ResultList:
        """Top-k unionable tables for *query*.

        Per query column, the ANN index proposes candidate columns; tables
        are then scored by a greedy one-to-one alignment of query columns
        to their best candidate columns (sum of cosine similarities,
        normalised by query width).
        """
        query_vectors = [
            embed_column(query, position, self.dimensions)
            for position in range(query.num_columns)
        ]
        query_vectors = [v for v in query_vectors if np.any(v)]
        if not query_vectors:
            return ResultList()

        # Gather candidate tables from per-column ANN look-ups.
        candidate_tables: set[int] = set()
        for vector in query_vectors:
            for ref, _ in self._hnsw.search(vector, k=candidates_per_column):
                candidate_tables.add(ref.table_id)
        if exclude_table_id is not None:
            candidate_tables.discard(exclude_table_id)

        scored: list[TableHit] = []
        for table_id in candidate_tables:
            table = self.lake.by_id(table_id)
            columns = [
                self._vectors.get(ColumnRef(table_id, position))
                for position in range(table.num_columns)
            ]
            columns = [c for c in columns if c is not None]
            if not columns:
                continue
            score = self._alignment_score(query_vectors, columns)
            scored.append(TableHit(table_id, score))
        scored.sort(key=lambda hit: (-hit.score, hit.table_id))
        return ResultList(scored[:k])

    @staticmethod
    def _alignment_score(
        query_vectors: list[np.ndarray], candidate_vectors: list[np.ndarray]
    ) -> float:
        """Greedy one-to-one bipartite alignment score in [0, 1]."""
        pairs = []
        for qi, qv in enumerate(query_vectors):
            for ci, cv in enumerate(candidate_vectors):
                pairs.append((cosine_similarity(qv, cv), qi, ci))
        pairs.sort(reverse=True)
        used_query: set[int] = set()
        used_candidate: set[int] = set()
        total = 0.0
        for similarity, qi, ci in pairs:
            if qi in used_query or ci in used_candidate:
                continue
            if similarity <= 0:
                break
            used_query.add(qi)
            used_candidate.add(ci)
            total += similarity
        return total / len(query_vectors)

    # -- storage accounting -----------------------------------------------------------

    def storage_bytes(self) -> int:
        vectors = len(self._vectors) * self.dimensions * 8
        return vectors + self._hnsw.storage_bytes()
