"""Exception hierarchy for the BLEND reproduction.

Every error raised by this package derives from :class:`BlendError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class BlendError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class EngineError(BlendError):
    """Base class for errors raised by the embedded relational engine."""


class SqlSyntaxError(EngineError):
    """The SQL text could not be tokenised or parsed.

    Carries the one-based position of the offending token when known.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanningError(EngineError):
    """The parsed statement is structurally invalid (unknown table/column,
    aggregate misuse, unbound parameter, ...)."""


class ExecutionError(EngineError):
    """A runtime failure while executing a physical plan."""


class CatalogError(EngineError):
    """Schema-level failure: duplicate table, missing index target, ..."""


class LakeError(BlendError):
    """Failure in the data-lake substrate (bad CSV, malformed table, ...)."""


class IndexingError(BlendError):
    """Failure while building the unified AllTables index."""


class PlanError(BlendError):
    """A user discovery plan is malformed (cycles, unknown inputs, bad
    arity, duplicate node names, ...)."""


class OptimizerError(BlendError):
    """The plan optimizer could not produce an execution ordering."""


class SeekerError(BlendError):
    """Invalid seeker specification (empty query column, bad k, ...)."""


class StaleContextError(BlendError):
    """A :class:`SeekerContext` outlived the lake generation it was
    created at: tables were added, removed, or replaced since, so results
    could silently reference dead table ids. Re-create the context (e.g.
    ``Blend.context()``) to pick up the current generation."""


class SnapshotError(BlendError):
    """A persisted index snapshot cannot be written or loaded: missing or
    corrupted payload files, checksum or size mismatches, an unsupported
    format version, or a deployment (backend / hash width / lake) that
    does not match what the snapshot was built from. The message names
    the offending file so operators can tell truncation apart from
    tampering -- a bad snapshot must never load into garbage results."""


class CombinerError(BlendError):
    """Invalid combiner specification or input arity."""


class ServingError(BlendError):
    """Failure in the serving tier (scheduler shut down, no deployment
    loaded, malformed request)."""


class RequestTimeoutError(ServingError):
    """A served request missed its deadline: it was either still queued
    when its deadline passed (dropped at admission, never executed) or
    its batch did not finish in time. The worker that noticed stays
    healthy -- timeouts are per-request, not per-worker."""
