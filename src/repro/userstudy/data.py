"""Recorded responses of the paper's 18-expert user study (§VIII-I).

A human study cannot be re-run offline; what this module stores is a
participant-level response set *reconstructed from the published
marginals* of Table IX (per-sector percentages over 9 research and 9
industry participants -- the percentages are multiples of 1/9 except the
Q1 averages). The aggregation pipeline in :mod:`.survey` recomputes
Table IX from these raw responses, so the analysis code is exercised end
to end even though the responses themselves are synthetic reconstructions
(documented in DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Participant:
    """One survey respondent."""

    identifier: str
    sector: str  # "research" | "industry"
    single_search_success_pct: float  # Q1 (0-100 slider)
    single_table_sufficient: bool  # Q2
    frequent_tasks: frozenset[str]  # Q3
    solving_methods: frozenset[str]  # Q4
    languages: frozenset[str]  # Q5
    lake_storage: str  # Q6: "dbms" | "files" | "both"
    would_use_dbms: bool  # Q7
    simple_api_preference: str  # Q8: "blend" | "python" | "sql"
    complex_api_preference: str  # Q9: "blend" | "python"


TASKS = ("rows", "correlation", "join", "keyword", "mc_join")
METHODS = ("scripts", "sql", "people", "open_source", "commercial")
LANGUAGES = ("python", "java", "sql", "c++")


def _build(sector: str, q1_values, q2_yes, tasks, methods, languages, storage, q8, q9_python):
    """Assemble nine participants of one sector from per-question counts.

    ``tasks``/``methods``/``languages`` map option -> number of holders;
    holders are assigned round-robin from different starting offsets so
    individual profiles vary while the marginals match exactly.
    """
    participants = []
    for index in range(9):
        frequent = frozenset(
            option
            for offset, (option, count) in enumerate(tasks.items())
            if (index - offset) % 9 < count
        )
        solving = frozenset(
            option
            for offset, (option, count) in enumerate(methods.items())
            if (index - 2 * offset) % 9 < count
        )
        spoken = frozenset(
            option
            for offset, (option, count) in enumerate(languages.items())
            if (index - 3 * offset) % 9 < count
        )
        participants.append(
            Participant(
                identifier=f"{sector[0]}{index + 1}",
                sector=sector,
                single_search_success_pct=q1_values[index],
                single_table_sufficient=index < q2_yes,
                frequent_tasks=frequent,
                solving_methods=solving,
                languages=spoken,
                lake_storage=storage[index],
                would_use_dbms=True,  # Q7: unanimous
                simple_api_preference=q8[index],
                complex_api_preference="python" if index < q9_python else "blend",
            )
        )
    return participants


RESEARCH_PARTICIPANTS = _build(
    sector="research",
    # Q1 mean 27.5 %
    q1_values=[5.0, 10.0, 15.0, 25.0, 27.5, 30.0, 35.0, 45.0, 55.0],
    q2_yes=1,  # 11 %
    tasks={"rows": 3, "correlation": 4, "join": 4, "keyword": 4, "mc_join": 3},
    methods={"scripts": 9, "sql": 4, "people": 3, "open_source": 5, "commercial": 2},
    languages={"python": 9, "java": 7, "sql": 7, "c++": 5},
    # Q6: DBMS 3, files 4, both 2
    storage=["dbms"] * 3 + ["files"] * 4 + ["both"] * 2,
    # Q8: BLEND 3 (34 %), Python 2 (22 %), SQL 4 (44 %)
    q8=["blend"] * 3 + ["python"] * 2 + ["sql"] * 4,
    q9_python=1,  # 11 % prefer Python for the complex task
)

INDUSTRY_PARTICIPANTS = _build(
    sector="industry",
    # Q1 mean 38.9 % (the paper reports 38.8 %)
    q1_values=[15.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0, 55.0],
    q2_yes=0,  # 0 %
    tasks={"rows": 6, "correlation": 5, "join": 3, "keyword": 3, "mc_join": 2},
    methods={"scripts": 5, "sql": 5, "people": 5, "open_source": 3, "commercial": 2},
    languages={"python": 8, "java": 8, "sql": 7, "c++": 7},
    # Q6: DBMS 4, files 0, both 5
    storage=["dbms"] * 4 + ["both"] * 5,
    # Q8: BLEND 5 (56 %), Python 1 (11 %), SQL 3 (34 %)
    q8=["blend"] * 5 + ["python"] * 1 + ["sql"] * 3,
    q9_python=1,  # 11 %
)

ALL_PARTICIPANTS = RESEARCH_PARTICIPANTS + INDUSTRY_PARTICIPANTS
