"""The paper's user study (Table IX): reconstructed responses plus the
aggregation pipeline that regenerates the table."""

from .data import ALL_PARTICIPANTS, INDUSTRY_PARTICIPANTS, RESEARCH_PARTICIPANTS, Participant
from .survey import QuestionSummary, render_table_ix, summarize

__all__ = [
    "ALL_PARTICIPANTS",
    "INDUSTRY_PARTICIPANTS",
    "RESEARCH_PARTICIPANTS",
    "Participant",
    "QuestionSummary",
    "render_table_ix",
    "summarize",
]
