"""Aggregation pipeline regenerating Table IX from raw survey responses.

Given participant-level responses (see :mod:`.data`), recomputes every
row of the paper's Table IX: per-sector and overall percentages for the
nine survey questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .data import LANGUAGES, METHODS, TASKS, Participant

_TASK_LABELS = {
    "rows": "Discovery for rows",
    "correlation": "Correlation discovery",
    "join": "Join discovery",
    "keyword": "Keyword search",
    "mc_join": "multi-column join discovery",
}
_METHOD_LABELS = {
    "scripts": "With custom scripts",
    "sql": "Writing SQL queries",
    "people": "Asking people",
    "open_source": "Using open source tools",
    "commercial": "Using commercial tools",
}


@dataclass(frozen=True)
class QuestionSummary:
    """One Table IX block: a question plus per-cohort values."""

    question: str
    rows: tuple[tuple[str, str, str, str], ...]  # (label, research, industry, all)


def _pct(count: int, total: int) -> str:
    if total == 0:
        return "00%"
    return f"{round(100 * count / total):02d}%"


def _share(participants: Sequence[Participant], predicate) -> tuple[int, int]:
    holders = sum(1 for p in participants if predicate(p))
    return holders, len(participants)


def summarize(participants: Sequence[Participant]) -> list[QuestionSummary]:
    """Recompute all nine Table IX question blocks."""
    research = [p for p in participants if p.sector == "research"]
    industry = [p for p in participants if p.sector == "industry"]
    cohorts = (research, industry, list(participants))

    def triple(predicate) -> tuple[str, str, str]:
        return tuple(_pct(*_share(cohort, predicate)) for cohort in cohorts)  # type: ignore[return-value]

    summaries: list[QuestionSummary] = []

    # Q1 -- average success slider.
    averages = tuple(
        f"{sum(p.single_search_success_pct for p in cohort) / len(cohort):.1f}%"
        for cohort in cohorts
    )
    summaries.append(
        QuestionSummary(
            "Question 1. How often do you find data within a single search?",
            (("Rarely (0%) - Often (100%)",) + averages,),
        )
    )

    # Q2 -- yes/no.
    yes = triple(lambda p: p.single_table_sufficient)
    no = triple(lambda p: not p.single_table_sufficient)
    summaries.append(
        QuestionSummary(
            "Question 2. Is a single discovered table sufficient as the output "
            "of the discovery task?",
            (("Yes | No",) + tuple(f"{y} | {n}" for y, n in zip(yes, no)),),
        )
    )

    # Q3 -- frequent tasks (multi-select).
    summaries.append(
        QuestionSummary(
            "Question 3. What are your most frequent data discovery tasks?",
            tuple(
                (_TASK_LABELS[task],) + triple(lambda p, t=task: t in p.frequent_tasks)
                for task in TASKS
            ),
        )
    )

    # Q4 -- solving methods (multi-select).
    summaries.append(
        QuestionSummary(
            "Question 4. How do you solve data discovery tasks?",
            tuple(
                (_METHOD_LABELS[method],)
                + triple(lambda p, m=method: m in p.solving_methods)
                for method in METHODS
            ),
        )
    )

    # Q5 -- languages (multi-select).
    summaries.append(
        QuestionSummary(
            "Question 5. What programming language do you prefer?",
            tuple(
                (language.capitalize(),)
                + triple(lambda p, l=language: l in p.languages)
                for language in LANGUAGES
            ),
        )
    )

    # Q6 -- lake storage.
    storage_rows = []
    for label, kind in (("DBMS", "dbms"), ("File systems", "files"), ("Both", "both")):
        storage_rows.append((label,) + triple(lambda p, s=kind: p.lake_storage == s))
    summaries.append(
        QuestionSummary("Question 6. Where do you store your data lake?", tuple(storage_rows))
    )

    # Q7 -- would use DBMS with indexes/optimizations.
    yes7 = triple(lambda p: p.would_use_dbms)
    no7 = triple(lambda p: not p.would_use_dbms)
    summaries.append(
        QuestionSummary(
            "Question 7. Would you use DBMS if indexing and optimizations are provided?",
            (("YES | NO",) + tuple(f"{y} | {n}" for y, n in zip(yes7, no7)),),
        )
    )

    # Q8 -- API preference for simple tasks.
    q8_rows = []
    for label, kind in (("BLEND", "blend"), ("Python", "python"), ("SQL", "sql")):
        q8_rows.append((label,) + triple(lambda p, s=kind: p.simple_api_preference == s))
    summaries.append(
        QuestionSummary("Question 8. Which API do you prefer for simple tasks?", tuple(q8_rows))
    )

    # Q9 -- API preference for complex tasks.
    q9_rows = []
    for label, kind in (("BLEND", "blend"), ("Python", "python")):
        q9_rows.append((label,) + triple(lambda p, s=kind: p.complex_api_preference == s))
    summaries.append(
        QuestionSummary("Question 9. Which API do you prefer for complex tasks?", tuple(q9_rows))
    )
    return summaries


def render_table_ix(participants: Sequence[Participant]) -> str:
    """The full Table IX as text."""
    research = sum(1 for p in participants if p.sector == "research")
    industry = sum(1 for p in participants if p.sector == "industry")
    lines = [
        "TABLE IX: Statistics obtained from the conducted user study.",
        "=" * 64,
        f"{'':40s} {'Research':>9s} {'Industry':>9s} {'All':>9s}",
        f"{'Number of participants':40s} {research:>9d} {industry:>9d} {len(participants):>9d}",
    ]
    for summary in summarize(participants):
        lines.append("")
        lines.append(summary.question)
        for row in summary.rows:
            label, *values = row
            lines.append(
                f"  {label:38s} {values[0]:>9s} {values[1]:>9s} {values[2]:>9s}"
            )
    return "\n".join(lines)
