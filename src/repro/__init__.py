"""BLEND: A Unified Data Discovery System -- full Python reproduction.

Public API re-exports: ``Blend``, ``Plan``, ``Seekers``, ``Combiners``,
``DataLake``, ``Table``, and the embedded ``Database`` engine.
"""

from .core import (
    Blend,
    Combiners,
    DiscoveryResult,
    HybridSeeker,
    Plan,
    ResultList,
    Seekers,
    SemanticSeeker,
    TableHit,
    parse_plan,
)
from .engine import Database
from .lake import DataLake, Table

__version__ = "1.0.0"

__all__ = [
    "Blend",
    "Combiners",
    "DiscoveryResult",
    "HybridSeeker",
    "Plan",
    "parse_plan",
    "ResultList",
    "Seekers",
    "SemanticSeeker",
    "TableHit",
    "Database",
    "DataLake",
    "Table",
    "__version__",
]
