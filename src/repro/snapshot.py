"""Persistent index snapshots: versioned save/load with mmap warm start.

BLEND's offline phase is expensive by design -- one comprehensive
``AllTables`` build over the whole lake -- and the online phase is meant
to serve from it indefinitely (paper §V). This module makes that split
operational: :meth:`repro.Blend.save` persists the *entire built system*
into a directory, and :meth:`repro.Blend.load` restores it in
milliseconds, so serving processes warm-start from disk instead of
re-running the build (N workers can mmap one shared snapshot).

On-disk layout (all paths relative to the snapshot directory)::

    manifest.json             format version, backend, index config, lake
                              metadata (stable ids incl. removal holes),
                              stats aggregates, cost-model weights,
                              semantic parameters, per-file sizes+CRCs
    tables/t<k>/c<i>.*.npy    column backend: one raw ``.npy`` per sealed
                              array (int32 text codes, int64/float64
                              data, bool null masks) plus each text
                              dictionary as an offsets+UTF-8-blob pair
    tables/t<k>/rows.pkl      row backend: the stored tuples as one
                              pickle stream (exact round-trip for every
                              cell, arbitrary-precision ints included)
    tables/t<k>/deleted.npy   tombstone mask, present only mid-lifecycle
    stats/*                   per-token frequency table
    lake.pkl                  the lake's cell payload (class-free
                              ``(name, columns, rows)`` tuples per slot)

Numeric payloads load via ``np.load(mmap_mode="r")``: warm start is
I/O-bound, not compute-bound, and the arrays stay read-only views over
the snapshot files until the first mutation promotes them to private
copies (:meth:`ColumnTable._promote` -- copy-on-write, so a loaded
deployment keeps its full add/remove/replace lifecycle while the shared
snapshot stays untouched).

Versioning policy: ``FORMAT_VERSION`` bumps on any layout change; a
loader only accepts its own version (no silent migrations -- rebuild or
re-save). Every payload's size is checked on load and, with
``verify=True`` (the default), its CRC-32 too; truncation, corruption,
or a version/backend/hash-width mismatch raise
:class:`~repro.errors.SnapshotError` naming the offending file -- a bad
snapshot must never load into garbage results.
"""

from __future__ import annotations

import io
import json
import pickle
import zlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .engine.database import Database
from .engine.storage.catalog import ColumnDef, TableSchema
from .engine.storage.column_store import ColumnTable, _ColumnData
from .engine.storage.row_store import RowTable
from .engine.types import SqlType
from .errors import SnapshotError
from .index.alltables import IndexConfig
from .index.stats import LakeStatistics
from .lake.datalake import DataLake

FORMAT_NAME = "blend-snapshot"
FORMAT_VERSION = 1

SHARD_FORMAT_NAME = "blend-shards"
SHARD_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_SHARD_MANIFEST = "shards.json"
_CRC_CHUNK = 1 << 20


# --------------------------------------------------------------------------
# Payload I/O: every file goes through these two, so size + CRC accounting
# and SnapshotError attribution stay in one place.
# --------------------------------------------------------------------------


class _Writer:
    """Writes payload files under the snapshot root, recording each
    file's byte size and CRC-32 for the manifest."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.files: dict[str, dict[str, int]] = {}

    def _record(self, rel: str, payload: bytes) -> None:
        target = self.root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(payload)
        self.files[rel] = {"bytes": len(payload), "crc32": zlib.crc32(payload)}

    def save_array(self, rel: str, array: np.ndarray) -> str:
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
        self._record(rel, buffer.getvalue())
        return rel

    def save_text(self, rel_base: str, values) -> str:
        """An object array (or list) of ``str`` as two raw ``.npy``
        payloads: per-string UTF-8 byte lengths plus one byte blob --
        both plain dtypes, unlike the object array itself."""
        encoded = [value.encode("utf-8") for value in values]
        lengths = np.fromiter(
            (len(piece) for piece in encoded), dtype=np.int64, count=len(encoded)
        )
        blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
        self.save_array(rel_base + ".lens.npy", lengths)
        self.save_array(rel_base + ".blob.npy", blob)
        return rel_base

    def save_pickle(self, rel: str, obj) -> str:
        self._record(rel, pickle.dumps(obj, protocol=4))
        return rel


class _Reader:
    """Loads payload files, enforcing the manifest's size (always) and
    CRC-32 (``verify=True``) records before any bytes are interpreted."""

    def __init__(self, root: Path, files: dict, mmap: bool, verify: bool) -> None:
        self.root = root
        self.files = files
        self.mmap = mmap
        self.verify = verify

    def check_all(self) -> None:
        """Fail fast on the first missing, truncated, or corrupted
        payload -- before any array is handed to a consumer."""
        for rel in self.files:
            self._check(rel)

    def _require_listed(self, rel: str) -> None:
        """Refuse payload paths the manifest does not account for: an
        unlisted file would bypass the size/CRC gate entirely (a
        tampered manifest must not smuggle unverified bytes in)."""
        if rel not in self.files:
            raise SnapshotError(
                f"snapshot payload {rel!r} is not listed in {_MANIFEST}"
            )

    def _check(self, rel: str) -> Path:
        self._require_listed(rel)
        expected = self.files[rel]
        target = self.root / rel
        if not target.is_file():
            raise SnapshotError(f"snapshot payload missing: {target}")
        size = target.stat().st_size
        if size != expected["bytes"]:
            raise SnapshotError(
                f"snapshot payload truncated: {target} holds {size} bytes, "
                f"manifest records {expected['bytes']}"
            )
        if self.verify:
            crc = 0
            with open(target, "rb") as handle:
                while chunk := handle.read(_CRC_CHUNK):
                    crc = zlib.crc32(chunk, crc)
            if crc != expected["crc32"]:
                raise SnapshotError(
                    f"snapshot payload checksum mismatch: {target} "
                    f"(crc32 {crc:#010x} != recorded {expected['crc32']:#010x})"
                )
        return target

    def load_array(self, rel: str, mmap: Optional[bool] = None) -> np.ndarray:
        self._require_listed(rel)
        target = self.root / rel
        mode = "r" if (self.mmap if mmap is None else mmap) else None
        try:
            return np.load(target, mmap_mode=mode, allow_pickle=False)
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(f"cannot read snapshot payload {target}: {exc}") from exc

    def load_text_list(self, rel_base: str) -> list[str]:
        lengths = self.load_array(rel_base + ".lens.npy", mmap=False)
        blob = self.load_array(rel_base + ".blob.npy", mmap=False)
        raw = blob.tobytes()
        bounds = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=bounds[1:])
        if int(bounds[-1]) != len(raw):
            raise SnapshotError(
                f"snapshot payload {self.root / (rel_base + '.blob.npy')} holds "
                f"{len(raw)} text bytes, offsets account for {int(bounds[-1])}"
            )
        edges = bounds.tolist()
        try:
            if raw.isascii():
                # Fast path (the common case for normalised lake tokens):
                # one C-level decode, then byte offsets double as
                # character offsets.
                text = raw.decode("ascii")
                pieces = [text[a:b] for a, b in zip(edges, edges[1:])]
            else:
                pieces = [
                    raw[a:b].decode("utf-8") for a, b in zip(edges, edges[1:])
                ]
        except UnicodeDecodeError as exc:
            raise SnapshotError(
                f"cannot read snapshot payload {self.root / (rel_base + '.blob.npy')}: {exc}"
            ) from exc
        return pieces

    def load_text(self, rel_base: str) -> np.ndarray:
        pieces = self.load_text_list(rel_base)
        out = np.empty(len(pieces), dtype=object)
        out[:] = pieces
        return out

    def load_pickle(self, rel: str):
        self._require_listed(rel)
        target = self.root / rel
        try:
            return pickle.loads(target.read_bytes())
        except Exception as exc:
            raise SnapshotError(f"cannot read snapshot payload {target}: {exc}") from exc


# --------------------------------------------------------------------------
# Saving
# --------------------------------------------------------------------------


def save_blend(blend, path: Union[str, Path], include_lake: bool = True) -> Path:
    """Persist a built :class:`~repro.Blend` deployment into *path*.

    The manifest is written last, so an interrupted save leaves a
    directory no loader will accept (missing manifest) rather than a
    plausible-looking torso. With ``include_lake=False`` the snapshot
    carries lake *metadata* only and ``load`` requires the caller to
    supply the (identical) lake -- the multi-worker deployment shape
    where the lake source is already shared.
    """
    if not getattr(blend, "_indexed", False):
        raise SnapshotError("nothing to save: call build_index() first")
    root = Path(path)
    if root.exists():
        if not root.is_dir():
            raise SnapshotError(f"snapshot path {root} exists and is not a directory")
        if any(root.iterdir()):
            raise SnapshotError(
                f"refusing to overwrite non-empty directory {root}; "
                "point save() at a fresh path"
            )
    root.mkdir(parents=True, exist_ok=True)
    writer = _Writer(root)
    db: Database = blend.db

    semantic = getattr(blend, "_semantic", None)
    if semantic is not None and not db.has_table("AllVectors"):
        # enable_semantic(persist=False) keeps the vectors in memory
        # only; a snapshot persists the entire built system, so
        # serialise them in-DB now (exactly what persist=True does) --
        # otherwise load would find semantic parameters with no
        # AllVectors relation behind them.
        semantic.persist(db)

    tables_meta = []
    for position, name in enumerate(db.table_names()):
        storage = db.table(name)
        prefix = f"tables/t{position}"
        if isinstance(storage, ColumnTable):
            tables_meta.append(_save_column_table(writer, prefix, storage))
        else:
            tables_meta.append(_save_row_table(writer, prefix, storage))

    stats_meta = None
    stats = blend._stats
    if stats is None and getattr(blend, "_stats_loader", None) is not None:
        stats = blend.stats  # resolve a pending snapshot-deferred loader
    if stats is not None:
        tokens, counts = stats.snapshot_arrays()
        writer.save_text("stats/tokens", tokens)
        writer.save_array("stats/counts.npy", counts)
        stats_meta = {
            "num_tables": stats.num_tables,
            "num_cells": stats.num_cells,
            "num_columns": stats.num_columns,
            "num_rows": stats.num_rows,
            "tokens": "stats/tokens",
            "counts": "stats/counts.npy",
        }

    lake_meta = blend.lake.snapshot_meta()
    lake_meta["payload"] = None
    if include_lake:
        lake_meta["payload"] = writer.save_pickle("lake.pkl", blend.lake.snapshot_payload())

    cost_model = blend.optimizer.cost_model
    config = blend.index_config
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "backend": db.backend,
        "index_config": {
            field: getattr(config, field) for field in IndexConfig.__dataclass_fields__
        },
        "lake": lake_meta,
        "stats": stats_meta,
        "cost_model": cost_model.snapshot_state() if cost_model.is_trained() else None,
        "semantic": semantic.snapshot_meta() if semantic is not None else None,
        "tables": tables_meta,
        "files": writer.files,
    }
    (root / _MANIFEST).write_text(
        json.dumps(manifest, indent=1, sort_keys=False) + "\n", encoding="utf-8"
    )
    return root


def _table_meta(storage, kind: str) -> dict:
    return {
        "name": storage.schema.name,
        "kind": kind,
        "columns": [
            [column.name, column.sql_type.name] for column in storage.schema.columns
        ],
        "num_rows": storage.num_rows,
        "index_columns": sorted(storage._index_columns)
        if kind == "column"
        else sorted(storage._indexes),
        "cluster_keys": list(storage.cluster_keys),
        "compact_threshold": storage.compact_threshold,
        "compactions": storage.compactions,
    }


def _save_column_table(writer: _Writer, prefix: str, storage: ColumnTable) -> dict:
    meta = _table_meta(storage, "column")
    sealed, deleted = storage.snapshot_columns()
    columns_meta = []
    for i, column in enumerate(sealed):
        base = f"{prefix}/c{i}"
        column_meta: dict = {"type": column.sql_type.name}
        if column.codes is not None:
            column_meta["codes"] = writer.save_array(f"{base}.codes.npy", column.codes)
            column_meta["dictionary"] = writer.save_text(
                f"{base}.dict", column.dictionary
            )
        if column.data is not None:
            column_meta["data"] = writer.save_array(f"{base}.data.npy", column.data)
        if column.null is not None:
            column_meta["null"] = writer.save_array(f"{base}.null.npy", column.null)
        columns_meta.append(column_meta)
    meta["payload"] = columns_meta
    meta["num_deleted"] = storage._num_deleted
    meta["deleted"] = (
        writer.save_array(f"{prefix}/deleted.npy", deleted)
        if deleted is not None
        else None
    )
    return meta


def _save_row_table(writer: _Writer, prefix: str, storage: RowTable) -> dict:
    meta = _table_meta(storage, "row")
    rows, deleted = storage.snapshot_rows()
    meta["payload"] = writer.save_pickle(f"{prefix}/rows.pkl", rows)
    meta["num_deleted"] = storage._num_deleted
    meta["deleted"] = (
        writer.save_array(f"{prefix}/deleted.npy", np.asarray(deleted, dtype=bool))
        if deleted is not None
        else None
    )
    return meta


# --------------------------------------------------------------------------
# Sharded snapshots (scatter-gather serving)
# --------------------------------------------------------------------------


def save_sharded(
    blend, path: Union[str, Path], num_shards: int, include_lake: bool = True
) -> Path:
    """Persist *blend* as K per-shard snapshots plus a routing manifest.

    The lake is partitioned with :meth:`DataLake.shard_plan` (contiguous,
    cell-balanced -- the same partitioning the sharded *build* uses); each
    shard becomes a standalone :func:`save_blend` snapshot under
    ``<path>/shard<i>/`` whose lake places every table at its **global**
    id slot, so per-shard ``AllTables`` rows carry globally-stable
    ``TableId``s and per-shard seeker partials merge without translation.
    ``shards.json`` records the table-id -> shard routing and the next
    free global id, which is everything a
    :class:`~repro.serving.sharded.ShardCoordinator` needs to start.

    Per-table indexing is deterministic (including per-table seeded
    shuffle permutations), so each shard's rebuilt index is byte-identical
    to the corresponding slice of the single-process index.
    """
    if not getattr(blend, "_indexed", False):
        raise SnapshotError("nothing to save: call build_index() first")
    shards = blend.lake.shard_plan(num_shards)
    if not shards:
        raise SnapshotError("cannot shard-save an empty lake")
    root = Path(path)
    if root.exists():
        if not root.is_dir():
            raise SnapshotError(f"snapshot path {root} exists and is not a directory")
        if any(root.iterdir()):
            raise SnapshotError(
                f"refusing to overwrite non-empty directory {root}; "
                "point save_sharded() at a fresh path"
            )
    root.mkdir(parents=True, exist_ok=True)

    semantic = getattr(blend, "_semantic", None)
    semantic_meta = semantic.snapshot_meta() if semantic is not None else None
    shard_names: list[str] = []
    table_shard: dict[str, int] = {}
    for i, shard in enumerate(shards):
        shard_lake = DataLake.from_shard(shard, name=f"{blend.lake.name}/shard{i}")
        sub = type(blend)(
            shard_lake, backend=blend.db.backend, index_config=blend.index_config
        )
        sub.build_index()
        if semantic_meta is not None:
            from .core.semantic import SemanticIndex

            sub._semantic = SemanticIndex(
                shard_lake,
                dimensions=semantic_meta["dimensions"],
                m=semantic_meta["m"],
                ef_construction=semantic_meta["ef_construction"],
                seed=semantic_meta["seed"],
            )
            sub._semantic.persist(sub.db)
        name = f"shard{i}"
        save_blend(sub, root / name, include_lake=include_lake)
        shard_names.append(name)
        for table_id in shard.table_ids:
            table_shard[str(int(table_id))] = i

    manifest = {
        "format": SHARD_FORMAT_NAME,
        "format_version": SHARD_FORMAT_VERSION,
        "backend": blend.db.backend,
        "hash_size": blend.index_config.hash_size,
        "lake_name": blend.lake.name,
        "num_shards": len(shard_names),
        "shards": shard_names,
        "table_shard": table_shard,
        "next_table_id": blend.lake.num_slots,
        "semantic": semantic_meta,
    }
    (root / _SHARD_MANIFEST).write_text(
        json.dumps(manifest, indent=1, sort_keys=False) + "\n", encoding="utf-8"
    )
    return root


def read_shard_manifest(path: Union[str, Path]) -> dict:
    """Parse and version-check a :func:`save_sharded` routing manifest."""
    root = Path(path)
    target = root / _SHARD_MANIFEST
    if not target.is_file():
        raise SnapshotError(f"not a sharded snapshot (missing {target})")
    try:
        manifest = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot parse shard manifest {target}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != SHARD_FORMAT_NAME:
        raise SnapshotError(f"{target} is not a {SHARD_FORMAT_NAME} manifest")
    version = manifest.get("format_version")
    if version != SHARD_FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported shard manifest version {version!r} in {target}: "
            f"this build reads version {SHARD_FORMAT_VERSION} only"
        )
    for key in ("backend", "shards", "table_shard", "next_table_id"):
        if key not in manifest:
            raise SnapshotError(f"shard manifest {target} lacks the {key!r} section")
    if len(manifest["shards"]) != manifest.get("num_shards", len(manifest["shards"])):
        raise SnapshotError(
            f"shard manifest {target} lists {len(manifest['shards'])} shard "
            f"directories but records num_shards={manifest.get('num_shards')}"
        )
    return manifest


# --------------------------------------------------------------------------
# Loading
# --------------------------------------------------------------------------


def read_manifest(path: Union[str, Path]) -> dict:
    """Parse and version-check a snapshot manifest (shared by the loader
    and external tooling that wants to inspect a snapshot cheaply)."""
    root = Path(path)
    target = root / _MANIFEST
    if not target.is_file():
        raise SnapshotError(f"not a snapshot (missing {target})")
    try:
        manifest = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot parse snapshot manifest {target}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise SnapshotError(f"{target} is not a {FORMAT_NAME} manifest")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version {version!r} in {target}: "
            f"this build reads version {FORMAT_VERSION} only "
            "(re-save the snapshot with the current code)"
        )
    for key in ("backend", "index_config", "lake", "tables", "files"):
        if key not in manifest:
            raise SnapshotError(f"snapshot manifest {target} lacks the {key!r} section")
    return manifest


def load_blend(
    blend_cls,
    path: Union[str, Path],
    lake: Optional[DataLake] = None,
    backend: Optional[str] = None,
    hash_size: Optional[int] = None,
    mmap: bool = True,
    verify: bool = True,
):
    """Restore a :class:`~repro.Blend` deployment from a snapshot.

    *lake* skips the snapshot's cell payload and serves from the given
    (validated, identical) lake instead; *backend* / *hash_size* assert
    the snapshot matches the deployment the caller expects. ``mmap``
    keeps numeric payloads as read-only file-backed views (copy-on-write
    on first mutation); ``verify`` additionally checks every payload's
    CRC-32 (sizes are always checked).
    """
    root = Path(path)
    manifest = read_manifest(root)
    manifest_path = root / _MANIFEST

    if backend is not None and backend != manifest["backend"]:
        raise SnapshotError(
            f"backend mismatch: snapshot {manifest_path} was saved from the "
            f"{manifest['backend']!r} backend, caller expects {backend!r}"
        )
    config_fields = {
        key: value
        for key, value in manifest["index_config"].items()
        if key in IndexConfig.__dataclass_fields__
    }
    config = IndexConfig(**config_fields)
    if hash_size is not None and hash_size != config.hash_size:
        raise SnapshotError(
            f"hash-width mismatch: snapshot {manifest_path} was built with "
            f"hash_size={config.hash_size}, caller expects {hash_size}"
        )
    if config.hash_size > 63 and manifest["backend"] == "column":
        raise SnapshotError(
            f"inconsistent snapshot manifest {manifest_path}: "
            f"hash_size={config.hash_size} super keys cannot exist in a "
            "column-backend SuperKey column"
        )

    reader = _Reader(root, manifest["files"], mmap=mmap, verify=verify)
    reader.check_all()

    lake_meta = manifest["lake"]
    if lake is not None:
        mismatch = lake.snapshot_mismatch(lake_meta)
        if mismatch is not None:
            raise SnapshotError(
                f"supplied lake does not match snapshot {manifest_path}: {mismatch}"
            )
    else:
        if lake_meta["payload"] is None:
            raise SnapshotError(
                f"snapshot {manifest_path} was saved without the lake payload "
                "(include_lake=False); pass the lake to load()"
            )
        payload = reader.load_pickle(lake_meta["payload"])
        lake = DataLake.from_snapshot(
            payload, lake_meta["name"], lake_meta["generation"]
        )

    db = Database(backend=manifest["backend"])
    for meta in manifest["tables"]:
        if meta["kind"] == "column":
            db.attach_table(_load_column_table(reader, meta))
        else:
            db.attach_table(_load_row_table(reader, meta))

    blend = blend_cls(lake, backend=manifest["backend"], index_config=config)
    blend.db = db
    blend._indexed = True
    if manifest.get("stats") is not None:
        stats_meta = manifest["stats"]

        def _load_stats(
            reader: _Reader = reader, meta: dict = stats_meta
        ) -> LakeStatistics:
            # Deferred: the frequency table is the one load payload that
            # needs per-token Python objects, so it materialises on first
            # optimizer use instead of slowing the warm start.
            return LakeStatistics.from_snapshot(
                reader.load_text_list(meta["tokens"]),
                reader.load_array(meta["counts"], mmap=False),
                num_tables=meta["num_tables"],
                num_cells=meta["num_cells"],
                num_columns=meta["num_columns"],
                num_rows=meta["num_rows"],
            )

        blend._stats_loader = _load_stats
    if manifest.get("cost_model"):
        from .core.optimizer.cost_model import CostModel
        from .core.optimizer.planner import Optimizer

        blend.optimizer = Optimizer(CostModel.from_snapshot(manifest["cost_model"]))
    if manifest.get("semantic") is not None:
        from .core.semantic import SemanticIndex

        semantic_meta = manifest["semantic"]
        blend._semantic = SemanticIndex.load(
            db,
            lake,
            dimensions=semantic_meta["dimensions"],
            seed=semantic_meta["seed"],
            m=semantic_meta.get("m"),
            ef_construction=semantic_meta.get("ef_construction"),
        )
    return blend


def _restore_schema(meta: dict) -> TableSchema:
    try:
        columns = [
            ColumnDef(name, SqlType[type_name]) for name, type_name in meta["columns"]
        ]
    except KeyError as exc:
        raise SnapshotError(
            f"snapshot manifest names unknown SQL type {exc} for table "
            f"{meta.get('name')!r}"
        ) from None
    return TableSchema(meta["name"], columns)


def _load_column_table(reader: _Reader, meta: dict) -> ColumnTable:
    schema = _restore_schema(meta)
    if len(meta["payload"]) != len(schema.columns):
        raise SnapshotError(
            f"snapshot manifest lists {len(meta['payload'])} column payloads "
            f"for table {meta['name']!r} of width {len(schema.columns)}"
        )
    sealed: list[_ColumnData] = []
    lengths = set()
    for column_def, column_meta in zip(schema.columns, meta["payload"]):
        column = _ColumnData(column_def.sql_type)
        if "codes" in column_meta:
            column.codes = reader.load_array(column_meta["codes"])
            column.dictionary = reader.load_text(column_meta["dictionary"])
            lengths.add(len(column.codes))
        if "data" in column_meta:
            column.data = reader.load_array(column_meta["data"])
            lengths.add(len(column.data))
        if "null" in column_meta:
            column.null = reader.load_array(column_meta["null"])
        sealed.append(column)
    if len(lengths) > 1:
        raise SnapshotError(
            f"snapshot arrays for table {meta['name']!r} have ragged lengths "
            f"{sorted(lengths)}"
        )
    deleted = (
        reader.load_array(meta["deleted"], mmap=False)
        if meta.get("deleted")
        else None
    )
    storage_rows = lengths.pop() if lengths else 0
    if storage_rows - (meta.get("num_deleted") or 0) != meta["num_rows"]:
        raise SnapshotError(
            f"snapshot arrays for table {meta['name']!r} hold {storage_rows} "
            f"rows; manifest records {meta['num_rows']} live + "
            f"{meta.get('num_deleted') or 0} deleted"
        )
    return ColumnTable.from_snapshot(
        schema,
        sealed,
        num_rows=meta["num_rows"],
        deleted=deleted,
        num_deleted=meta.get("num_deleted") or 0,
        index_columns=meta.get("index_columns", ()),
        cluster_keys=meta.get("cluster_keys", ()),
        compact_threshold=meta.get("compact_threshold", 0.3),
        compactions=meta.get("compactions", 0),
    )


def _load_row_table(reader: _Reader, meta: dict) -> RowTable:
    schema = _restore_schema(meta)
    rows = reader.load_pickle(meta["payload"])
    if not isinstance(rows, list):
        raise SnapshotError(
            f"snapshot payload {meta['payload']!r} for table {meta['name']!r} "
            "does not hold a row list"
        )
    deleted = None
    if meta.get("deleted"):
        deleted = reader.load_array(meta["deleted"], mmap=False).tolist()
    table = RowTable.from_snapshot(
        schema,
        rows,
        deleted=deleted,
        index_columns=meta.get("index_columns", ()),
        cluster_keys=meta.get("cluster_keys", ()),
        compact_threshold=meta.get("compact_threshold", 0.3),
        compactions=meta.get("compactions", 0),
    )
    if table.num_rows != meta["num_rows"]:
        raise SnapshotError(
            f"snapshot payload for table {meta['name']!r} holds "
            f"{table.num_rows} live rows; manifest records {meta['num_rows']}"
        )
    return table
