"""Persistent index snapshots: versioned save/load with mmap warm start.

BLEND's offline phase is expensive by design -- one comprehensive
``AllTables`` build over the whole lake -- and the online phase is meant
to serve from it indefinitely (paper §V). This module makes that split
operational: :meth:`repro.Blend.save` persists the *entire built system*
into a directory, and :meth:`repro.Blend.load` restores it in
milliseconds, so serving processes warm-start from disk instead of
re-running the build (N workers can mmap one shared snapshot).

On-disk layout (all paths relative to the snapshot directory)::

    manifest.json             format version, backend, index config, lake
                              metadata (stable ids incl. removal holes),
                              stats aggregates, cost-model weights,
                              semantic parameters, per-file sizes+CRCs
    tables/t<k>/c<i>.*.npy    column backend: one raw ``.npy`` per sealed
                              array (int32 text codes, int64/float64
                              data, bool null masks) plus each text
                              dictionary as an offsets+UTF-8-blob pair
    tables/t<k>/rows.pkl      row backend: the stored tuples as one
                              pickle stream (exact round-trip for every
                              cell, arbitrary-precision ints included)
    tables/t<k>/deleted.npy   tombstone mask, present only mid-lifecycle
    stats/*                   per-token frequency table
    lake.pkl                  the lake's cell payload (class-free
                              ``(name, columns, rows)`` tuples per slot)

Numeric payloads load via ``np.load(mmap_mode="r")``: warm start is
I/O-bound, not compute-bound, and the arrays stay read-only views over
the snapshot files **forever** -- a loaded deployment's mutations land
in the storage layer's write-ahead delta segments, never in the base
arrays, so N serving workers keep sharing one snapshot through an
arbitrary lifecycle.

**Incremental persistence** builds on that split: a deployment loaded
from a snapshot records its base identity (:class:`SnapshotBase`), and
:func:`save_blend_delta` persists only the lake slots that changed since
-- a ``delta.json`` manifest (written atomically; the previous delta
stays valid on a crash) plus one class-free table payload per changed
slot under ``delta/``, all CRC-recorded like base payloads. Loading a
base+delta directory replays the recorded ops through the ordinary
lifecycle (removals first, then adds ascending by id), which converges
to the mutated lake exactly; ``load(..., delta=False)`` ignores the
delta layer, so a corrupt delta never takes the base down with it. A
compactor (:mod:`repro.serving.compaction`) folds base+delta into a
fresh full snapshot -- the next base generation.

Versioning policy: ``FORMAT_VERSION`` bumps on any layout change (v2:
``snapshot_id`` + per-slot lake generations, required by the delta
layer); a loader only accepts its own version (no silent migrations --
rebuild or re-save). Every payload's size is checked on load and, with
``verify=True`` (the default), its CRC-32 too; truncation, corruption,
or a version/backend/hash-width mismatch raise
:class:`~repro.errors.SnapshotError` naming the offending file -- a bad
snapshot must never load into garbage results.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .engine.database import Database
from .engine.storage.catalog import ColumnDef, TableSchema
from .engine.storage.column_store import ColumnTable, _ColumnData
from .engine.storage.row_store import RowTable
from .engine.types import SqlType
from .errors import SnapshotError
from .index.alltables import IndexConfig
from .index.stats import LakeStatistics
from .lake.datalake import DataLake
from .lake.table import Table

FORMAT_NAME = "blend-snapshot"
FORMAT_VERSION = 2

SHARD_FORMAT_NAME = "blend-shards"
SHARD_FORMAT_VERSION = 1

DELTA_FORMAT_NAME = "blend-delta"
DELTA_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_SHARD_MANIFEST = "shards.json"
_DELTA_MANIFEST = "delta.json"
_DELTA_DIR = "delta"
_CRC_CHUNK = 1 << 20


@dataclass(frozen=True)
class SnapshotBase:
    """Identity of the base snapshot a deployment was loaded from -- what
    the incremental save path diffs the live lake against."""

    path: str
    snapshot_id: str
    generation: int
    live_slots: tuple[bool, ...]


def _snapshot_id(files: dict) -> str:
    """Deterministic identity of a snapshot's payload set (the sizes and
    CRCs of every file) -- what ties a delta segment to its base."""
    digest = hashlib.sha256(json.dumps(files, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:16]


# --------------------------------------------------------------------------
# Payload I/O: every file goes through these two, so size + CRC accounting
# and SnapshotError attribution stay in one place.
# --------------------------------------------------------------------------


class _Writer:
    """Writes payload files under the snapshot root, recording each
    file's byte size and CRC-32 for the manifest."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.files: dict[str, dict[str, int]] = {}

    def _record(self, rel: str, payload: bytes) -> None:
        target = self.root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(payload)
        self.files[rel] = {"bytes": len(payload), "crc32": zlib.crc32(payload)}

    def save_array(self, rel: str, array: np.ndarray) -> str:
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
        self._record(rel, buffer.getvalue())
        return rel

    def save_text(self, rel_base: str, values) -> str:
        """An object array (or list) of ``str`` as two raw ``.npy``
        payloads: per-string UTF-8 byte lengths plus one byte blob --
        both plain dtypes, unlike the object array itself."""
        encoded = [value.encode("utf-8") for value in values]
        lengths = np.fromiter(
            (len(piece) for piece in encoded), dtype=np.int64, count=len(encoded)
        )
        blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
        self.save_array(rel_base + ".lens.npy", lengths)
        self.save_array(rel_base + ".blob.npy", blob)
        return rel_base

    def save_pickle(self, rel: str, obj) -> str:
        self._record(rel, pickle.dumps(obj, protocol=4))
        return rel


class _Reader:
    """Loads payload files, enforcing the manifest's size (always) and
    CRC-32 (``verify=True``) records before any bytes are interpreted."""

    def __init__(self, root: Path, files: dict, mmap: bool, verify: bool) -> None:
        self.root = root
        self.files = files
        self.mmap = mmap
        self.verify = verify

    def check_all(self) -> None:
        """Fail fast on the first missing, truncated, or corrupted
        payload -- before any array is handed to a consumer."""
        for rel in self.files:
            self._check(rel)

    def _require_listed(self, rel: str) -> None:
        """Refuse payload paths the manifest does not account for: an
        unlisted file would bypass the size/CRC gate entirely (a
        tampered manifest must not smuggle unverified bytes in)."""
        if rel not in self.files:
            raise SnapshotError(
                f"snapshot payload {rel!r} is not listed in {_MANIFEST}"
            )

    def _check(self, rel: str) -> Path:
        self._require_listed(rel)
        expected = self.files[rel]
        target = self.root / rel
        if not target.is_file():
            raise SnapshotError(f"snapshot payload missing: {target}")
        size = target.stat().st_size
        if size != expected["bytes"]:
            raise SnapshotError(
                f"snapshot payload truncated: {target} holds {size} bytes, "
                f"manifest records {expected['bytes']}"
            )
        if self.verify:
            crc = 0
            with open(target, "rb") as handle:
                while chunk := handle.read(_CRC_CHUNK):
                    crc = zlib.crc32(chunk, crc)
            if crc != expected["crc32"]:
                raise SnapshotError(
                    f"snapshot payload checksum mismatch: {target} "
                    f"(crc32 {crc:#010x} != recorded {expected['crc32']:#010x})"
                )
        return target

    def load_array(self, rel: str, mmap: Optional[bool] = None) -> np.ndarray:
        self._require_listed(rel)
        target = self.root / rel
        mode = "r" if (self.mmap if mmap is None else mmap) else None
        try:
            return np.load(target, mmap_mode=mode, allow_pickle=False)
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(f"cannot read snapshot payload {target}: {exc}") from exc

    def load_text_list(self, rel_base: str) -> list[str]:
        lengths = self.load_array(rel_base + ".lens.npy", mmap=False)
        blob = self.load_array(rel_base + ".blob.npy", mmap=False)
        raw = blob.tobytes()
        bounds = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=bounds[1:])
        if int(bounds[-1]) != len(raw):
            raise SnapshotError(
                f"snapshot payload {self.root / (rel_base + '.blob.npy')} holds "
                f"{len(raw)} text bytes, offsets account for {int(bounds[-1])}"
            )
        edges = bounds.tolist()
        try:
            if raw.isascii():
                # Fast path (the common case for normalised lake tokens):
                # one C-level decode, then byte offsets double as
                # character offsets.
                text = raw.decode("ascii")
                pieces = [text[a:b] for a, b in zip(edges, edges[1:])]
            else:
                pieces = [
                    raw[a:b].decode("utf-8") for a, b in zip(edges, edges[1:])
                ]
        except UnicodeDecodeError as exc:
            raise SnapshotError(
                f"cannot read snapshot payload {self.root / (rel_base + '.blob.npy')}: {exc}"
            ) from exc
        return pieces

    def load_text(self, rel_base: str) -> np.ndarray:
        pieces = self.load_text_list(rel_base)
        out = np.empty(len(pieces), dtype=object)
        out[:] = pieces
        return out

    def load_pickle(self, rel: str):
        self._require_listed(rel)
        target = self.root / rel
        try:
            return pickle.loads(target.read_bytes())
        except Exception as exc:
            raise SnapshotError(f"cannot read snapshot payload {target}: {exc}") from exc


# --------------------------------------------------------------------------
# Saving
# --------------------------------------------------------------------------


def save_blend(
    blend,
    path: Union[str, Path],
    include_lake: bool = True,
    overwrite: bool = False,
) -> Path:
    """Persist a built :class:`~repro.Blend` deployment into *path*.

    The manifest is written last, so an interrupted save leaves a
    directory no loader will accept (missing manifest) rather than a
    plausible-looking torso. A non-empty target is refused unless
    ``overwrite=True``, which stages the new snapshot in a sibling
    temporary directory and swaps it in by rename -- at no point does
    the target hold a torn mix of old and new payloads, and readers
    that already mmap'd the old files keep them alive until unmapped.
    With ``include_lake=False`` the snapshot carries lake *metadata*
    only and ``load`` requires the caller to supply the (identical)
    lake -- the multi-worker deployment shape where the lake source is
    already shared.
    """
    if not getattr(blend, "_indexed", False):
        raise SnapshotError("nothing to save: call build_index() first")
    root = Path(path)
    if root.exists() and not root.is_dir():
        raise SnapshotError(f"snapshot path {root} exists and is not a directory")
    populated = root.is_dir() and any(root.iterdir())
    if populated and not overwrite:
        raise SnapshotError(
            f"refusing to overwrite non-empty directory {root}; "
            "point save() at a fresh path (or pass overwrite=True for an "
            "atomic replace)"
        )
    if populated:
        staging = root.parent / f".{root.name}.staging-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        target_root = staging
    else:
        target_root = root
    target_root.mkdir(parents=True, exist_ok=True)
    writer = _Writer(target_root)
    db: Database = blend.db

    semantic = getattr(blend, "_semantic", None)
    if semantic is not None and not db.has_table("AllVectors"):
        # enable_semantic(persist=False) keeps the vectors in memory
        # only; a snapshot persists the entire built system, so
        # serialise them in-DB now (exactly what persist=True does) --
        # otherwise load would find semantic parameters with no
        # AllVectors relation behind them.
        semantic.persist(db)

    tables_meta = []
    for position, name in enumerate(db.table_names()):
        storage = db.table(name)
        prefix = f"tables/t{position}"
        if isinstance(storage, ColumnTable):
            tables_meta.append(_save_column_table(writer, prefix, storage))
        else:
            tables_meta.append(_save_row_table(writer, prefix, storage))

    stats_meta = None
    stats = blend._stats
    if stats is None and getattr(blend, "_stats_loader", None) is not None:
        stats = blend.stats  # resolve a pending snapshot-deferred loader
    if stats is not None:
        tokens, counts = stats.snapshot_arrays()
        writer.save_text("stats/tokens", tokens)
        writer.save_array("stats/counts.npy", counts)
        stats_meta = {
            "num_tables": stats.num_tables,
            "num_cells": stats.num_cells,
            "num_columns": stats.num_columns,
            "num_rows": stats.num_rows,
            "tokens": "stats/tokens",
            "counts": "stats/counts.npy",
        }

    lake_meta = blend.lake.snapshot_meta()
    lake_meta["payload"] = None
    if include_lake:
        lake_meta["payload"] = writer.save_pickle("lake.pkl", blend.lake.snapshot_payload())

    cost_model = blend.optimizer.cost_model
    config = blend.index_config
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "snapshot_id": _snapshot_id(writer.files),
        "backend": db.backend,
        "index_config": {
            field: getattr(config, field) for field in IndexConfig.__dataclass_fields__
        },
        "lake": lake_meta,
        "stats": stats_meta,
        "cost_model": cost_model.snapshot_state() if cost_model.is_trained() else None,
        "semantic": semantic.snapshot_meta() if semantic is not None else None,
        "tables": tables_meta,
        "files": writer.files,
    }
    (target_root / _MANIFEST).write_text(
        json.dumps(manifest, indent=1, sort_keys=False) + "\n", encoding="utf-8"
    )
    if populated:
        # Swap the staged snapshot in: retire the old directory by
        # rename (atomic), move the staging directory into place, then
        # drop the old payloads. A failure between the renames restores
        # the original directory.
        retired = root.parent / f".{root.name}.retired-{os.getpid()}"
        if retired.exists():
            shutil.rmtree(retired)
        os.rename(root, retired)
        try:
            os.rename(target_root, root)
        except Exception:
            os.rename(retired, root)
            shutil.rmtree(target_root, ignore_errors=True)
            raise
        shutil.rmtree(retired)
    if include_lake:
        # Adopt the directory just written as this deployment's base, so
        # subsequent save() calls into it are incremental. Metadata-only
        # snapshots are not self-contained and cannot anchor a delta.
        blend._snapshot_base = SnapshotBase(
            path=str(root.resolve()),
            snapshot_id=manifest["snapshot_id"],
            generation=int(lake_meta["generation"]),
            live_slots=tuple(slot is not None for slot in lake_meta["slots"]),
        )
    return root


def _table_meta(storage, kind: str) -> dict:
    return {
        "name": storage.schema.name,
        "kind": kind,
        "columns": [
            [column.name, column.sql_type.name] for column in storage.schema.columns
        ],
        "num_rows": storage.num_rows,
        "index_columns": sorted(storage._index_columns)
        if kind == "column"
        else sorted(storage._indexes),
        "cluster_keys": list(storage.cluster_keys),
        "compact_threshold": storage.compact_threshold,
        "compactions": storage.compactions,
    }


def _save_column_table(writer: _Writer, prefix: str, storage: ColumnTable) -> dict:
    meta = _table_meta(storage, "column")
    sealed, deleted = storage.snapshot_columns()
    columns_meta = []
    for i, column in enumerate(sealed):
        base = f"{prefix}/c{i}"
        column_meta: dict = {"type": column.sql_type.name}
        if column.codes is not None:
            column_meta["codes"] = writer.save_array(f"{base}.codes.npy", column.codes)
            column_meta["dictionary"] = writer.save_text(
                f"{base}.dict", column.dictionary
            )
        if column.data is not None:
            column_meta["data"] = writer.save_array(f"{base}.data.npy", column.data)
        if column.null is not None:
            column_meta["null"] = writer.save_array(f"{base}.null.npy", column.null)
        columns_meta.append(column_meta)
    meta["payload"] = columns_meta
    meta["num_deleted"] = storage._num_deleted
    meta["deleted"] = (
        writer.save_array(f"{prefix}/deleted.npy", deleted)
        if deleted is not None
        else None
    )
    return meta


def _save_row_table(writer: _Writer, prefix: str, storage: RowTable) -> dict:
    meta = _table_meta(storage, "row")
    rows, deleted = storage.snapshot_rows()
    meta["payload"] = writer.save_pickle(f"{prefix}/rows.pkl", rows)
    meta["num_deleted"] = storage._num_deleted
    meta["deleted"] = (
        writer.save_array(f"{prefix}/deleted.npy", np.asarray(deleted, dtype=bool))
        if deleted is not None
        else None
    )
    return meta


# --------------------------------------------------------------------------
# Incremental (base + delta) persistence
# --------------------------------------------------------------------------


def save_blend_delta(blend, path: Union[str, Path]) -> Path:
    """Persist only the mutations since *blend*'s base snapshot -- O(delta)
    where a full :func:`save_blend` is O(lake).

    The delta is the diff between the live lake and the recorded base:
    per-slot generation stamps mark the slots added or replaced since the
    base, liveness marks the removals. Each changed slot's table is
    written as one class-free pickle under ``delta/`` and ``delta.json``
    records the op list with sizes + CRCs, written atomically
    (write-to-temp + rename) so a crash leaves the previous delta -- or
    the bare base -- loadable. Every save rewrites the full
    diff-from-base (bounded by compaction, which starts a fresh base
    generation), so saves are idempotent and self-contained.
    """
    if not getattr(blend, "_indexed", False):
        raise SnapshotError("nothing to save: call build_index() first")
    base: Optional[SnapshotBase] = getattr(blend, "_snapshot_base", None)
    root = Path(path)
    if base is None or Path(base.path) != root.resolve():
        raise SnapshotError(
            f"cannot write a delta into {root}: this deployment was not "
            "loaded from that snapshot (an incremental save targets the "
            "base it was loaded from)"
        )
    manifest = read_manifest(root)
    if manifest.get("snapshot_id") != base.snapshot_id:
        raise SnapshotError(
            f"base snapshot {root} changed since this deployment loaded it "
            f"(snapshot id {manifest.get('snapshot_id')!r} != recorded "
            f"{base.snapshot_id!r}); refusing an incremental save"
        )
    if manifest["lake"].get("payload") is None:
        raise SnapshotError(
            f"base snapshot {root} was saved without its lake payload "
            "(include_lake=False); incremental save needs a self-contained base"
        )
    lake = blend.lake
    writer = _Writer(root)
    ops: list[dict] = []
    base_slots = base.live_slots
    for table_id in range(max(lake.num_slots, len(base_slots))):
        base_live = table_id < len(base_slots) and base_slots[table_id]
        live = lake.has_id(table_id)
        if base_live and not live:
            ops.append({"op": "remove", "table_id": table_id})
            continue
        if not live:
            continue
        stamp = lake.slot_stamp(table_id)
        if base_live and stamp <= base.generation:
            continue  # untouched since the base snapshot
        table = lake.by_id(table_id)
        rel = f"{_DELTA_DIR}/t{table_id}.g{stamp}.pkl"
        writer.save_pickle(rel, (table.name, list(table.columns), table.rows))
        ops.append(
            {
                "op": "replace" if base_live else "add",
                "table_id": table_id,
                "payload": rel,
            }
        )
    delta_manifest = {
        "format": DELTA_FORMAT_NAME,
        "format_version": DELTA_FORMAT_VERSION,
        "base_id": base.snapshot_id,
        "base_generation": base.generation,
        "generation": lake.generation,
        "ops": ops,
        "files": writer.files,
    }
    target = root / _DELTA_MANIFEST
    staging = root / (_DELTA_MANIFEST + ".tmp")
    staging.write_text(
        json.dumps(delta_manifest, indent=1, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    os.replace(staging, target)
    # Only now drop payloads the new manifest no longer references
    # (slots that changed again, or were removed, since an earlier
    # delta save) -- a crash before this point leaves them as orphans
    # the next successful save collects.
    keep = set(writer.files)
    delta_dir = root / _DELTA_DIR
    if delta_dir.is_dir():
        for payload in delta_dir.glob("*.pkl"):
            if f"{_DELTA_DIR}/{payload.name}" not in keep:
                payload.unlink()
    return root


def read_delta_manifest(path: Union[str, Path]) -> Optional[dict]:
    """Parse and version-check a snapshot directory's delta manifest;
    ``None`` when the directory holds no delta layer."""
    root = Path(path)
    target = root / _DELTA_MANIFEST
    if not target.is_file():
        return None
    try:
        manifest = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot parse delta manifest {target}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != DELTA_FORMAT_NAME:
        raise SnapshotError(f"{target} is not a {DELTA_FORMAT_NAME} manifest")
    version = manifest.get("format_version")
    if version != DELTA_FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported delta format version {version!r} in {target}: "
            f"this build reads version {DELTA_FORMAT_VERSION} only"
        )
    for key in ("base_id", "generation", "ops", "files"):
        if key not in manifest:
            raise SnapshotError(f"delta manifest {target} lacks the {key!r} section")
    return manifest


def _apply_delta(blend, root: Path, manifest: dict, delta: dict, verify: bool) -> None:
    """Replay a delta manifest's ops through *blend*'s ordinary lifecycle.

    All removals (and the removal half of replacements) are applied
    first, then adds in ascending id order -- any live op history
    converges to the same lake this way, and a dying table's name can
    never collide with an arriving one. Statistics are deferred through
    the replay and folded into the snapshot's lazy stats loader, keeping
    the warm start free of per-token work.
    """
    delta_path = root / _DELTA_MANIFEST
    base_id = manifest.get("snapshot_id")
    if delta.get("base_id") != base_id:
        raise SnapshotError(
            f"delta manifest {delta_path} was written against base snapshot "
            f"{delta.get('base_id')!r}; this base is {base_id!r}"
        )
    files = delta.get("files", {})
    reader = _Reader(root, files, mmap=False, verify=verify)
    reader.check_all()
    removes: list[int] = []
    adds: list[tuple[int, str]] = []
    for op in delta.get("ops", ()):
        kind = op.get("op") if isinstance(op, dict) else None
        table_id = op.get("table_id") if isinstance(op, dict) else None
        if kind not in ("add", "remove", "replace") or not isinstance(table_id, int):
            raise SnapshotError(f"malformed op {op!r} in delta manifest {delta_path}")
        if kind in ("remove", "replace"):
            removes.append(table_id)
        if kind in ("add", "replace"):
            rel = op.get("payload")
            if not isinstance(rel, str):
                raise SnapshotError(
                    f"op for table id {table_id} in delta manifest {delta_path} "
                    "lacks a payload"
                )
            adds.append((table_id, rel))
    base_loader = blend._stats_loader
    blend._stats_loader = None  # defer statistics through the replay
    replayed: list[tuple[str, Table]] = []
    try:
        for table_id in sorted(removes):
            replayed.append(("remove", blend.remove_table(table_id)))
        for table_id, rel in sorted(adds):
            payload = reader.load_pickle(rel)
            if not (isinstance(payload, (list, tuple)) and len(payload) == 3):
                raise SnapshotError(
                    f"delta payload {root / rel} does not hold a "
                    "(name, columns, rows) table"
                )
            name, columns, rows = payload
            table = Table(name, list(columns), rows)
            blend.add_table(table, table_id=table_id)
            replayed.append(("add", table))
    except SnapshotError:
        raise
    except Exception as exc:
        # A structurally-valid manifest whose ops don't fit the base
        # (dangling ids, occupied slots, bad cells) must fail the load.
        raise SnapshotError(
            f"cannot replay delta manifest {delta_path}: {exc}"
        ) from exc
    if base_loader is not None:

        def _stats_with_delta(loader=base_loader, ops=tuple(replayed)):
            stats = loader()
            for kind, table in ops:
                if kind == "remove":
                    stats.remove_table(table)
                else:
                    stats.add_table(table)
            return stats

        blend._stats_loader = _stats_with_delta
    blend.lake._generation = int(delta["generation"])


# --------------------------------------------------------------------------
# Sharded snapshots (scatter-gather serving)
# --------------------------------------------------------------------------


def save_sharded(
    blend, path: Union[str, Path], num_shards: int, include_lake: bool = True
) -> Path:
    """Persist *blend* as K per-shard snapshots plus a routing manifest.

    The lake is partitioned with :meth:`DataLake.shard_plan` (contiguous,
    cell-balanced -- the same partitioning the sharded *build* uses); each
    shard becomes a standalone :func:`save_blend` snapshot under
    ``<path>/shard<i>/`` whose lake places every table at its **global**
    id slot, so per-shard ``AllTables`` rows carry globally-stable
    ``TableId``s and per-shard seeker partials merge without translation.
    ``shards.json`` records the table-id -> shard routing and the next
    free global id, which is everything a
    :class:`~repro.serving.sharded.ShardCoordinator` needs to start.

    Per-table indexing is deterministic (including per-table seeded
    shuffle permutations), so each shard's rebuilt index is byte-identical
    to the corresponding slice of the single-process index.
    """
    if not getattr(blend, "_indexed", False):
        raise SnapshotError("nothing to save: call build_index() first")
    shards = blend.lake.shard_plan(num_shards)
    if not shards:
        raise SnapshotError("cannot shard-save an empty lake")
    root = Path(path)
    if root.exists():
        if not root.is_dir():
            raise SnapshotError(f"snapshot path {root} exists and is not a directory")
        if any(root.iterdir()):
            raise SnapshotError(
                f"refusing to overwrite non-empty directory {root}; "
                "point save_sharded() at a fresh path"
            )
    root.mkdir(parents=True, exist_ok=True)

    semantic = getattr(blend, "_semantic", None)
    semantic_meta = semantic.snapshot_meta() if semantic is not None else None
    shard_names: list[str] = []
    table_shard: dict[str, int] = {}
    for i, shard in enumerate(shards):
        shard_lake = DataLake.from_shard(shard, name=f"{blend.lake.name}/shard{i}")
        sub = type(blend)(
            shard_lake, backend=blend.db.backend, index_config=blend.index_config
        )
        sub.build_index()
        if semantic_meta is not None and getattr(sub, "_semantic", None) is None:
            # IndexConfig(semantic=True) already built the shard's vector
            # index inside build_index(); this branch covers deployments
            # whose SemanticIndex was installed directly (non-default
            # graph parameters), rebuilding per shard from the meta.
            from .core.semantic import SemanticIndex

            sub._semantic = SemanticIndex(
                shard_lake,
                dimensions=semantic_meta["dimensions"],
                m=semantic_meta["m"],
                ef_construction=semantic_meta["ef_construction"],
                seed=semantic_meta["seed"],
            )
            sub._semantic.persist(sub.db)
        name = f"shard{i}"
        save_blend(sub, root / name, include_lake=include_lake)
        shard_names.append(name)
        for table_id in shard.table_ids:
            table_shard[str(int(table_id))] = i

    manifest = {
        "format": SHARD_FORMAT_NAME,
        "format_version": SHARD_FORMAT_VERSION,
        "backend": blend.db.backend,
        "hash_size": blend.index_config.hash_size,
        "lake_name": blend.lake.name,
        "num_shards": len(shard_names),
        "shards": shard_names,
        "table_shard": table_shard,
        "next_table_id": blend.lake.num_slots,
        "semantic": semantic_meta,
    }
    (root / _SHARD_MANIFEST).write_text(
        json.dumps(manifest, indent=1, sort_keys=False) + "\n", encoding="utf-8"
    )
    return root


def read_shard_manifest(path: Union[str, Path]) -> dict:
    """Parse and version-check a :func:`save_sharded` routing manifest."""
    root = Path(path)
    target = root / _SHARD_MANIFEST
    if not target.is_file():
        raise SnapshotError(f"not a sharded snapshot (missing {target})")
    try:
        manifest = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot parse shard manifest {target}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != SHARD_FORMAT_NAME:
        raise SnapshotError(f"{target} is not a {SHARD_FORMAT_NAME} manifest")
    version = manifest.get("format_version")
    if version != SHARD_FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported shard manifest version {version!r} in {target}: "
            f"this build reads version {SHARD_FORMAT_VERSION} only"
        )
    for key in ("backend", "shards", "table_shard", "next_table_id"):
        if key not in manifest:
            raise SnapshotError(f"shard manifest {target} lacks the {key!r} section")
    if len(manifest["shards"]) != manifest.get("num_shards", len(manifest["shards"])):
        raise SnapshotError(
            f"shard manifest {target} lists {len(manifest['shards'])} shard "
            f"directories but records num_shards={manifest.get('num_shards')}"
        )
    return manifest


# --------------------------------------------------------------------------
# Loading
# --------------------------------------------------------------------------


def read_manifest(path: Union[str, Path]) -> dict:
    """Parse and version-check a snapshot manifest (shared by the loader
    and external tooling that wants to inspect a snapshot cheaply)."""
    root = Path(path)
    target = root / _MANIFEST
    if not target.is_file():
        raise SnapshotError(f"not a snapshot (missing {target})")
    try:
        manifest = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot parse snapshot manifest {target}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise SnapshotError(f"{target} is not a {FORMAT_NAME} manifest")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version {version!r} in {target}: "
            f"this build reads version {FORMAT_VERSION} only "
            "(re-save the snapshot with the current code)"
        )
    for key in ("backend", "index_config", "lake", "tables", "files"):
        if key not in manifest:
            raise SnapshotError(f"snapshot manifest {target} lacks the {key!r} section")
    return manifest


def load_blend(
    blend_cls,
    path: Union[str, Path],
    lake: Optional[DataLake] = None,
    backend: Optional[str] = None,
    hash_size: Optional[int] = None,
    mmap: bool = True,
    verify: bool = True,
    delta: bool = True,
):
    """Restore a :class:`~repro.Blend` deployment from a snapshot.

    *lake* skips the snapshot's cell payload and serves from the given
    (validated, identical) lake instead; *backend* / *hash_size* assert
    the snapshot matches the deployment the caller expects. ``mmap``
    keeps numeric payloads as read-only file-backed views (copy-on-write
    on first mutation); ``verify`` additionally checks every payload's
    CRC-32 (sizes are always checked). ``delta`` replays the directory's
    incremental layer (``delta.json``) on top of the base; pass
    ``delta=False`` to recover the bare base snapshot when the delta is
    damaged — the delta manifest is then never even read.
    """
    root = Path(path)
    manifest = read_manifest(root)
    manifest_path = root / _MANIFEST
    supplied_lake = lake is not None
    delta_manifest = read_delta_manifest(root) if delta else None
    if delta_manifest is not None and supplied_lake:
        raise SnapshotError(
            f"snapshot {root} carries a delta layer; a supplied lake cannot "
            "be validated against it — load without a lake, or with "
            "delta=False"
        )

    if backend is not None and backend != manifest["backend"]:
        raise SnapshotError(
            f"backend mismatch: snapshot {manifest_path} was saved from the "
            f"{manifest['backend']!r} backend, caller expects {backend!r}"
        )
    config_fields = {
        key: value
        for key, value in manifest["index_config"].items()
        if key in IndexConfig.__dataclass_fields__
    }
    config = IndexConfig(**config_fields)
    if hash_size is not None and hash_size != config.hash_size:
        raise SnapshotError(
            f"hash-width mismatch: snapshot {manifest_path} was built with "
            f"hash_size={config.hash_size}, caller expects {hash_size}"
        )
    if config.hash_size > 63 and manifest["backend"] == "column":
        raise SnapshotError(
            f"inconsistent snapshot manifest {manifest_path}: "
            f"hash_size={config.hash_size} super keys cannot exist in a "
            "column-backend SuperKey column"
        )

    reader = _Reader(root, manifest["files"], mmap=mmap, verify=verify)
    reader.check_all()

    lake_meta = manifest["lake"]
    if lake is not None:
        mismatch = lake.snapshot_mismatch(lake_meta)
        if mismatch is not None:
            raise SnapshotError(
                f"supplied lake does not match snapshot {manifest_path}: {mismatch}"
            )
    else:
        if lake_meta["payload"] is None:
            raise SnapshotError(
                f"snapshot {manifest_path} was saved without the lake payload "
                "(include_lake=False); pass the lake to load()"
            )
        payload = reader.load_pickle(lake_meta["payload"])
        lake = DataLake.from_snapshot(
            payload, lake_meta["name"], lake_meta["generation"]
        )
    lake.adopt_slot_generations(lake_meta.get("slot_generations"))

    db = Database(backend=manifest["backend"])
    for meta in manifest["tables"]:
        if meta["kind"] == "column":
            db.attach_table(_load_column_table(reader, meta))
        else:
            db.attach_table(_load_row_table(reader, meta))

    blend = blend_cls(lake, backend=manifest["backend"], index_config=config)
    blend.db = db
    blend._indexed = True
    if manifest.get("stats") is not None:
        stats_meta = manifest["stats"]

        def _load_stats(
            reader: _Reader = reader, meta: dict = stats_meta
        ) -> LakeStatistics:
            # Deferred: the frequency table is the one load payload that
            # needs per-token Python objects, so it materialises on first
            # optimizer use instead of slowing the warm start.
            return LakeStatistics.from_snapshot(
                reader.load_text_list(meta["tokens"]),
                reader.load_array(meta["counts"], mmap=False),
                num_tables=meta["num_tables"],
                num_cells=meta["num_cells"],
                num_columns=meta["num_columns"],
                num_rows=meta["num_rows"],
            )

        blend._stats_loader = _load_stats
    if manifest.get("cost_model"):
        from .core.optimizer.cost_model import CostModel
        from .core.optimizer.planner import Optimizer

        blend.optimizer = Optimizer(CostModel.from_snapshot(manifest["cost_model"]))
    if manifest.get("semantic") is not None:
        from .core.semantic import SemanticIndex

        semantic_meta = manifest["semantic"]
        blend._semantic = SemanticIndex.load(
            db,
            lake,
            dimensions=semantic_meta["dimensions"],
            seed=semantic_meta["seed"],
            m=semantic_meta.get("m"),
            ef_construction=semantic_meta.get("ef_construction"),
        )
    # Record the base identity BEFORE any delta replay: live_slots and
    # generation describe the on-disk base, which is what the next
    # incremental save diffs against.
    blend._snapshot_base = SnapshotBase(
        path=str(root.resolve()),
        snapshot_id=manifest.get("snapshot_id", ""),
        generation=int(lake_meta["generation"]),
        live_slots=tuple(slot is not None for slot in lake_meta["slots"]),
    )
    if delta_manifest is not None:
        _apply_delta(blend, root, manifest, delta_manifest, verify)
    return blend


def _restore_schema(meta: dict) -> TableSchema:
    try:
        columns = [
            ColumnDef(name, SqlType[type_name]) for name, type_name in meta["columns"]
        ]
    except KeyError as exc:
        raise SnapshotError(
            f"snapshot manifest names unknown SQL type {exc} for table "
            f"{meta.get('name')!r}"
        ) from None
    return TableSchema(meta["name"], columns)


def _load_column_table(reader: _Reader, meta: dict) -> ColumnTable:
    schema = _restore_schema(meta)
    if len(meta["payload"]) != len(schema.columns):
        raise SnapshotError(
            f"snapshot manifest lists {len(meta['payload'])} column payloads "
            f"for table {meta['name']!r} of width {len(schema.columns)}"
        )
    sealed: list[_ColumnData] = []
    lengths = set()
    for column_def, column_meta in zip(schema.columns, meta["payload"]):
        column = _ColumnData(column_def.sql_type)
        if "codes" in column_meta:
            column.codes = reader.load_array(column_meta["codes"])
            column.dictionary = reader.load_text(column_meta["dictionary"])
            lengths.add(len(column.codes))
        if "data" in column_meta:
            column.data = reader.load_array(column_meta["data"])
            lengths.add(len(column.data))
        if "null" in column_meta:
            column.null = reader.load_array(column_meta["null"])
        sealed.append(column)
    if len(lengths) > 1:
        raise SnapshotError(
            f"snapshot arrays for table {meta['name']!r} have ragged lengths "
            f"{sorted(lengths)}"
        )
    deleted = (
        reader.load_array(meta["deleted"], mmap=False)
        if meta.get("deleted")
        else None
    )
    storage_rows = lengths.pop() if lengths else 0
    if storage_rows - (meta.get("num_deleted") or 0) != meta["num_rows"]:
        raise SnapshotError(
            f"snapshot arrays for table {meta['name']!r} hold {storage_rows} "
            f"rows; manifest records {meta['num_rows']} live + "
            f"{meta.get('num_deleted') or 0} deleted"
        )
    return ColumnTable.from_snapshot(
        schema,
        sealed,
        num_rows=meta["num_rows"],
        deleted=deleted,
        num_deleted=meta.get("num_deleted") or 0,
        index_columns=meta.get("index_columns", ()),
        cluster_keys=meta.get("cluster_keys", ()),
        compact_threshold=meta.get("compact_threshold", 0.3),
        compactions=meta.get("compactions", 0),
    )


def _load_row_table(reader: _Reader, meta: dict) -> RowTable:
    schema = _restore_schema(meta)
    rows = reader.load_pickle(meta["payload"])
    if not isinstance(rows, list):
        raise SnapshotError(
            f"snapshot payload {meta['payload']!r} for table {meta['name']!r} "
            "does not hold a row list"
        )
    deleted = None
    if meta.get("deleted"):
        deleted = reader.load_array(meta["deleted"], mmap=False).tolist()
    table = RowTable.from_snapshot(
        schema,
        rows,
        deleted=deleted,
        index_columns=meta.get("index_columns", ()),
        cluster_keys=meta.get("cluster_keys", ()),
        compact_threshold=meta.get("compact_threshold", 0.3),
        compactions=meta.get("compactions", 0),
    )
    if table.num_rows != meta["num_rows"]:
        raise SnapshotError(
            f"snapshot payload for table {meta['name']!r} holds "
            f"{table.num_rows} live rows; manifest records {meta['num_rows']}"
        )
    return table
