"""HTTP front end: discovery-as-a-service over a deployment manager.

Stdlib-only (``http.server.ThreadingHTTPServer``); each connection gets
a handler thread that parses the request, submits it to the shared
:class:`BatchScheduler`, and blocks on the outcome -- which is exactly
what makes batching work: N concurrent connections become N queued
requests inside one batch window.

Endpoints::

    POST /query   {"modality": "sc"|"kw"|"mc", "values": [...] |
                   "tuples": [[...], ...], "k": 10, "timeout_ms": 2000}
              ->  {"generation": 3, "batch_size": 7,
                   "results": [{"table_id": 12, "score": 4.0}, ...]}
    GET  /stats   serving metrics + plan-cache hit rate
    GET  /health  {"status": "ok", "generation": 3}
    POST /swap    {"snapshot": "/path/to/snapshot"}  -- zero-downtime
              ->  {"old_generation": ..., "new_generation": ...,
                   "drained": true, "seconds": ...}

Errors map to status codes: malformed request / bad seeker spec -> 400,
deadline missed -> 408, snapshot problems on swap -> 409, scheduler
shut down -> 503, anything else -> 500. Every error body is
``{"error": "<type>", "detail": "<message>"}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from ..core.seekers import Seeker, Seekers
from ..core.system import Blend
from ..errors import (
    BlendError,
    RequestTimeoutError,
    SeekerError,
    ServingError,
    SnapshotError,
)
from .deployment import DeploymentManager
from .scheduler import BatchScheduler
from .stats import ServingStats

_MAX_BODY = 8 << 20  # requests are queries, not uploads


def build_seeker(payload: dict[str, Any]) -> tuple[Seeker, tuple]:
    """Translate one request body into a seeker plus its coalescing key
    (two byte-identical payloads must produce equal keys)."""
    modality = payload.get("modality")
    if not isinstance(modality, str):
        raise SeekerError("request must name a modality: sc, kw, or mc")
    modality = modality.lower()
    k = payload.get("k", 10)
    if not isinstance(k, int) or k < 1:
        raise SeekerError("k must be a positive integer")
    if modality in ("sc", "kw"):
        values = payload.get("values")
        if not isinstance(values, list) or not values:
            raise SeekerError(f"{modality} request needs a non-empty 'values' list")
        seeker: Seeker = (Seekers.SC if modality == "sc" else Seekers.KW)(values, k=k)
        return seeker, (modality, tuple(seeker.tokens), k)  # type: ignore[attr-defined]
    if modality == "mc":
        tuples = payload.get("tuples")
        if not isinstance(tuples, list) or not tuples:
            raise SeekerError("mc request needs a non-empty 'tuples' list of rows")
        seeker = Seekers.MC(tuples, k=k)
        return seeker, (modality, tuple(seeker.tuples), k)
    raise SeekerError(f"unknown modality: {modality!r}")


class BlendServer:
    """The serving tier assembled: deployment manager + scheduler +
    threaded HTTP server, each stoppable as one unit.

    ``port=0`` binds an ephemeral port (tests, demos); the bound address
    is ``server.address`` after ``start()``.
    """

    def __init__(
        self,
        blend: Blend,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_batch: int = 32,
        batch_window: float = 0.002,
        default_timeout: Optional[float] = 30.0,
    ) -> None:
        self.stats = ServingStats()
        self.manager = DeploymentManager(blend)
        self.scheduler = BatchScheduler(
            self.manager,
            stats=self.stats,
            workers=workers,
            max_batch=max_batch,
            batch_window=batch_window,
        )
        self.default_timeout = default_timeout
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "BlendServer":
        # Idempotent: ``with BlendServer(...).start()`` enters the
        # context manager on an already-started server, and a second
        # ``serve_forever`` loop on one socket would wedge shutdown (the
        # first exiting loop resets the shutdown flag under the other).
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="blend-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.scheduler.close()

    def __enter__(self) -> "BlendServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- request handling (called from handler threads) ------------------------------

    def handle_query(self, payload: dict[str, Any]) -> dict[str, Any]:
        seeker, key = build_seeker(payload)
        timeout = self.default_timeout
        timeout_ms = payload.get("timeout_ms")
        if timeout_ms is not None:
            if not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0:
                raise SeekerError("timeout_ms must be a positive number")
            timeout = timeout_ms / 1e3
        outcome = self.scheduler.execute(seeker, timeout=timeout, key=key)
        return {
            "generation": outcome.generation,
            "batch_size": outcome.batch_size,
            "results": [
                {"table_id": hit.table_id, "score": hit.score}
                for hit in outcome.result
            ],
        }

    def handle_stats(self) -> dict[str, Any]:
        deployment = self.manager.current()
        snapshot = self.stats.snapshot(
            plan_cache=deployment.blend.db.plan_cache_stats()
        )
        snapshot["generation"] = deployment.generation
        snapshot["inflight"] = deployment.inflight
        return snapshot

    def handle_health(self) -> dict[str, Any]:
        return {"status": "ok", "generation": self.manager.current().generation}

    def handle_swap(self, payload: dict[str, Any]) -> dict[str, Any]:
        path = payload.get("snapshot")
        if not isinstance(path, str) or not path:
            raise ServingError("swap request needs a 'snapshot' path")
        replacement = Blend.load(path)
        return self.swap(replacement)

    def swap(self, blend: Blend) -> dict[str, Any]:
        """Programmatic hot-swap (the HTTP /swap route calls this after
        loading the snapshot)."""
        report = self.manager.swap(blend)
        self.stats.record_swap()
        return {
            "old_generation": report.old_generation,
            "new_generation": report.new_generation,
            "drained": report.drained,
            "seconds": report.seconds,
        }


def _status_of(error: BaseException) -> int:
    if isinstance(error, RequestTimeoutError):
        return 408
    if isinstance(error, SnapshotError):
        return 409
    if isinstance(error, ServingError):
        return 503
    if isinstance(error, (SeekerError, ValueError)):
        return 400
    return 500


def _make_handler(server: BlendServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args: Any) -> None:  # quiet by default
            pass

        def _reply(self, status: int, body: dict[str, Any]) -> None:
            data = json.dumps(body).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _json_body(self) -> dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0 or length > _MAX_BODY:
                raise ValueError("request needs a JSON body")
            payload = json.loads(self.rfile.read(length))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        def _dispatch(self, route) -> None:
            try:
                self._reply(200, route())
            except json.JSONDecodeError as exc:
                self._reply(400, {"error": "bad_json", "detail": str(exc)})
            except (BlendError, ValueError) as exc:
                self._reply(
                    _status_of(exc),
                    {"error": type(exc).__name__, "detail": str(exc)},
                )
            except Exception as exc:  # never tear down the connection thread
                self._reply(500, {"error": type(exc).__name__, "detail": str(exc)})

        def do_GET(self) -> None:
            if self.path == "/stats":
                self._dispatch(server.handle_stats)
            elif self.path == "/health":
                self._dispatch(server.handle_health)
            else:
                self._reply(404, {"error": "not_found", "detail": self.path})

        def do_POST(self) -> None:
            if self.path == "/query":
                self._dispatch(lambda: server.handle_query(self._json_body()))
            elif self.path == "/swap":
                self._dispatch(lambda: server.handle_swap(self._json_body()))
            else:
                self._reply(404, {"error": "not_found", "detail": self.path})

    return Handler
