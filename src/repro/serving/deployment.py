"""Snapshot deployments and zero-downtime hot-swap.

A :class:`ServingDeployment` wraps one read-only :class:`Blend` (usually
``Blend.load``-ed from a snapshot, workers sharing its mmap) plus an
in-flight reference count. The :class:`DeploymentManager` holds the
*current* deployment behind a single attribute -- an atomic pointer under
CPython -- so the swap protocol is:

1. load (or build) the new generation beside the old,
2. ``warm()`` it so no reader ever races lazy first-touch state,
3. flip the pointer (new arrivals lease the new generation),
4. retire the old deployment and wait for its in-flight count to drain,
5. drop the last reference -- the GC unmaps the old snapshot's buffers.

In-flight requests against the old generation run to completion against
their leased deployment; nothing is cancelled and nothing observes a
half-swapped state. A request that raced the flip and was built against
the old context gets ``StaleContextError`` from ``ensure_fresh`` and is
transparently retried once against the new lease by the scheduler.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.system import Blend
from ..errors import ServingError


class ServingDeployment:
    """One served snapshot generation with in-flight request accounting."""

    def __init__(self, blend: Blend) -> None:
        self.blend = blend
        self.generation = blend.lake.generation
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._inflight = 0
        self._retired = False

    def warm(self) -> None:
        """Pre-materialize every lazy read structure (see
        ``Blend.warm``): done once before taking traffic so concurrent
        readers never race on first touch."""
        self.blend.warm()

    def acquire(self) -> bool:
        """Register an in-flight request. False once retired -- callers
        must re-lease from the manager (the pointer has moved on)."""
        with self._lock:
            if self._retired:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._retired and self._inflight == 0:
                self._drained.notify_all()

    def retire_and_drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new leases, then wait for in-flight requests to finish.
        Returns True when fully drained within *timeout*."""
        with self._lock:
            self._retired = True
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._inflight > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._drained.wait(remaining)
            return True

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight


@dataclass(frozen=True)
class SwapReport:
    """What a hot-swap did: generations, drain outcome, wall time."""

    old_generation: int
    new_generation: int
    drained: bool
    seconds: float


class DeploymentManager:
    """The atomic current-deployment pointer plus the swap protocol.

    ``lease()`` is the only read path: it pins a deployment for the span
    of one request. Swaps serialize among themselves (``_swap_lock``) but
    never block readers -- the flip is one attribute store.
    """

    def __init__(self, blend: Blend, warm: bool = True) -> None:
        deployment = ServingDeployment(blend)
        if warm:
            deployment.warm()
        self._current = deployment
        self._swap_lock = threading.Lock()

    def current(self) -> ServingDeployment:
        return self._current

    @contextmanager
    def lease(self) -> Iterator[ServingDeployment]:
        """Pin the current deployment for one request.

        The acquire loop covers the one race that exists: between reading
        the pointer and registering in-flight, a swap may retire the read
        deployment; acquire then fails and the loop re-reads the moved
        pointer. A live pointer is never retired, so this terminates.
        """
        while True:
            deployment = self._current
            if deployment.acquire():
                break
        try:
            yield deployment
        finally:
            deployment.release()

    def swap(self, blend: Blend, drain_timeout: Optional[float] = 30.0) -> SwapReport:
        """Deploy *blend* with zero downtime (steps 1-5 above).

        Raises :class:`ServingError` if the replacement is not indexed.
        Returns once the old generation has drained (or *drain_timeout*
        expired -- stragglers still complete and release; only the wait
        is bounded)."""
        if not getattr(blend, "_indexed", False):
            raise ServingError("cannot deploy a Blend without a built index")
        with self._swap_lock:
            started = time.monotonic()
            replacement = ServingDeployment(blend)
            replacement.warm()
            old = self._current
            self._current = replacement
            drained = old.retire_and_drain(drain_timeout)
            return SwapReport(
                old_generation=old.generation,
                new_generation=replacement.generation,
                drained=drained,
                seconds=time.monotonic() - started,
            )
