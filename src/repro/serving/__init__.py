"""Discovery-as-a-service: the concurrent serving tier (ROADMAP item 1).

Layers, bottom up:

* :mod:`repro.serving.deployment` -- one served snapshot generation with
  in-flight accounting, and the atomic-pointer hot-swap protocol.
* :mod:`repro.serving.scheduler` -- admission queue + worker pool that
  coalesces same-modality requests into :func:`repro.core.batch`
  cross-query kernel calls, with per-request deadlines and transparent
  stale-context retry across swaps.
* :mod:`repro.serving.stats` -- thread-safe q/s, latency percentiles,
  batch-size histogram.
* :mod:`repro.serving.server` -- the stdlib HTTP front end
  (``/query``, ``/stats``, ``/health``, ``/swap``).
* :mod:`repro.serving.sharded` -- scatter-gather over K shard workers
  (each a deployment manager + scheduler of its own, in-process or in a
  child process), merging per-shard partials into rankings
  byte-identical to single-process execution.
* :mod:`repro.serving.compaction` -- background folding of the
  streaming-ingest delta layer into clean base generations, deployed
  through the hot-swap protocol (solo) or per-shard routing (sharded).
"""

from .compaction import CompactionReport, SnapshotCompactor, compact_snapshot
from .deployment import DeploymentManager, ServingDeployment, SwapReport
from .scheduler import BatchScheduler, PendingQuery, QueryOutcome
from .server import BlendServer, build_seeker
from .sharded import LocalShardWorker, ProcessShardWorker, ShardCoordinator
from .stats import ServingStats

__all__ = [
    "BatchScheduler",
    "BlendServer",
    "CompactionReport",
    "DeploymentManager",
    "LocalShardWorker",
    "PendingQuery",
    "ProcessShardWorker",
    "QueryOutcome",
    "ServingDeployment",
    "ServingStats",
    "ShardCoordinator",
    "SnapshotCompactor",
    "SwapReport",
    "build_seeker",
    "compact_snapshot",
]
