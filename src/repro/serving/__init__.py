"""Discovery-as-a-service: the concurrent serving tier (ROADMAP item 1).

Layers, bottom up:

* :mod:`repro.serving.deployment` -- one served snapshot generation with
  in-flight accounting, and the atomic-pointer hot-swap protocol.
* :mod:`repro.serving.scheduler` -- admission queue + worker pool that
  coalesces same-modality requests into :func:`repro.core.batch`
  cross-query kernel calls, with per-request deadlines and transparent
  stale-context retry across swaps.
* :mod:`repro.serving.stats` -- thread-safe q/s, latency percentiles,
  batch-size histogram.
* :mod:`repro.serving.server` -- the stdlib HTTP front end
  (``/query``, ``/stats``, ``/health``, ``/swap``).
"""

from .deployment import DeploymentManager, ServingDeployment, SwapReport
from .scheduler import BatchScheduler, PendingQuery, QueryOutcome
from .server import BlendServer, build_seeker
from .stats import ServingStats

__all__ = [
    "BatchScheduler",
    "BlendServer",
    "DeploymentManager",
    "PendingQuery",
    "QueryOutcome",
    "ServingDeployment",
    "ServingStats",
    "SwapReport",
    "build_seeker",
]
