"""Admission control and cross-query batching for the serving tier.

Requests enter one queue; a pool of workers pulls them off, coalescing
same-modality requests that arrive within a short batch window into ONE
``Blend.execute_batch`` call -- a single index scan for an SC/KW window,
one stacked super-key pass and one combined count-matrix validation for
an MC window. Identical requests (same query, same k) coalesce further:
executed once, answered many times.

Deadlines are per-request and enforced at both ends: a worker drops a
request whose deadline passed while it sat queued (clean
:class:`RequestTimeoutError`, the worker moves on untouched), and the
caller's ``result()`` stops waiting at the deadline even if a worker is
still busy elsewhere. A request that both sides race to finish is
finalized exactly once.

``StaleContextError`` -- a request racing a hot-swap -- triggers one
transparent retry against a fresh lease (the flipped pointer), invisible
to the caller.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Sequence

from ..core.batch import seeker_partials
from ..core.results import ResultList, SeekerPartials, merge_partials
from ..core.seekers import Seeker
from ..errors import RequestTimeoutError, ServingError, StaleContextError
from .deployment import DeploymentManager
from .stats import ServingStats

DEFAULT_MAX_BATCH = 32
DEFAULT_BATCH_WINDOW = 0.002  # seconds; a few ms, per the batching design


@dataclass(frozen=True)
class QueryOutcome:
    """A completed request: its ranking, the snapshot generation that
    served it, and how many requests shared its batch.

    ``partials`` is populated only for requests submitted with
    ``partials=True`` -- the shard-worker path, where the caller is a
    scatter-gather coordinator that merges this worker's partial with its
    siblings' instead of consuming the locally-merged ``result``."""

    result: ResultList
    generation: int
    batch_size: int
    partials: Optional[SeekerPartials] = None


class _Request:
    __slots__ = (
        "seeker",
        "key",
        "deadline",
        "submitted",
        "event",
        "lock",
        "finalized",
        "outcome",
        "error",
        "want_partials",
    )

    def __init__(
        self,
        seeker: Seeker,
        deadline: Optional[float],
        key: Optional[Hashable],
        want_partials: bool = False,
    ) -> None:
        self.seeker = seeker
        self.key = key
        self.deadline = deadline
        self.want_partials = want_partials
        self.submitted = time.monotonic()
        self.event = threading.Event()
        self.lock = threading.Lock()
        self.finalized = False
        self.outcome: Optional[QueryOutcome] = None
        self.error: Optional[BaseException] = None

    def finalize(
        self,
        outcome: Optional[QueryOutcome] = None,
        error: Optional[BaseException] = None,
    ) -> bool:
        """First caller wins; losers learn the request was already done."""
        with self.lock:
            if self.finalized:
                return False
            self.finalized = True
            self.outcome = outcome
            self.error = error
        self.event.set()
        return True

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class PendingQuery:
    """Caller-side handle for one submitted request."""

    def __init__(self, request: _Request, stats: ServingStats) -> None:
        self._request = request
        self._stats = stats

    def result(self) -> QueryOutcome:
        """Block until the request completes or its deadline passes.

        Raises :class:`RequestTimeoutError` on deadline, or whatever
        per-request error execution produced.
        """
        request = self._request
        if request.deadline is None:
            request.event.wait()
        else:
            request.event.wait(max(request.deadline - time.monotonic(), 0.0))
            if not request.event.is_set():
                # We hit the deadline -- but a worker may finalize in
                # this very instant; finalize() arbitrates.
                if request.finalize(
                    error=RequestTimeoutError(
                        f"{request.seeker.kind} request missed its deadline"
                    )
                ):
                    self._stats.record_timeout()
        if request.error is not None:
            raise request.error
        assert request.outcome is not None
        return request.outcome


class BatchScheduler:
    """The worker pool plus batching queue over a deployment manager."""

    def __init__(
        self,
        manager: DeploymentManager,
        stats: Optional[ServingStats] = None,
        workers: int = 2,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window: float = DEFAULT_BATCH_WINDOW,
    ) -> None:
        if workers < 1:
            raise ServingError("scheduler needs at least one worker")
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        self.manager = manager
        self.stats = stats if stats is not None else ServingStats()
        self.max_batch = max_batch
        self.batch_window = batch_window
        self._queue: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"blend-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ------------------------------------------------------------------

    def submit(
        self,
        seeker: Seeker,
        timeout: Optional[float] = None,
        key: Optional[Hashable] = None,
        partials: bool = False,
    ) -> PendingQuery:
        """Enqueue *seeker*; returns immediately with a handle.

        *timeout* is seconds from now to the request's deadline. *key*,
        when given, identifies the query semantically (same key = same
        answer): concurrent duplicates execute once. *partials* asks for
        the request's mergeable :class:`SeekerPartials` on the outcome
        (the shard-worker path) alongside the locally-merged result.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        request = _Request(seeker, deadline, key, want_partials=partials)
        with self._cond:
            if self._closed:
                raise ServingError("scheduler is shut down")
            self._queue.append(request)
            self._cond.notify()
        return PendingQuery(request, self.stats)

    def execute(
        self,
        seeker: Seeker,
        timeout: Optional[float] = None,
        key: Optional[Hashable] = None,
        partials: bool = False,
    ) -> QueryOutcome:
        """Blocking convenience: ``submit(...).result()``."""
        return self.submit(seeker, timeout, key, partials).result()

    def close(self) -> None:
        """Stop accepting work, fail whatever is still queued, join the
        workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            leftovers = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for request in leftovers:
            request.finalize(error=ServingError("scheduler is shut down"))
        for thread in self._workers:
            thread.join()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- worker side -----------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            first = self._next_request()
            if first is None:
                return
            batch = self._fill_batch(first)
            if batch:
                self._run_batch(batch)

    def _next_request(self) -> Optional[_Request]:
        """Block for the next live request; drop expired ones cleanly."""
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return None  # closed and drained
                request = self._queue.popleft()
            if self._admit(request):
                return request

    def _admit(self, request: _Request) -> bool:
        """Deadline check at dequeue: a request that aged out while
        queued fails without ever touching a worker's execution state."""
        if request.expired(time.monotonic()):
            if request.finalize(
                error=RequestTimeoutError(
                    f"{request.seeker.kind} request expired in queue"
                )
            ):
                self.stats.record_timeout()
            return False
        return True

    def _fill_batch(self, first: _Request) -> list[_Request]:
        """Collect same-modality requests for *first*'s batch: everything
        already queued, then whatever arrives within the batch window, up
        to ``max_batch``. The window stays open only while it keeps
        filling -- a wait round that produces no same-kind arrival means
        the burst is collected, and idling out the rest of the window
        would only stall this batch and anything queued behind it."""
        batch = [first]
        if self.max_batch == 1:
            return batch
        kind = first.seeker.kind
        window_end = time.monotonic() + self.batch_window
        waited = False
        while len(batch) < self.max_batch:
            with self._cond:
                taken: list[_Request] = []
                kept: deque[_Request] = deque()
                for request in self._queue:
                    if (
                        request.seeker.kind == kind
                        and len(batch) + len(taken) < self.max_batch
                    ):
                        taken.append(request)
                    else:
                        kept.append(request)
                self._queue = kept
                closed = self._closed
            batch.extend(r for r in taken if self._admit(r))
            if closed or len(batch) >= self.max_batch:
                break
            if waited and not taken:
                break  # the queue went quiet; run what we have
            remaining = window_end - time.monotonic()
            if remaining <= 0:
                break
            # Wait for stragglers (bounded by the window's remainder).
            with self._cond:
                if not any(r.seeker.kind == kind for r in self._queue):
                    self._cond.wait(remaining)
                    waited = True
        return batch

    def _run_batch(self, batch: list[_Request]) -> None:
        """Execute one batch against a leased deployment and finalize
        every request. Identical keys coalesce; a batch-level failure
        falls back to per-request execution so one poisoned query cannot
        take its neighbours down."""
        self.stats.record_batch(len(batch))
        # Coalesce identical queries: first request per key executes.
        unique: list[_Request] = []
        followers: dict[int, list[_Request]] = {}
        by_key: dict[Hashable, int] = {}
        for request in batch:
            if request.key is not None and request.key in by_key:
                followers.setdefault(by_key[request.key], []).append(request)
            else:
                if request.key is not None:
                    by_key[request.key] = len(unique)
                unique.append(request)
        coalesced = len(batch) - len(unique)
        if coalesced:
            self.stats.record_coalesced(coalesced)

        seekers = [request.seeker for request in unique]
        for attempt in (0, 1):
            with self.manager.lease() as deployment:
                generation = deployment.generation
                try:
                    parts: list[Optional[SeekerPartials]] = list(
                        deployment.blend.execute_batch_partials(seekers)
                    )
                    errors: list[Optional[BaseException]] = [None] * len(unique)
                    break
                except StaleContextError as stale:
                    # Raced a hot-swap: retry ONCE against a fresh lease
                    # (the next lease() sees the flipped pointer). A
                    # second stale in a row fails the requests, never
                    # the worker.
                    if attempt == 1:
                        parts = [None] * len(unique)
                        errors = [stale] * len(unique)
                        break
                    self.stats.record_stale_retry()
                except Exception:
                    # Isolate the offending request: run the batch's
                    # members one at a time, capturing per-request
                    # failures.
                    parts, errors = self._run_individually(deployment, seekers)
                    break

        batch_size = len(batch)
        for i, request in enumerate(unique):
            part, error = parts[i], errors[i]
            result: Optional[ResultList] = None
            if error is None and part is not None:
                try:
                    result = merge_partials([part], request.seeker.k)
                except Exception as exc:
                    error = exc
            recipients = [request] + followers.get(i, [])
            for recipient in recipients:
                self._deliver(
                    recipient, result, part, error, generation, batch_size
                )

    def _run_individually(
        self, deployment: Any, seekers: Sequence[Seeker]
    ) -> tuple[list[Optional[SeekerPartials]], list[Optional[BaseException]]]:
        parts: list[Optional[SeekerPartials]] = [None] * len(seekers)
        errors: list[Optional[BaseException]] = [None] * len(seekers)
        for i, seeker in enumerate(seekers):
            try:
                parts[i] = seeker_partials(seeker, deployment.blend.context())
            except Exception as exc:  # per-request isolation
                errors[i] = exc
        return parts, errors

    def _deliver(
        self,
        request: _Request,
        result: Optional[ResultList],
        part: Optional[SeekerPartials],
        error: Optional[BaseException],
        generation: int,
        batch_size: int,
    ) -> None:
        if error is not None or result is None:
            error = error or ServingError("request produced no result")
            if request.finalize(error=error):
                self.stats.record_error()
            return
        outcome = QueryOutcome(
            result,
            generation,
            batch_size,
            partials=part if request.want_partials else None,
        )
        if request.finalize(outcome=outcome):
            self.stats.record_completed(
                request.seeker.kind, time.monotonic() - request.submitted
            )
