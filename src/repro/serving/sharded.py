"""Scatter-gather sharded serving: many shards, one ranking.

A lake too large for one box is split with
:meth:`~repro.lake.datalake.DataLake.shard_plan` and saved as K
independent shard snapshots (:func:`repro.snapshot.save_sharded`). Each
shard keeps its tables at their *global* id slots, so shard workers emit
:class:`~repro.core.results.SeekerPartials` whose table ids need no
translation, and the coordinator's
:func:`~repro.core.results.merge_partials` over K gathered partials is
*the same function* a solo seeker runs over one -- scatter-gather results
are byte-identical to single-process execution by construction, for
every seeker modality.

Three pieces:

* :class:`LocalShardWorker` -- one shard served in-process: a
  :class:`~repro.serving.deployment.DeploymentManager` plus its own
  :class:`~repro.serving.scheduler.BatchScheduler` (the PR 6 batching
  tier), answering ``partials`` requests and single-shard lifecycle ops.
* :class:`ProcessShardWorker` -- the same contract over a
  ``multiprocessing`` pipe: a child process loads its shard snapshot and
  runs a :class:`LocalShardWorker` loop, so shards scale past the GIL
  (and, with a network transport in place of the pipe, past one box).
* :class:`ShardCoordinator` -- broadcasts each seeker to every shard,
  gathers partials, runs the global merge; routes lifecycle ops to the
  single owning shard by stable table id and stamps every mutation with
  a new generation so stale readers fail fast
  (:class:`~repro.errors.StaleContextError`), mirroring the
  single-process context protocol.

Failure semantics: a lifecycle op touches exactly one shard, so
concurrent queries observe either the whole pre-state or the whole
post-state of that shard (the worker's scheduler retries stale contexts
across the mutation); the coordinator's generation stamp lets callers
pin a multi-query session to one consistent view. A worker that dies
mid-request surfaces the transport error to the caller -- the
coordinator never silently drops a shard from the merge, which would
break the byte-parity contract.
"""

from __future__ import annotations

import multiprocessing
import threading
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from ..core.results import ResultList, SeekerPartials, merge_partials
from ..core.seekers import Seeker
from ..core.system import Blend
from ..errors import LakeError, ServingError, SnapshotError, StaleContextError
from ..lake.table import Table
from ..snapshot import read_shard_manifest
from .deployment import DeploymentManager
from .scheduler import DEFAULT_BATCH_WINDOW, DEFAULT_MAX_BATCH, BatchScheduler

__all__ = [
    "LocalShardWorker",
    "ProcessShardWorker",
    "ShardCoordinator",
]


def _mp_context():
    """Fork when available (cheap; the parent's scheduler threads hold no
    locks the child touches -- the child never runs parent threads), else
    the platform default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class LocalShardWorker:
    """One shard served in-process behind the PR 6 batching tier.

    The worker owns a :class:`DeploymentManager` (so the shard can be
    hot-swapped independently) and a :class:`BatchScheduler` (so
    concurrent coordinator queries coalesce into cross-query kernel
    calls *per shard*). The coordinator speaks a tiny op protocol --
    ``send(op, payload)`` then ``recv()`` -- split in two phases so a
    broadcast overlaps across workers instead of serialising.
    """

    def __init__(
        self,
        blend: Blend,
        *,
        workers: int = 2,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window: float = DEFAULT_BATCH_WINDOW,
    ) -> None:
        self.manager = DeploymentManager(blend)
        self.scheduler = BatchScheduler(
            self.manager, workers=workers, max_batch=max_batch,
            batch_window=batch_window,
        )
        self._pending: Optional[tuple[str, Any]] = None

    # -- two-phase op protocol -------------------------------------------------

    def send(self, op: str, payload: Any = None) -> None:
        """Start one op. ``partials`` ops are submitted to the scheduler
        and complete asynchronously; everything else runs inline (still
        cheap) with the outcome parked for :meth:`recv`."""
        if self._pending is not None:
            raise ServingError("shard worker already has an op in flight")
        if op == "partials":
            try:
                handles = [
                    self.scheduler.submit(seeker, partials=True)
                    for seeker in payload
                ]
            except BaseException as exc:  # scheduler closed, bad seeker, ...
                self._pending = ("error", exc)
                return
            self._pending = ("partials", handles)
            return
        try:
            self._pending = ("value", self._apply(op, payload))
        except BaseException as exc:
            self._pending = ("error", exc)

    def recv(self) -> Any:
        """Finish the op started by :meth:`send`; raises what it raised."""
        if self._pending is None:
            raise ServingError("shard worker has no op in flight")
        tag, value = self._pending
        self._pending = None
        if tag == "error":
            raise value
        if tag == "partials":
            return [handle.result().partials for handle in value]
        return value

    def request(self, op: str, payload: Any = None) -> Any:
        """``send`` + ``recv`` in one step (single-worker convenience)."""
        self.send(op, payload)
        return self.recv()

    # -- op implementations ----------------------------------------------------

    def _apply(self, op: str, payload: Any) -> Any:
        blend = self.manager.current().blend
        if op == "add":
            table_id, table = payload
            return blend.add_table(table, table_id=table_id)
        if op == "remove":
            blend.remove_table(payload)
            return None
        if op == "replace":
            table_id, table = payload
            blend.replace_table(table_id, table)
            return None
        if op == "swap":
            replacement = Blend.load(payload)
            self.manager.swap(replacement)
            return self.manager.current().blend.lake.table_ids()
        if op == "table_ids":
            return blend.lake.table_ids()
        if op == "stats":
            return self.scheduler.stats.snapshot()
        if op == "save_delta":
            # Persist this shard's mutations since its base snapshot
            # (O(delta)); returns the snapshot path written, which is
            # what the coordinator compacts from.
            return str(blend.save_delta(payload))
        if op == "delta_stats":
            return blend.delta_stats()
        raise ServingError(f"unknown shard worker op: {op!r}")

    def close(self) -> None:
        self.scheduler.close()


def _shard_worker_main(
    conn,
    snapshot_path: str,
    verify: bool,
    workers: int,
    max_batch: int,
    batch_window: float,
) -> None:
    """Child-process loop: load the shard snapshot, then serve ops off
    the pipe until ``close`` or EOF. Every reply is ``("ok", value)`` or
    ``("err", exception)`` so the parent re-raises faithfully."""
    try:
        blend = Blend.load(snapshot_path, verify=verify)
        worker = LocalShardWorker(
            blend, workers=workers, max_batch=max_batch,
            batch_window=batch_window,
        )
    except BaseException as exc:
        conn.send(("err", exc))
        return
    conn.send(("ok", "ready"))
    try:
        while True:
            try:
                op, payload = conn.recv()
            except EOFError:
                break
            if op == "close":
                conn.send(("ok", None))
                break
            try:
                worker.send(op, payload)
                conn.send(("ok", worker.recv()))
            except BaseException as exc:
                try:
                    conn.send(("err", exc))
                except Exception:  # unpicklable exception: downgrade
                    conn.send(("err", ServingError(f"{type(exc).__name__}: {exc}")))
    finally:
        worker.close()
        conn.close()


class ProcessShardWorker:
    """One shard served by a child process, same op contract as
    :class:`LocalShardWorker`.

    The child loads its shard snapshot itself (snapshots are the
    handoff format -- nothing heavyweight crosses the pipe) and wraps a
    :class:`LocalShardWorker`; the parent ships ops and gets back
    partials / exceptions. Seekers, tables, and
    :class:`SeekerPartials` all pickle cleanly by design.
    """

    def __init__(
        self,
        snapshot_path: Union[str, Path],
        *,
        verify: bool = True,
        workers: int = 2,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window: float = DEFAULT_BATCH_WINDOW,
    ) -> None:
        ctx = _mp_context()
        self._conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn, str(snapshot_path), verify, workers, max_batch,
                batch_window,
            ),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._closed = False
        status, payload = self._conn.recv()  # startup handshake
        if status == "err":
            self._process.join()
            self._closed = True
            raise payload

    def send(self, op: str, payload: Any = None) -> None:
        if self._closed:
            raise ServingError("shard worker process is closed")
        self._conn.send((op, payload))

    def recv(self) -> Any:
        try:
            status, payload = self._conn.recv()
        except EOFError:
            self._closed = True
            raise ServingError("shard worker process died mid-request")
        if status == "err":
            raise payload
        return payload

    def request(self, op: str, payload: Any = None) -> Any:
        self.send(op, payload)
        return self.recv()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.send(("close", None))
            self._conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self._conn.close()
        self._process.join(timeout=10)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join()


class ShardCoordinator:
    """Scatter-gather front end over K shard workers.

    Queries broadcast to every shard (each table lives wholly in one, so
    no shard can be skipped) and gather into one
    :func:`merge_partials` call -- the identical ranking tail a solo
    seeker runs, which is what makes coordinator results byte-identical
    to single-process execution. Lifecycle ops route to the single
    owning shard via the stable table-id map; the coordinator allocates
    global ids so sharded and solo deployments assign the same id to the
    same insertion sequence.

    Every mutation bumps :attr:`generation`; ``execute(...,
    generation=g)`` raises :class:`StaleContextError` when the view *g*
    was stamped against has since changed -- the same protocol
    single-process seeker contexts follow, carried through the
    coordinator.
    """

    def __init__(
        self,
        workers: Sequence[Any],
        *,
        routing: Optional[dict[int, int]] = None,
        next_table_id: Optional[int] = None,
    ) -> None:
        if not workers:
            raise ServingError("coordinator needs at least one shard worker")
        self.workers = list(workers)
        self._lock = threading.RLock()
        if routing is None:
            routing = {}
            for shard, worker in enumerate(self.workers):
                for table_id in worker.request("table_ids"):
                    if int(table_id) in routing:
                        raise ServingError(
                            f"table id {table_id} appears on shards "
                            f"{routing[int(table_id)]} and {shard}"
                        )
                    routing[int(table_id)] = shard
        self._routing = dict(routing)
        if next_table_id is None:
            next_table_id = max(self._routing, default=-1) + 1
        self._next_table_id = int(next_table_id)
        self._generation = 0
        self._closed = False
        # Per-shard snapshot directory (known after load()/swap_shard;
        # None for workers handed in without one) -- what compact_shard
        # reads the base+delta from.
        self._shard_paths: list[Optional[str]] = [None] * len(self.workers)

    # -- loading ---------------------------------------------------------------

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        processes: bool = False,
        backend: Optional[str] = None,
        verify: bool = True,
        workers: int = 2,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window: float = DEFAULT_BATCH_WINDOW,
    ) -> "ShardCoordinator":
        """Spin up one worker per shard of a
        :func:`repro.snapshot.save_sharded` directory and wire the
        coordinator's routing table from its manifest. ``processes=True``
        gives each shard its own child process."""
        manifest = read_shard_manifest(path)
        if backend is not None and backend != manifest["backend"]:
            raise SnapshotError(
                f"sharded snapshot backend is {manifest['backend']!r}, "
                f"expected {backend!r}"
            )
        root = Path(path)
        shard_workers: list[Any] = []
        try:
            for name in manifest["shards"]:
                if processes:
                    shard_workers.append(
                        ProcessShardWorker(
                            root / name, verify=verify, workers=workers,
                            max_batch=max_batch, batch_window=batch_window,
                        )
                    )
                else:
                    shard_workers.append(
                        LocalShardWorker(
                            Blend.load(root / name, verify=verify),
                            workers=workers, max_batch=max_batch,
                            batch_window=batch_window,
                        )
                    )
        except BaseException:
            for worker in shard_workers:
                worker.close()
            raise
        routing = {
            int(table_id): shard
            for table_id, shard in manifest["table_shard"].items()
        }
        coordinator = cls(
            shard_workers,
            routing=routing,
            next_table_id=manifest["next_table_id"],
        )
        coordinator._shard_paths = [str(root / name) for name in manifest["shards"]]
        return coordinator

    # -- querying --------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Bumped by every lifecycle op and shard swap."""
        return self._generation

    @property
    def num_shards(self) -> int:
        return len(self.workers)

    def table_shard(self, table_id: int) -> int:
        """Which shard owns *table_id* (raises :class:`LakeError` like a
        solo lake would for an unknown id)."""
        return self._owner(table_id)

    def execute(
        self, seeker: Seeker, generation: Optional[int] = None
    ) -> ResultList:
        """Scatter *seeker* to every shard, gather, global-merge."""
        return self.execute_batch([seeker], generation=generation)[0]

    def execute_batch(
        self, seekers: Sequence[Seeker], generation: Optional[int] = None
    ) -> list[ResultList]:
        """Broadcast a batch: one ``partials`` round-trip per shard for
        the whole batch, then one merge per seeker. Shards answer
        concurrently (each behind its own scheduler / process)."""
        if self._closed:
            raise ServingError("coordinator is closed")
        if generation is not None and generation != self._generation:
            raise StaleContextError(
                f"coordinator generation is {self._generation}, "
                f"request was stamped against {generation}"
            )
        seekers = list(seekers)
        if not seekers:
            return []
        for worker in self.workers:
            worker.send("partials", seekers)
        gathered: list[list[SeekerPartials]] = [
            worker.recv() for worker in self.workers
        ]
        return [
            merge_partials([parts[i] for parts in gathered], seeker.k)
            for i, seeker in enumerate(seekers)
        ]

    # -- lifecycle: routed to the owning shard ---------------------------------

    def _owner(self, table_id: int) -> int:
        shard = self._routing.get(int(table_id))
        if shard is None:
            raise LakeError(f"unknown table id: {table_id}")
        return shard

    def add_table(self, table: Table, shard: Optional[int] = None) -> int:
        """Add *table* to one shard (least-loaded by table count unless
        pinned) under a coordinator-allocated global id -- the same id a
        solo deployment would assign for the same insertion sequence."""
        with self._lock:
            if shard is None:
                loads = [0] * len(self.workers)
                for owner in self._routing.values():
                    loads[owner] += 1
                shard = loads.index(min(loads))
            elif not 0 <= shard < len(self.workers):
                raise ServingError(f"no such shard: {shard}")
            table_id = self._next_table_id
            self.workers[shard].request("add", (table_id, table))
            self._next_table_id += 1
            self._routing[table_id] = shard
            self._generation += 1
            return table_id

    def remove_table(self, table_id: int) -> None:
        with self._lock:
            shard = self._owner(table_id)
            self.workers[shard].request("remove", int(table_id))
            del self._routing[int(table_id)]
            self._generation += 1

    def replace_table(self, table_id: int, table: Table) -> None:
        with self._lock:
            shard = self._owner(table_id)
            self.workers[shard].request("replace", (int(table_id), table))
            self._generation += 1

    def swap_shard(self, shard: int, snapshot_path: Union[str, Path]) -> list[int]:
        """Hot-swap one shard to a new snapshot (zero downtime: the
        worker's :class:`DeploymentManager` drains in-flight queries on
        the old generation while new ones hit the replacement). Returns
        the shard's table ids after the swap; routing follows."""
        with self._lock:
            if not 0 <= shard < len(self.workers):
                raise ServingError(f"no such shard: {shard}")
            new_ids = [
                int(table_id)
                for table_id in self.workers[shard].request(
                    "swap", str(snapshot_path)
                )
            ]
            for table_id in new_ids:
                owner = self._routing.get(table_id)
                if owner is not None and owner != shard:
                    raise ServingError(
                        f"swap would place table id {table_id} on shard "
                        f"{shard}, but shard {owner} already owns it"
                    )
            self._routing = {
                table_id: owner
                for table_id, owner in self._routing.items()
                if owner != shard
            }
            for table_id in new_ids:
                self._routing[table_id] = shard
            self._next_table_id = max(
                self._next_table_id, max(new_ids, default=-1) + 1
            )
            self._shard_paths[shard] = str(snapshot_path)
            self._generation += 1
            return new_ids

    def shard_delta_stats(self, shard: int) -> dict[str, Any]:
        """One shard's base-vs-delta storage occupancy (see
        :meth:`repro.Blend.delta_stats`) -- the per-shard compaction
        trigger input."""
        if not 0 <= shard < len(self.workers):
            raise ServingError(f"no such shard: {shard}")
        return self.workers[shard].request("delta_stats")

    def compact_shard(
        self, shard: int, destination: Union[str, Path], verify: bool = True
    ) -> list[int]:
        """Fold one shard's delta layer into a clean snapshot generation
        at *destination* and hot-swap the shard onto it.

        Three steps under the routing lock (mutations wait; queries keep
        flowing -- the scatter path never takes this lock): the worker
        persists its live delta into its base directory (O(delta)),
        the coordinator rebuilds a compacted generation beside it
        (:func:`~repro.serving.compaction.compact_snapshot`), and the
        shard flips through its own :class:`DeploymentManager` with the
        usual drain. Each shard compacts independently -- the fleet
        never pauses in lockstep. Returns the shard's table ids after
        the swap."""
        from .compaction import compact_snapshot

        with self._lock:
            if not 0 <= shard < len(self.workers):
                raise ServingError(f"no such shard: {shard}")
            source = self._shard_paths[shard]
            source = self.workers[shard].request("save_delta", source)
            compact_snapshot(source, destination, verify=verify)
            return self.swap_shard(shard, destination)

    # -- observability / teardown ----------------------------------------------

    def table_ids(self) -> list[int]:
        """All live table ids across shards, ascending."""
        return sorted(self._routing)

    def stats(self) -> dict[str, Any]:
        """Per-shard scheduler stats plus coordinator counters."""
        return {
            "generation": self._generation,
            "num_shards": len(self.workers),
            "num_tables": len(self._routing),
            "shards": [worker.request("stats") for worker in self.workers],
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
