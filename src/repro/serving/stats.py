"""Serving metrics: counters and latency/batch-size distributions.

One :class:`ServingStats` instance is shared by the scheduler's workers
and the HTTP stats endpoint; every mutation happens under one lock (the
critical sections are a few arithmetic ops, far cheaper than the seeker
work between them).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

# Latency reservoir size: large enough for stable p99 estimates over a
# bench run, bounded so a long-lived server cannot grow without limit.
_LATENCY_WINDOW = 8192


class ServingStats:
    """Thread-safe request metrics for one server lifetime.

    Latencies are kept in a bounded window (most recent
    ``_LATENCY_WINDOW`` requests); percentiles are computed on demand.
    Batch sizes feed a histogram keyed by exact size -- batch windows are
    small, so the key space is too.
    """

    def __init__(self, clock=None) -> None:
        import time

        self._lock = threading.Lock()
        self._clock = clock if clock is not None else time.monotonic
        self._started = self._clock()
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._batch_sizes: dict[int, int] = {}
        self._by_modality: dict[str, int] = {}
        self.completed = 0
        self.timeouts = 0
        self.errors = 0
        self.stale_retries = 0
        self.swaps = 0
        self.coalesced = 0

    # -- recording (called by scheduler workers) -----------------------------------

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1

    def record_completed(self, modality: str, latency_seconds: float) -> None:
        with self._lock:
            self.completed += 1
            self._by_modality[modality] = self._by_modality.get(modality, 0) + 1
            self._latencies.append(latency_seconds)

    def record_coalesced(self, count: int = 1) -> None:
        with self._lock:
            self.coalesced += count

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_stale_retry(self) -> None:
        with self._lock:
            self.stale_retries += 1

    def record_swap(self) -> None:
        with self._lock:
            self.swaps += 1

    # -- reporting -----------------------------------------------------------------

    def snapshot(self, plan_cache: Optional[dict[str, Any]] = None) -> dict[str, Any]:
        """One consistent view of every metric, JSON-ready.

        *plan_cache* is the current deployment's
        ``Database.plan_cache_stats()``, passed in by the server so the
        stats module stays ignorant of deployments.
        """
        with self._lock:
            elapsed = max(self._clock() - self._started, 1e-9)
            latencies = sorted(self._latencies)
            out: dict[str, Any] = {
                "uptime_seconds": elapsed,
                "completed": self.completed,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "stale_retries": self.stale_retries,
                "swaps": self.swaps,
                "coalesced": self.coalesced,
                "queries_per_sec": self.completed / elapsed,
                "by_modality": dict(self._by_modality),
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self._batch_sizes.items())
                },
                "latency_ms": {
                    "p50": _percentile(latencies, 0.50) * 1e3,
                    "p99": _percentile(latencies, 0.99) * 1e3,
                },
            }
        if plan_cache is not None:
            hits = plan_cache.get("hits", 0)
            misses = plan_cache.get("misses", 0)
            lookups = hits + misses
            out["plan_cache"] = dict(
                plan_cache, hit_rate=(hits / lookups) if lookups else 0.0
            )
        return out


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]
