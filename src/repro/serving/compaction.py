"""Background compaction: fold the delta layer into a new base generation.

The streaming-ingest write path (:mod:`repro.snapshot`) keeps the base
snapshot frozen forever -- mutations accumulate in delta segments
(storage) and ``delta.json`` (disk). Reads stay O(base + delta), but the
delta share of every query grows with ingest, so a long-lived deployment
periodically *compacts*: rebuild a clean single-segment base from
base + delta, then hand it to the serving tier through the existing
:meth:`DeploymentManager.swap` flip-and-drain. Requests never fail and
never block -- in-flight queries drain against the old generation while
new arrivals lease the compacted one.

:func:`compact_snapshot` is the mechanism (one directory in, one
directory out, usable from a cron job or a coordinator);
:class:`SnapshotCompactor` is the policy loop (watch the served
deployment's delta fraction, compact past a threshold, swap). Sharded
deployments compact per shard through
:meth:`~repro.serving.sharded.ShardCoordinator.compact_shard` instead --
each shard flips independently, so the fleet never compacts in lockstep.

Compaction output satisfies the rebuild-parity invariant: the compacted
storage is byte-identical to a from-scratch ``build_index()`` on the
final lake, so swapping a compacted generation is observationally a
no-op for queries.
"""

from __future__ import annotations

import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..core.system import Blend
from ..errors import ServingError
from .deployment import DeploymentManager, SwapReport


def compact_snapshot(
    source: Union[str, Path],
    destination: Union[str, Path],
    verify: bool = True,
    overwrite: bool = False,
) -> Blend:
    """Rebuild the base+delta snapshot at *source* into a clean
    single-generation snapshot at *destination*.

    Loads the source (replaying its delta layer), forces physical
    compaction of the maintained relations (tombstones dropped, delta
    segments folded, dictionaries re-encoded -- after which storage is
    byte-identical to a from-scratch build on the final lake), and
    writes a full snapshot with no delta layer. Returns the compacted
    deployment, already based on *destination* -- ready to
    :meth:`DeploymentManager.swap` in, or to keep ingesting against.

    The source directory is left untouched: until the caller flips
    traffic to *destination*, the old generation keeps serving.
    """
    blend = Blend.load(source, verify=verify)
    blend.compact_index()
    blend.save(destination, incremental="never", overwrite=overwrite)
    return blend


@dataclass(frozen=True)
class CompactionReport:
    """One completed compaction cycle: what was folded, where the new
    generation lives, and how the serving flip went."""

    source: str
    destination: str
    delta_fraction: float
    delta_rows: int
    deleted_rows: int
    seconds: float
    swap: Optional[SwapReport]


class SnapshotCompactor:
    """The compaction policy loop for one served deployment.

    Watches the manager's current deployment; once the delta share of
    storage crosses *threshold* (or on ``compact_once(force=True)``), it

    1. persists the live delta (``save_delta`` -- O(delta)),
    2. rebuilds a clean generation under *output_root*
       (``gen-0001``, ``gen-0002``, ...),
    3. swaps it in through the manager's flip-and-drain.

    The served deployment must carry a base snapshot (be ``load``-ed
    from or ``save``-d to disk) -- a purely in-memory deployment has
    nothing to fold. The caller is responsible for not mutating the
    served blend *during* a compaction cycle (the sharded tier holds its
    routing lock for exactly this span; a solo deployment typically runs
    ``compact_once`` from the same loop that applies mutations).
    """

    def __init__(
        self,
        manager: DeploymentManager,
        output_root: Union[str, Path],
        threshold: float = 0.25,
        drain_timeout: Optional[float] = 30.0,
        verify: bool = True,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ServingError(f"threshold must be in (0, 1], got {threshold}")
        self.manager = manager
        self.output_root = Path(output_root)
        self.threshold = threshold
        self.drain_timeout = drain_timeout
        self.verify = verify
        self.reports: list[CompactionReport] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def delta_fraction(self) -> float:
        """Delta share of the currently-served deployment's storage."""
        return self.manager.current().blend.delta_stats()["delta_fraction"]

    def _next_generation_dir(self) -> Path:
        self.output_root.mkdir(parents=True, exist_ok=True)
        taken = [
            int(entry.name[4:])
            for entry in self.output_root.glob("gen-*")
            if entry.name[4:].isdigit()
        ]
        return self.output_root / f"gen-{max(taken, default=0) + 1:04d}"

    def compact_once(self, force: bool = False) -> Optional[CompactionReport]:
        """Run one compaction cycle if the threshold is crossed (or
        *force*). Returns the report, or ``None`` when below threshold
        or when the served generation moved on mid-cycle (someone else
        swapped -- the stale rebuild is discarded, never deployed)."""
        deployment = self.manager.current()
        blend = deployment.blend
        stats = blend.delta_stats()
        if not force and stats["delta_fraction"] < self.threshold:
            return None
        base = blend._snapshot_base
        if base is None:
            raise ServingError(
                "cannot compact a deployment with no base snapshot; "
                "save() it to disk first"
            )
        started = time.monotonic()
        blend.save_delta()
        destination = self._next_generation_dir()
        compacted = compact_snapshot(base.path, destination, verify=self.verify)
        if self.manager.current() is not deployment:
            # Superseded mid-cycle: another swap landed while we were
            # rebuilding. Deploying our rebuild now would silently drop
            # whatever that swap shipped, so discard it instead.
            shutil.rmtree(destination, ignore_errors=True)
            return None
        swap = self.manager.swap(compacted, drain_timeout=self.drain_timeout)
        report = CompactionReport(
            source=base.path,
            destination=str(destination),
            delta_fraction=stats["delta_fraction"],
            delta_rows=stats["delta_rows"],
            deleted_rows=stats["deleted_rows"],
            seconds=time.monotonic() - started,
            swap=swap,
        )
        self.reports.append(report)
        return report

    # -- background loop -------------------------------------------------------

    def start(self, interval: float = 30.0) -> None:
        """Poll ``delta_fraction`` every *interval* seconds on a daemon
        thread, compacting whenever the threshold is crossed."""
        if self._thread is not None and self._thread.is_alive():
            raise ServingError("compactor already running")
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.compact_once()
                except Exception:  # noqa: BLE001 -- the loop must survive
                    # a failed cycle (e.g. a racing swap); the next tick
                    # re-evaluates from the current deployment.
                    continue

        self._thread = threading.Thread(
            target=_loop, name="snapshot-compactor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Signal the loop to exit and join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
