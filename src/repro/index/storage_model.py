"""Storage accounting for the paper's Table VIII.

Compares the resident size of BLEND's single ``AllTables`` relation (plus
its two in-database indexes) against the *sum* of the standalone
state-of-the-art indexes a federated deployment would need:

* DataXFormer's inverted index (keyword/join/union look-ups),
* JOSIE's posting lists + per-set size catalog (single-column join),
* MATE's XASH index (inverted index + per-row super key),
* Starmie's column embeddings + HNSW graph (union search),
* the QCR sketch index (correlation search; quadratic in column pairs).

Baseline sizes are *measured* from the actual baseline index objects this
repository builds (see :mod:`repro.baselines`), not estimated, so the
comparison is as real as the substrate allows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StorageBreakdown:
    """Bytes per index structure for one lake."""

    lake_name: str
    blend_bytes: int
    dataxformer_bytes: int
    josie_bytes: int
    mate_bytes: int
    starmie_bytes: int
    qcr_bytes: int

    @property
    def combined_sota_bytes(self) -> int:
        return (
            self.dataxformer_bytes
            + self.josie_bytes
            + self.mate_bytes
            + self.starmie_bytes
            + self.qcr_bytes
        )

    @property
    def saving_fraction(self) -> float:
        """1 - BLEND / combination (the paper reports 57 % on average)."""
        combined = self.combined_sota_bytes
        if combined == 0:
            return 0.0
        return 1.0 - self.blend_bytes / combined


def format_bytes(num_bytes: int) -> str:
    """Human-readable size, GB/MB style like the paper's Table VIII."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} TB"


def measure_breakdown(
    lake_name: str,
    blend_bytes: int,
    dataxformer_bytes: int,
    josie_bytes: int,
    mate_bytes: int,
    starmie_bytes: int,
    qcr_bytes: int,
) -> StorageBreakdown:
    """Assemble a breakdown from measured per-system byte counts."""
    return StorageBreakdown(
        lake_name=lake_name,
        blend_bytes=blend_bytes,
        dataxformer_bytes=dataxformer_bytes,
        josie_bytes=josie_bytes,
        mate_bytes=mate_bytes,
        starmie_bytes=starmie_bytes,
        qcr_bytes=qcr_bytes,
    )
