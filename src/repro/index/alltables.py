"""Offline indexing: lake -> the unified ``AllTables`` relation (paper §V).

``AllTables`` serialises three index structures into one database table:

====================  =====================================================
Column                Origin
====================  =====================================================
CellValue (text)      DataXFormer inverted index (value -> location)
TableId / ColumnId /
RowId (int)           DataXFormer location triplet
SuperKey (int)        MATE's XASH hash of the cell's whole row
Quadrant (bool/NULL)  BLEND's reformulated QCR statistic
====================  =====================================================

Two in-database hash indexes (CellValue, TableId) provide fast value
look-up and table loading. All seekers run as SQL over this one relation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..engine.database import Database
from ..errors import IndexingError
from ..lake.datalake import DataLake
from ..lake.table import normalize_cell
from .quadrant import column_means, quadrant_bit
from .xash import DEFAULT_HASH_SIZE, DEFAULT_NUM_CHARS, super_key

ALLTABLES_SCHEMA = [
    ("CellValue", "nvarchar"),
    ("TableId", "integer"),
    ("ColumnId", "integer"),
    ("RowId", "integer"),
    ("SuperKey", "bigint"),
    ("Quadrant", "boolean"),
]


@dataclass(frozen=True)
class IndexConfig:
    """Offline-phase knobs."""

    table_name: str = "AllTables"
    hash_size: int = DEFAULT_HASH_SIZE
    xash_chars: int = DEFAULT_NUM_CHARS
    shuffle_rows: bool = False  # BLEND (rand): pre-shuffle rows per table
    shuffle_seed: int = 0
    build_value_index: bool = True
    build_table_index: bool = True


@dataclass(frozen=True)
class IndexBuildReport:
    """What the offline phase produced."""

    table_name: str
    num_tables: int
    num_index_rows: int
    num_null_cells: int
    storage_bytes: int


def build_alltables(
    lake: DataLake,
    db: Database,
    config: IndexConfig = IndexConfig(),
) -> IndexBuildReport:
    """Index *lake* into *db* as one ``AllTables`` relation.

    With ``shuffle_rows`` the rows of each lake table are permuted (whole
    rows, so multi-column alignment is preserved) before RowIds are
    assigned. This is the BLEND (rand) variant of §VIII-G: the correlation
    seeker's ``RowId < h`` convenience sample then behaves like a random
    sample without any runtime sampling machinery.
    """
    if db.has_table(config.table_name):
        raise IndexingError(
            f"database already contains {config.table_name!r}; "
            "drop it or index into a fresh database"
        )
    db.create_table(config.table_name, ALLTABLES_SCHEMA)
    rng = random.Random(config.shuffle_seed)

    index_rows: list[tuple] = []
    null_cells = 0
    for table_id, table in enumerate(lake):
        means = column_means(table)
        rows = list(table.rows)
        if config.shuffle_rows:
            rng.shuffle(rows)
        for row_id, row in enumerate(rows):
            row_super_key = super_key(row, config.hash_size, config.xash_chars)
            for column_id, value in enumerate(row):
                token = normalize_cell(value)
                if token is None:
                    null_cells += 1
                    continue
                index_rows.append(
                    (
                        token,
                        table_id,
                        column_id,
                        row_id,
                        row_super_key,
                        quadrant_bit(value, means[column_id]),
                    )
                )
        # Flush per table to bound peak memory on large lakes.
        if len(index_rows) >= 200_000:
            db.insert(config.table_name, index_rows)
            index_rows.clear()
    if index_rows:
        db.insert(config.table_name, index_rows)

    if config.build_value_index:
        db.create_index(config.table_name, "CellValue")
    if config.build_table_index:
        db.create_index(config.table_name, "TableId")

    return IndexBuildReport(
        table_name=config.table_name,
        num_tables=len(lake),
        num_index_rows=db.num_rows(config.table_name),
        num_null_cells=null_cells,
        storage_bytes=db.storage_bytes(config.table_name),
    )


def index_table(
    table_id: int,
    table,
    db: Database,
    config: IndexConfig = IndexConfig(),
) -> int:
    """Incrementally index one lake table into an existing ``AllTables``.

    The single-relation design is what makes maintenance this simple
    (paper §V: heterogeneous per-system indexes are the alternative) --
    appending a table is a plain INSERT; the in-database hash indexes
    absorb the new rows. Returns the number of index rows added.
    """
    if not db.has_table(config.table_name):
        raise IndexingError(
            f"no {config.table_name!r} relation; run build_alltables first"
        )
    means = column_means(table)
    rows: list[tuple] = []
    for row_id, row in enumerate(table.rows):
        row_super_key = super_key(row, config.hash_size, config.xash_chars)
        for column_id, value in enumerate(row):
            token = normalize_cell(value)
            if token is None:
                continue
            rows.append(
                (
                    token,
                    table_id,
                    column_id,
                    row_id,
                    row_super_key,
                    quadrant_bit(value, means[column_id]),
                )
            )
    return db.insert(config.table_name, rows)
