"""Offline indexing: lake -> the unified ``AllTables`` relation (paper §V).

``AllTables`` serialises three index structures into one database table:

====================  =====================================================
Column                Origin
====================  =====================================================
CellValue (text)      DataXFormer inverted index (value -> location)
TableId / ColumnId /
RowId (int)           DataXFormer location triplet
SuperKey (int)        MATE's XASH hash of the cell's whole row
Quadrant (bool/NULL)  BLEND's reformulated QCR statistic
====================  =====================================================

Two in-database hash indexes (CellValue, TableId) provide fast value
look-up and table loading. All seekers run as SQL over this one relation.

Two build pipelines produce identical output:

* the **vectorised** path (default): each table's cells are normalised
  into arrays once, XASH runs over the table's *unique* tokens only
  (:func:`repro.index.xash.xash_batch`) and is broadcast back with an
  inverse index, super keys are OR-reduced per row with
  ``np.bitwise_or.reduceat``, quadrant bits come from one matrix pass,
  and the result is appended through the typed ``insert_columns`` bulk
  API -- no per-cell Python dispatch anywhere on the hot path;
* the **scalar** path (``IndexConfig(vectorized=False)``): the original
  cell-at-a-time loop, kept as the reference oracle -- tests assert the
  two produce byte-identical ``AllTables`` rows;
* the **sharded parallel** path (``IndexConfig(workers=N)``): tables are
  partitioned into cell-balanced contiguous shards, each shard runs
  factorisation + batched XASH + the super-key fold in a worker process
  (its own :class:`_FastFactorizer`), and shard outputs are merged
  deterministically -- local token codes are recoded into one global
  sorted dictionary (``np.unique`` union + ``np.searchsorted`` remap)
  and bulk-appended through ``insert_columns``. Output is byte-identical
  to the serial builds for any worker count. Scheduling is adaptive:
  worker processes are only spawned up to the CPUs actually available
  (``pin_workers=True`` forces the requested count), and when one CPU is
  all there is the sharded pipeline runs in-process, hashing each unique
  token once against the global dictionary instead of once per shard.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import multiprocessing
import os
import random
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from itertools import chain
from typing import Optional

import numpy as np

from ..engine.database import Database
from ..engine.storage.column_store import DictEncodedText
from ..errors import IndexingError
from ..lake.datalake import DataLake, LakeShard
from ..lake.table import normalize_cell, normalize_tokens
from .quadrant import column_means, column_quadrant_matrix, column_quadrant_matrix_fast, quadrant_bit
from .xash import (
    DEFAULT_HASH_SIZE,
    DEFAULT_NUM_CHARS,
    segmented_or,
    super_key,
    xash_batch,
)

ALLTABLES_SCHEMA = [
    ("CellValue", "nvarchar"),
    ("TableId", "integer"),
    ("ColumnId", "integer"),
    ("RowId", "integer"),
    ("SuperKey", "bigint"),
    ("Quadrant", "boolean"),
]

# Bulk-ingest flush threshold (index rows buffered before insert_columns).
_FLUSH_ROWS = 200_000


def shuffle_permutation(shuffle_seed: int, table_id: int, num_rows: int) -> list[int]:
    """The BLEND (rand) row permutation of one table.

    Seeded by ``(shuffle_seed, table_id)`` alone -- a stable per-table
    hash, not a position in a build-wide rng sequence -- so the
    permutation of any single table is reproducible in isolation. That
    is what makes shuffled configs *maintainable*: ``index_table`` /
    ``reindex_table`` re-derive exactly the permutation a from-scratch
    build would assign, no matter which tables came before. (The string
    seed goes through ``random.Random``'s sha512 path, deterministic
    across processes and Python versions.)
    """
    rng = random.Random(f"blend-shuffle:{shuffle_seed}:{table_id}")
    perm = list(range(num_rows))
    rng.shuffle(perm)
    return perm


@dataclass(frozen=True)
class IndexConfig:
    """Offline-phase knobs.

    ``hash_size`` > 63 (MATE's 128-bit XASH variant) only fits the row
    backend -- the column store's ``SuperKey`` column is int64, and all
    build pipelines reject the combination up front.

    ``workers`` selects the sharded parallel build: ``None`` (default)
    keeps the serial vectorised pipeline, ``N >= 1`` partitions the lake
    into cell-balanced shards and fans them out over worker processes.
    The output is byte-identical for every setting. By default the
    process count is clamped to the CPUs this process may actually use
    (spawning more just adds IPC); ``pin_workers=True`` forces exactly
    ``workers`` processes -- tests use it to exercise the pool on any
    machine.
    """

    table_name: str = "AllTables"
    hash_size: int = DEFAULT_HASH_SIZE
    xash_chars: int = DEFAULT_NUM_CHARS
    shuffle_rows: bool = False  # BLEND (rand): pre-shuffle rows per table
    shuffle_seed: int = 0
    build_value_index: bool = True
    build_table_index: bool = True
    vectorized: bool = True  # False: scalar reference path (test oracle)
    workers: Optional[int] = None  # N >= 1: sharded multiprocess build
    pin_workers: bool = False  # force exactly `workers` processes
    # Semantic extension: build AllVectors + the HNSW alongside AllTables,
    # so build/load/shard paths configure it uniformly (SS and HY seekers
    # need it). Blend.enable_semantic() flips this on after the fact.
    semantic: bool = False
    semantic_dimensions: int = 64


@dataclass(frozen=True)
class IndexBuildReport:
    """What the offline phase produced."""

    table_name: str
    num_tables: int
    num_index_rows: int
    num_null_cells: int
    storage_bytes: int


def build_alltables(
    lake: DataLake,
    db: Database,
    config: IndexConfig = IndexConfig(),
) -> IndexBuildReport:
    """Index *lake* into *db* as one ``AllTables`` relation.

    With ``shuffle_rows`` the rows of each lake table are permuted (whole
    rows, so multi-column alignment is preserved) before RowIds are
    assigned. This is the BLEND (rand) variant of §VIII-G: the correlation
    seeker's ``RowId < h`` convenience sample then behaves like a random
    sample without any runtime sampling machinery. Each table's
    permutation is seeded independently from ``(shuffle_seed,
    table_id)`` (:func:`shuffle_permutation`), so the incremental
    maintenance paths reproduce it exactly.
    """
    if db.has_table(config.table_name):
        raise IndexingError(
            f"database already contains {config.table_name!r}; "
            "drop it or index into a fresh database"
        )
    _check_hash_width(config, db)
    _check_workers(config)
    db.create_table(config.table_name, ALLTABLES_SCHEMA)
    # The offline build emits rows in (TableId, RowId, ColumnId) order;
    # declaring it as the clustering order lets storage compaction (after
    # remove/replace maintenance) restore exactly this layout, which is
    # what makes compacted storage byte-identical to a fresh build.
    db.set_cluster_keys(config.table_name, ("TableId", "RowId", "ColumnId"))

    if config.workers is not None:
        null_cells = _ingest_sharded(lake, db, config)
    elif config.vectorized:
        null_cells = _ingest_vectorized(lake, db, config)
    else:
        null_cells = _ingest_scalar(lake, db, config)

    if config.build_value_index:
        db.create_index(config.table_name, "CellValue")
    if config.build_table_index:
        db.create_index(config.table_name, "TableId")

    return IndexBuildReport(
        table_name=config.table_name,
        num_tables=len(lake),
        num_index_rows=db.num_rows(config.table_name),
        num_null_cells=null_cells,
        storage_bytes=db.storage_bytes(config.table_name),
    )


def _check_hash_width(config: IndexConfig, db: Database) -> None:
    """Reject super keys that cannot be stored, with a clear error instead
    of an OverflowError deep inside the ingest."""
    if config.hash_size > 63 and db.backend == "column":
        raise IndexingError(
            f"hash_size={config.hash_size} super keys exceed the column "
            "store's int64 SuperKey column; use hash_size <= 63 or the "
            "row backend"
        )


def _check_workers(config: IndexConfig) -> None:
    """Reject unusable worker settings up front."""
    if config.workers is None:
        return
    if config.workers < 1:
        raise IndexingError(
            f"IndexConfig.workers must be >= 1 (or None for the serial "
            f"build), got {config.workers}"
        )
    if not config.vectorized:
        raise IndexingError(
            "IndexConfig(workers=...) requires the vectorized pipeline; "
            "the scalar reference path is serial by definition"
        )


# --------------------------------------------------------------------------
# Vectorised pipeline
# --------------------------------------------------------------------------


class _TableParts:
    """Pre-hash arrays of one lake table: per-cell token codes and
    quadrant bits, full cell-matrix length (nulls still in place, coded
    ``-1``). Token resolution and hashing are deferred to flush time so
    XASH and the dictionary sort run once per ~200k-cell buffer rather
    than once per table."""

    __slots__ = ("table_id", "codes", "quadrant", "num_rows", "num_cols")

    def __init__(self, table_id, codes, quadrant, num_rows, num_cols):
        self.table_id = table_id
        self.codes = codes
        self.quadrant = quadrant
        self.num_rows = num_rows
        self.num_cols = num_cols


class _TokenFactorizer:
    """Streaming cell -> token-code factorisation (one dict probe per cell).

    ``value_code`` memoises whole cell values (hit for every repeated
    cell, the common case in skewed lake distributions); ``tokens`` grows
    in first-seen order and is sorted once per flush. NULL-normalising
    cells code to ``-1``. Booleans are special-cased up front: ``True ==
    1`` and ``False == 0`` in Python, so they must never share memo slots
    with the numbers they compare equal to.
    """

    __slots__ = ("value_code", "token_code", "tokens", "numeric_memo")

    # How this factorizer computes the Quadrant matrix (the sharded
    # pipeline's :class:`_FastFactorizer` overrides with the vectorised
    # per-column variant; both are bit-identical by contract).
    quadrant_matrix = staticmethod(column_quadrant_matrix)

    def __init__(self) -> None:
        self.value_code: dict = {}
        self.token_code: dict = {}
        self.tokens: list[str] = []
        self.numeric_memo: dict = {}  # numeric_value cache for quadrants

    def factorize(self, rows, n_cells: int) -> np.ndarray:
        """Row-major int32 code array for all cells of *rows*."""
        value_code = self.value_code
        get = value_code.get
        out: list[int] = []
        append = out.append
        true_code = false_code = None
        for row in rows:
            for value in row:
                if value is None:
                    append(-1)
                elif value is True:
                    if true_code is None:
                        true_code = self._token_code("true")
                    append(true_code)
                elif value is False:
                    if false_code is None:
                        false_code = self._token_code("false")
                    append(false_code)
                else:
                    code = get(value)
                    if code is None:
                        token = normalize_cell(value)
                        code = -1 if token is None else self._token_code(token)
                        value_code[value] = code
                    append(code)
        codes = np.empty(n_cells, dtype=np.int32)
        codes[:] = out
        return codes

    def _token_code(self, token: str) -> int:
        code = self.token_code.get(token)
        if code is None:
            code = len(self.tokens)
            self.token_code[token] = code
            self.tokens.append(token)
        return code

    def factorize_tokens(self, tokens, n_cells: int) -> np.ndarray:
        """:meth:`factorize` fed pre-normalised tokens (a
        ``Table.normalized_cells`` cache): skips the per-cell
        ``normalize_cell`` scalar loop. Identical codes by construction
        -- first-seen token order equals first-seen raw-value token
        order, and ``_token_code`` assigns codes off exactly that order
        in both paths."""
        token_code = self._token_code
        out = np.empty(n_cells, dtype=np.int32)
        out[:] = [-1 if t is None else token_code(t) for t in tokens]
        return out


class _ValueMemo(dict):
    """Cell-value -> token-code memo whose miss logic lives in
    ``__missing__``, so a whole flush factorises as one C-level
    ``map(memo.__getitem__, cells)`` with the interpreter entered only on
    first-seen values.

    Bit-identical to :class:`_TokenFactorizer` coding by construction:
    NULL is pre-seeded to ``-1``, and the Python bool/int duality
    (``True == 1``, ``False == 0``) is handled by *exclusion* -- no value
    comparing equal to 0 or 1 is ever memoised, so a bulk lookup can
    never serve ``True`` the code of ``1`` (or vice versa); all such
    cells take the miss path every time, where identity checks pick the
    right token.
    """

    __slots__ = ("token_code", "tokens")

    def __init__(self) -> None:
        super().__init__()
        self[None] = -1
        self.token_code: dict = {}
        self.tokens: list[str] = []

    def _token_code(self, token: str) -> int:
        code = self.token_code.get(token)
        if code is None:
            code = len(self.tokens)
            self.token_code[token] = code
            self.tokens.append(token)
        return code

    def __missing__(self, value) -> int:
        if value is True:
            return self._token_code("true")
        if value is False:
            return self._token_code("false")
        token = normalize_cell(value)
        code = -1 if token is None else self._token_code(token)
        if not (value == 0 or value == 1):
            self[value] = code
        return code


class _TokenMemo(dict):
    """Token -> code memo over a :class:`_ValueMemo`'s token registry,
    for inputs that are already normalised tokens. Unlike raw cell
    values, tokens are plain strings (or None), so every key is safe to
    memoise -- the bool/int duality exclusion of ``_ValueMemo`` does not
    apply (``"0"``/``"1"`` the *tokens* are unambiguous)."""

    __slots__ = ("_registry",)

    def __init__(self, registry: _ValueMemo) -> None:
        super().__init__()
        self[None] = -1
        self._registry = registry

    def __missing__(self, token: str) -> int:
        code = self._registry._token_code(token)
        self[token] = code
        return code


class _FastFactorizer:
    """The sharded pipeline's factoriser: same duck type as
    :class:`_TokenFactorizer` (``tokens`` / ``numeric_memo`` /
    ``factorize`` / ``quadrant_matrix``), with the per-cell interpreter
    loop replaced by a flat ``itertools.chain`` flatten plus one
    ``map`` over :class:`_ValueMemo`, and the vectorised per-column
    Quadrant pass."""

    __slots__ = ("memo", "numeric_memo", "_token_memo")

    quadrant_matrix = staticmethod(column_quadrant_matrix_fast)

    def __init__(self) -> None:
        self.memo = _ValueMemo()
        self.numeric_memo: dict = {}
        self._token_memo: Optional[_TokenMemo] = None

    @property
    def tokens(self) -> list[str]:
        return self.memo.tokens

    def factorize(self, rows, n_cells: int) -> np.ndarray:
        codes = np.array(
            list(map(self.memo.__getitem__, chain.from_iterable(rows))),
            dtype=np.int32,
        )
        if len(codes) != n_cells:  # pragma: no cover - Table guarantees width
            raise IndexingError("ragged rows in shard factorisation")
        return codes

    def factorize_tokens(self, tokens, n_cells: int) -> np.ndarray:
        """:meth:`factorize` over pre-normalised tokens (see
        ``_TokenFactorizer.factorize_tokens``); codes come from the same
        shared registry, so mixing both paths within a flush is safe."""
        if self._token_memo is None:
            self._token_memo = _TokenMemo(self.memo)
        codes = np.array(
            list(map(self._token_memo.__getitem__, tokens)), dtype=np.int32
        )
        if len(codes) != n_cells:  # pragma: no cover - Table guarantees width
            raise IndexingError("ragged token cache in shard factorisation")
        return codes


def _ingest_vectorized(lake: DataLake, db: Database, config: IndexConfig) -> int:
    null_cells = 0
    buffer: list[_TableParts] = []
    buffered = 0
    factorizer = _TokenFactorizer()
    for table_id, table in lake.items():
        perm: Optional[list[int]] = None
        if config.shuffle_rows:
            perm = shuffle_permutation(config.shuffle_seed, table_id, table.num_rows)
        parts = _table_parts(table_id, table, factorizer, perm)
        if parts is not None:
            buffer.append(parts)
            buffered += len(parts.codes)
        if buffered >= _FLUSH_ROWS:
            null_cells += _hash_and_insert(db, config, buffer, factorizer)[1]
            buffer, buffered = [], 0
            factorizer = _TokenFactorizer()
    if buffer:
        null_cells += _hash_and_insert(db, config, buffer, factorizer)[1]
    return null_cells


def _table_parts(
    table_id: int,
    table,
    factorizer: _TokenFactorizer,
    perm: Optional[list[int]] = None,
) -> Optional[_TableParts]:
    """Normalise one lake table into flat code arrays (row-major emission
    order, identical to the scalar loop); ``None`` for empty tables."""
    n_rows, n_cols = table.num_rows, table.num_columns
    n_cells = n_rows * n_cols
    if n_cells == 0:
        return None

    _, quad = factorizer.quadrant_matrix(table, factorizer.numeric_memo)
    if perm is not None:
        quad = quad[np.asarray(perm, dtype=np.int64)]

    tokens = getattr(table, "tokens_if_cached", lambda: None)()
    if tokens is not None:
        # The table carries its normalized-token cache (lifecycle paths
        # populate it): factorize straight from tokens, skipping the
        # per-cell normalize_cell loop.
        if perm is not None:
            tokens = [
                tokens[r * n_cols + c] for r in perm for c in range(n_cols)
            ]
        codes = factorizer.factorize_tokens(tokens, n_cells)
    else:
        rows = table.rows
        if perm is not None:
            rows = [rows[i] for i in perm]
        try:
            codes = factorizer.factorize(rows, n_cells)
        except TypeError:
            # Unhashable cells cannot take the fused value->code memo;
            # route the whole table through the batched token kernel
            # instead (byte-identical: first-seen token order equals
            # first-seen raw-value token order, and re-registered tokens
            # keep the codes the aborted fused pass assigned).
            tokens = normalize_tokens(list(chain.from_iterable(rows)))
            codes = factorizer.factorize_tokens(tokens, n_cells)
    return _TableParts(table_id, codes, quad.reshape(-1), n_rows, n_cols)


class _ShardPart:
    """One flush buffer, encoded and ready to merge.

    All arrays are aligned on the part's non-null cells in emission order
    (row-major within each table, tables in id order). ``codes`` index
    into the part-local sorted ``tokens`` dictionary; the merge recodes
    them into the global dictionary. ``super_keys`` is per-cell and
    either already folded (pool mode hashes inside the worker) or
    ``None`` with ``row_starts`` marking the (table, row) segments so the
    fold can run after the global dictionary is hashed once (in-process
    mode). Plain slots of NumPy arrays: cheap to pickle back from worker
    processes.
    """

    __slots__ = (
        "codes",
        "tokens",
        "table_ids",
        "column_ids",
        "row_ids",
        "quadrant",
        "super_keys",
        "row_starts",
        "null_count",
    )

    def __init__(self, codes, tokens, table_ids, column_ids, row_ids, quadrant,
                 super_keys, row_starts, null_count):
        self.codes = codes
        self.tokens = tokens
        self.table_ids = table_ids
        self.column_ids = column_ids
        self.row_ids = row_ids
        self.quadrant = quadrant
        self.super_keys = super_keys
        self.row_starts = row_starts
        self.null_count = null_count


def _encode_part(
    buffer: list[_TableParts],
    factorizer,
    hash_size: int,
    xash_chars: int,
    hash_now: bool,
    sort_tokens: bool = True,
) -> Optional[_ShardPart]:
    """Encode one buffered batch of tables into a :class:`_ShardPart`.

    With ``sort_tokens`` the batch's first-seen token list is sorted into
    dictionary order and the per-cell codes remapped through the
    permutation (the serial flush, where the part dictionary is stored
    as-is); sharded parts skip the local sort -- the merge recodes them
    against the globally sorted dictionary anyway, and ``searchsorted``
    does not care whether its probe side is sorted. The id/quadrant
    columns are laid out filtered by the batch-wide non-null mask. With
    ``hash_now`` XASH runs over the batch's unique tokens and super keys
    are OR-reduced per (table, row) segment in one ``reduceat``;
    otherwise the segment starts are kept so the fold can run against
    globally-hashed tokens at merge time. All-null batches yield a part
    whose array fields are ``None`` (only the NULL count survives).
    """
    raw_codes = _concat([parts.codes for parts in buffer])
    quadrant = _concat([parts.quadrant for parts in buffer])
    non_null = raw_codes >= 0
    null_count = len(raw_codes) - int(non_null.sum())
    if null_count == len(raw_codes):
        return _ShardPart(None, None, None, None, None, None, None, None, null_count)

    tokens = np.empty(len(factorizer.tokens), dtype=object)
    tokens[:] = factorizer.tokens
    cell_codes = raw_codes[non_null]
    if sort_tokens:
        order = np.argsort(tokens)
        sorted_tokens = tokens[order]
        remap = np.empty(len(tokens), dtype=np.int32)
        remap[order] = np.arange(len(tokens), dtype=np.int32)
        final_codes = remap[cell_codes]
    else:
        sorted_tokens = tokens  # first-seen order; the merge recodes
        final_codes = cell_codes

    # Per-table id columns, filtered by the buffer-wide non-null mask.
    column_ids = _concat(
        [
            np.tile(np.arange(parts.num_cols, dtype=np.int64), parts.num_rows)
            for parts in buffer
        ]
    )[non_null]
    row_ids_full = _concat(
        [
            np.repeat(np.arange(parts.num_rows, dtype=np.int64), parts.num_cols)
            for parts in buffer
        ]
    )
    table_ids = np.repeat(
        np.array([parts.table_id for parts in buffer], dtype=np.int64),
        np.array([len(parts.codes) for parts in buffer], dtype=np.int64),
    )[non_null]

    # Global row numbering across the buffer keeps every (table, row)
    # segment contiguous and ascending, so one segmented OR covers all
    # buffered tables; rows with no non-null cells never appear and rows
    # never span flushes (tables are buffered whole). Derived from the
    # already-built local row ids by shifting each table's span.
    offsets = np.cumsum([0] + [parts.num_rows for parts in buffer][:-1])
    cells_per_table = np.array([len(parts.codes) for parts in buffer], dtype=np.int64)
    global_rows = (row_ids_full + np.repeat(offsets, cells_per_table))[non_null]
    total_rows = int(offsets[-1]) + buffer[-1].num_rows
    counts = np.bincount(global_rows, minlength=total_rows)
    occupied = counts > 0
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))[occupied]
    seg_counts = counts[occupied]

    part = _ShardPart(
        final_codes,
        sorted_tokens,
        table_ids,
        column_ids,
        row_ids_full[non_null],
        quadrant[non_null],
        None,
        starts.astype(np.int64),
        null_count,
    )
    if hash_now:
        unique_hashes = xash_batch(sorted_tokens.tolist(), hash_size, xash_chars)
        part.super_keys = np.repeat(segmented_or(unique_hashes[final_codes], starts), seg_counts)
        part.row_starts = None
    return part


def _fold_super_keys(part: _ShardPart, cell_hashes: np.ndarray) -> np.ndarray:
    """Per-cell super keys from a deferred part's segment layout."""
    seg = segmented_or(cell_hashes, part.row_starts)
    seg_counts = np.diff(np.append(part.row_starts, len(part.codes)))
    return np.repeat(seg, seg_counts)


def _insert_part(
    db: Database,
    config: IndexConfig,
    part: _ShardPart,
    codes: np.ndarray,
    dictionary: np.ndarray,
    super_keys: np.ndarray,
) -> int:
    """Bulk-append one encoded part; the sorted *dictionary* doubles as
    the CellValue dictionary, so the store skips its own np.unique pass."""
    return db.insert_columns(
        config.table_name,
        [
            (DictEncodedText(codes, dictionary), None),
            (part.table_ids, None),
            (part.column_ids, None),
            (part.row_ids, None),
            (super_keys, None),
            (part.quadrant, None),
        ],
    )


def _hash_and_insert(
    db: Database,
    config: IndexConfig,
    buffer: list[_TableParts],
    factorizer: _TokenFactorizer,
) -> tuple[int, int]:
    """Hash one buffered batch of tables and bulk-append it (the serial
    vectorised flush). XASH runs over the batch's *unique* tokens only
    and is broadcast back through the cell code array. Returns
    ``(rows_inserted, null_cells)``.
    """
    part = _encode_part(buffer, factorizer, config.hash_size, config.xash_chars, hash_now=True)
    if part.codes is None:
        return 0, part.null_count
    inserted = _insert_part(db, config, part, part.codes, part.tokens, part.super_keys)
    return inserted, part.null_count


def _concat(arrays: list[np.ndarray]) -> np.ndarray:
    return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)


# --------------------------------------------------------------------------
# Sharded parallel pipeline (IndexConfig(workers=N))
# --------------------------------------------------------------------------

# Shards per worker process: finer than the pool so a skewed shard does
# not leave the other workers idle at the tail of the build.
_SHARDS_PER_WORKER = 2


@dataclass(frozen=True)
class _ShardTask:
    """One picklable unit of shard work sent to a worker process."""

    shard: LakeShard
    shuffle_seed: Optional[int]  # per-table seeded shuffle, None = no shuffle
    hash_size: int
    xash_chars: int
    hash_in_worker: bool  # False: defer XASH to the global merge


def _shard_worker(task: _ShardTask) -> list[_ShardPart]:
    """Process one shard: factorise + quadrant every table, flush into
    encoded parts. Runs in a worker process in pool mode (hashing its
    parts locally) and inline for the single-CPU degradation (hashing
    deferred to the merge, where the global dictionary is hashed once).
    """
    if task.hash_in_worker and os.environ.get("REPRO_INDEX_WORKER_CRASH"):
        # Test hook: simulate a hard worker death. Gated on pool mode so
        # the inline degradation path can never exit the main process.
        os._exit(17)
    parts: list[_ShardPart] = []
    factorizer = _FastFactorizer()
    buffer: list[_TableParts] = []
    buffered = 0
    for offset, table in enumerate(task.shard.tables):
        table_id = task.shard.table_ids[offset]
        perm = None
        if task.shuffle_seed is not None:
            # Per-table seeded permutation: derivable inside any worker
            # from the stable table id alone, no shared rng to thread
            # through the fan-out.
            perm = shuffle_permutation(task.shuffle_seed, table_id, table.num_rows)
        table_parts = _table_parts(table_id, table, factorizer, perm)
        if table_parts is not None:
            buffer.append(table_parts)
            buffered += len(table_parts.codes)
        if buffered >= _FLUSH_ROWS:
            parts.append(
                _encode_part(
                    buffer, factorizer, task.hash_size, task.xash_chars,
                    task.hash_in_worker, sort_tokens=False,
                )
            )
            buffer, buffered = [], 0
            factorizer = _FastFactorizer()
    if buffer:
        parts.append(
            _encode_part(
                buffer, factorizer, task.hash_size, task.xash_chars,
                task.hash_in_worker, sort_tokens=False,
            )
        )
    return parts


def _ingest_sharded(lake: DataLake, db: Database, config: IndexConfig) -> int:
    """Shard the lake, fan the shards out, merge deterministically.

    Shuffle permutations are seeded per table id
    (:func:`shuffle_permutation`), so every worker derives its own
    tables' permutations locally. Shard outputs are merged in table-id
    order, which makes the result byte-identical to the serial
    vectorised build for any worker count.
    """
    shuffle_seed = config.shuffle_seed if config.shuffle_rows else None
    workers = _effective_workers(config)
    if workers <= 1 or len(lake) <= 1:
        # Single-CPU (or single-table) degradation: same sharded pipeline
        # inline -- no IPC, and XASH runs once over the merged global
        # dictionary instead of once per shard.
        task = _ShardTask(
            lake.shard(0, len(lake)),
            shuffle_seed,
            config.hash_size,
            config.xash_chars,
            hash_in_worker=False,
        )
        parts = _shard_worker(task)
    else:
        tasks = [
            _ShardTask(shard, shuffle_seed, config.hash_size, config.xash_chars, True)
            for shard in lake.shard_plan(workers * _SHARDS_PER_WORKER)
        ]
        parts = _run_shard_tasks(tasks, workers)
    return _merge_and_insert(db, config, parts)


def _run_shard_tasks(tasks: list[_ShardTask], workers: int) -> list[_ShardPart]:
    """Fan shard tasks out over the shared worker pool, preserving shard
    order. A worker that dies (OOM-kill, segfault, ``os._exit``) breaks
    the pool: that surfaces as an :class:`IndexingError` naming the
    cause, never a hang, and the poisoned pool is discarded so the next
    build starts fresh. Ordinary worker exceptions propagate unchanged.
    """
    pool = _shared_pool(workers)
    futures = [pool.submit(_shard_worker, task) for task in tasks]
    parts: list[_ShardPart] = []
    try:
        for future in futures:
            parts.extend(future.result())
    except BrokenProcessPool as exc:
        _discard_pool(workers)
        raise IndexingError(
            "parallel AllTables build aborted: a shard worker process died "
            f"({exc}); the worker pool was discarded -- rerun, or fall back "
            "to the serial build with IndexConfig(workers=None)"
        ) from exc
    finally:
        for future in futures:
            future.cancel()
    return parts


def _merge_and_insert(db: Database, config: IndexConfig, parts: list[_ShardPart]) -> int:
    """Deterministic merge: recode every part's local token codes into
    one global sorted dictionary (sorted-unique union + vectorised
    ``np.searchsorted`` remap) and bulk-append the parts in shard order.
    Every part shares the single global dictionary object, so the column
    store's incremental seal concatenates code arrays without re-deriving
    a union. Returns the total NULL-cell count.
    """
    null_cells = sum(part.null_count for part in parts)
    live = [part for part in parts if part.codes is not None]
    if not live:
        return null_cells
    dictionaries = [part.tokens for part in live]
    global_dict = np.unique(
        dictionaries[0] if len(dictionaries) == 1 else np.concatenate(dictionaries)
    )
    global_hashes = None
    if any(part.super_keys is None for part in live):
        global_hashes = xash_batch(global_dict.tolist(), config.hash_size, config.xash_chars)
    for part in live:
        remap = np.searchsorted(global_dict, part.tokens).astype(np.int32)
        codes = remap[part.codes]
        super_keys = part.super_keys
        if super_keys is None:
            super_keys = _fold_super_keys(part, global_hashes[codes])
        _insert_part(db, config, part, codes, global_dict, super_keys)
    return null_cells


def _available_cpus() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _effective_workers(config: IndexConfig) -> int:
    """Adaptive worker count: processes beyond the available CPUs only
    add IPC and memory, so the requested count is clamped unless the
    caller pins it."""
    if config.pin_workers:
        return config.workers
    return max(1, min(config.workers, _available_cpus()))


# Long-lived worker pools, keyed by size. Builds are frequent and short
# (every lake [re]index), so pool spawn cost is paid once per process,
# not once per build; atexit tears the pools down.
_POOLS: dict[int, concurrent.futures.ProcessPoolExecutor] = {}


def _mp_context():
    """Prefer fork where the platform offers it (no re-import cost in
    workers); otherwise the platform default (spawn)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shared_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        )
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def _shutdown_pools() -> None:
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pools)


# --------------------------------------------------------------------------
# Scalar reference pipeline (the seed implementation, kept as test oracle)
# --------------------------------------------------------------------------


def _ingest_scalar(lake: DataLake, db: Database, config: IndexConfig) -> int:
    index_rows: list[tuple] = []
    null_cells = 0
    for table_id, table in lake.items():
        means = column_means(table)
        rows = list(table.rows)
        if config.shuffle_rows:
            perm = shuffle_permutation(config.shuffle_seed, table_id, len(rows))
            rows = [rows[i] for i in perm]
        for row_id, row in enumerate(rows):
            row_super_key = super_key(row, config.hash_size, config.xash_chars)
            for column_id, value in enumerate(row):
                token = normalize_cell(value)
                if token is None:
                    null_cells += 1
                    continue
                index_rows.append(
                    (
                        token,
                        table_id,
                        column_id,
                        row_id,
                        row_super_key,
                        quadrant_bit(value, means[column_id]),
                    )
                )
        # Flush per table to bound peak memory on large lakes.
        if len(index_rows) >= _FLUSH_ROWS:
            db.insert(config.table_name, index_rows)
            index_rows.clear()
    if index_rows:
        db.insert(config.table_name, index_rows)
    return null_cells


def _check_maintenance(db: Database, config: IndexConfig) -> None:
    """Shared guards of the incremental maintenance entry points.

    ``shuffle_rows`` configs are maintainable since the permutation
    became a per-table seeded hash (:func:`shuffle_permutation`): the
    maintenance paths re-derive any one table's permutation without
    replaying a build-wide rng sequence.
    """
    if not db.has_table(config.table_name):
        raise IndexingError(
            f"no {config.table_name!r} relation; run build_alltables first"
        )
    _check_hash_width(config, db)


def index_table(
    table_id: int,
    table,
    db: Database,
    config: IndexConfig = IndexConfig(),
) -> int:
    """Incrementally index one lake table into an existing ``AllTables``.

    The single-relation design is what makes maintenance this simple
    (paper §V: heterogeneous per-system indexes are the alternative) --
    appending a table is a plain INSERT; the in-database hash indexes
    absorb the new rows. Uses the same vectorised chunk builder as
    ``build_alltables`` (or the scalar loop under
    ``IndexConfig(vectorized=False)``). Returns the number of index rows
    added.
    """
    _check_maintenance(db, config)
    perm: Optional[list[int]] = None
    if config.shuffle_rows:
        # Same per-table seeded permutation a from-scratch build assigns.
        perm = shuffle_permutation(config.shuffle_seed, table_id, table.num_rows)
    if config.vectorized:
        # Populate the table's normalized-token cache: this maintenance
        # path handles one table at a time (memory is bounded), and
        # ``Blend.add_table`` feeds the same object to the statistics
        # update right after -- caching here halves its normalisation
        # work, and a later ``replace_table``/re-add skips it entirely.
        if hasattr(table, "normalized_cells"):
            table.normalized_cells()
        factorizer = _TokenFactorizer()
        parts = _table_parts(table_id, table, factorizer, perm)
        if parts is None:
            return 0
        return _hash_and_insert(db, config, [parts], factorizer)[0]
    means = column_means(table)
    table_rows = list(table.rows)
    if perm is not None:
        table_rows = [table_rows[i] for i in perm]
    rows: list[tuple] = []
    for row_id, row in enumerate(table_rows):
        row_super_key = super_key(row, config.hash_size, config.xash_chars)
        for column_id, value in enumerate(row):
            token = normalize_cell(value)
            if token is None:
                continue
            rows.append(
                (
                    token,
                    table_id,
                    column_id,
                    row_id,
                    row_super_key,
                    quadrant_bit(value, means[column_id]),
                )
            )
    return db.insert(config.table_name, rows)


def deindex_table(
    table_id: int,
    db: Database,
    config: IndexConfig = IndexConfig(),
    vectors_table: str = "AllVectors",
) -> int:
    """Remove one table's rows from ``AllTables`` (and from the semantic
    extension's ``AllVectors`` relation, when it was persisted).

    The single-relation layout makes removal one predicate delete --
    ``TableId IN (table_id)`` -- that cannot touch any other table's rows
    or super keys; storage tombstones the rows and compacts past its
    threshold. Returns the number of ``AllTables`` rows removed.
    """
    _check_maintenance(db, config)
    removed = db.delete_rows(config.table_name, "TableId", [table_id])
    if db.has_table(vectors_table):
        db.delete_rows(vectors_table, "TableId", [table_id])
    return removed


def reindex_table(
    table_id: int,
    table,
    db: Database,
    config: IndexConfig = IndexConfig(),
) -> tuple[int, int]:
    """Replace one table's rows in ``AllTables``: delete the old rows,
    append the new ones (same ``table_id``). Returns
    ``(rows_removed, rows_added)``.
    """
    _check_maintenance(db, config)
    removed = db.delete_rows(config.table_name, "TableId", [table_id])
    added = index_table(table_id, table, db, config)
    return removed, added
