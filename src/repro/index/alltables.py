"""Offline indexing: lake -> the unified ``AllTables`` relation (paper §V).

``AllTables`` serialises three index structures into one database table:

====================  =====================================================
Column                Origin
====================  =====================================================
CellValue (text)      DataXFormer inverted index (value -> location)
TableId / ColumnId /
RowId (int)           DataXFormer location triplet
SuperKey (int)        MATE's XASH hash of the cell's whole row
Quadrant (bool/NULL)  BLEND's reformulated QCR statistic
====================  =====================================================

Two in-database hash indexes (CellValue, TableId) provide fast value
look-up and table loading. All seekers run as SQL over this one relation.

Two build pipelines produce identical output:

* the **vectorised** path (default): each table's cells are normalised
  into arrays once, XASH runs over the table's *unique* tokens only
  (:func:`repro.index.xash.xash_batch`) and is broadcast back with an
  inverse index, super keys are OR-reduced per row with
  ``np.bitwise_or.reduceat``, quadrant bits come from one matrix pass,
  and the result is appended through the typed ``insert_columns`` bulk
  API -- no per-cell Python dispatch anywhere on the hot path;
* the **scalar** path (``IndexConfig(vectorized=False)``): the original
  cell-at-a-time loop, kept as the reference oracle -- tests assert the
  two produce byte-identical ``AllTables`` rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..engine.database import Database
from ..engine.storage.column_store import DictEncodedText
from ..errors import IndexingError
from ..lake.datalake import DataLake
from ..lake.table import normalize_cell
from .quadrant import column_means, column_quadrant_matrix, quadrant_bit
from .xash import (
    DEFAULT_HASH_SIZE,
    DEFAULT_NUM_CHARS,
    segmented_or,
    super_key,
    xash_batch,
)

ALLTABLES_SCHEMA = [
    ("CellValue", "nvarchar"),
    ("TableId", "integer"),
    ("ColumnId", "integer"),
    ("RowId", "integer"),
    ("SuperKey", "bigint"),
    ("Quadrant", "boolean"),
]

# Bulk-ingest flush threshold (index rows buffered before insert_columns).
_FLUSH_ROWS = 200_000


@dataclass(frozen=True)
class IndexConfig:
    """Offline-phase knobs.

    ``hash_size`` > 63 (MATE's 128-bit XASH variant) only fits the row
    backend -- the column store's ``SuperKey`` column is int64, and both
    build pipelines reject the combination up front.
    """

    table_name: str = "AllTables"
    hash_size: int = DEFAULT_HASH_SIZE
    xash_chars: int = DEFAULT_NUM_CHARS
    shuffle_rows: bool = False  # BLEND (rand): pre-shuffle rows per table
    shuffle_seed: int = 0
    build_value_index: bool = True
    build_table_index: bool = True
    vectorized: bool = True  # False: scalar reference path (test oracle)


@dataclass(frozen=True)
class IndexBuildReport:
    """What the offline phase produced."""

    table_name: str
    num_tables: int
    num_index_rows: int
    num_null_cells: int
    storage_bytes: int


def build_alltables(
    lake: DataLake,
    db: Database,
    config: IndexConfig = IndexConfig(),
) -> IndexBuildReport:
    """Index *lake* into *db* as one ``AllTables`` relation.

    With ``shuffle_rows`` the rows of each lake table are permuted (whole
    rows, so multi-column alignment is preserved) before RowIds are
    assigned. This is the BLEND (rand) variant of §VIII-G: the correlation
    seeker's ``RowId < h`` convenience sample then behaves like a random
    sample without any runtime sampling machinery.
    """
    if db.has_table(config.table_name):
        raise IndexingError(
            f"database already contains {config.table_name!r}; "
            "drop it or index into a fresh database"
        )
    _check_hash_width(config, db)
    db.create_table(config.table_name, ALLTABLES_SCHEMA)
    rng = random.Random(config.shuffle_seed)

    if config.vectorized:
        null_cells = _ingest_vectorized(lake, db, config, rng)
    else:
        null_cells = _ingest_scalar(lake, db, config, rng)

    if config.build_value_index:
        db.create_index(config.table_name, "CellValue")
    if config.build_table_index:
        db.create_index(config.table_name, "TableId")

    return IndexBuildReport(
        table_name=config.table_name,
        num_tables=len(lake),
        num_index_rows=db.num_rows(config.table_name),
        num_null_cells=null_cells,
        storage_bytes=db.storage_bytes(config.table_name),
    )


def _check_hash_width(config: IndexConfig, db: Database) -> None:
    """Reject super keys that cannot be stored, with a clear error instead
    of an OverflowError deep inside the ingest."""
    if config.hash_size > 63 and db.backend == "column":
        raise IndexingError(
            f"hash_size={config.hash_size} super keys exceed the column "
            "store's int64 SuperKey column; use hash_size <= 63 or the "
            "row backend"
        )


# --------------------------------------------------------------------------
# Vectorised pipeline
# --------------------------------------------------------------------------


class _TableParts:
    """Pre-hash arrays of one lake table: per-cell token codes and
    quadrant bits, full cell-matrix length (nulls still in place, coded
    ``-1``). Token resolution and hashing are deferred to flush time so
    XASH and the dictionary sort run once per ~200k-cell buffer rather
    than once per table."""

    __slots__ = ("table_id", "codes", "quadrant", "num_rows", "num_cols")

    def __init__(self, table_id, codes, quadrant, num_rows, num_cols):
        self.table_id = table_id
        self.codes = codes
        self.quadrant = quadrant
        self.num_rows = num_rows
        self.num_cols = num_cols


class _TokenFactorizer:
    """Streaming cell -> token-code factorisation (one dict probe per cell).

    ``value_code`` memoises whole cell values (hit for every repeated
    cell, the common case in skewed lake distributions); ``tokens`` grows
    in first-seen order and is sorted once per flush. NULL-normalising
    cells code to ``-1``. Booleans are special-cased up front: ``True ==
    1`` and ``False == 0`` in Python, so they must never share memo slots
    with the numbers they compare equal to.
    """

    __slots__ = ("value_code", "token_code", "tokens", "numeric_memo")

    def __init__(self) -> None:
        self.value_code: dict = {}
        self.token_code: dict = {}
        self.tokens: list[str] = []
        self.numeric_memo: dict = {}  # numeric_value cache for quadrants

    def factorize(self, rows, n_cells: int) -> np.ndarray:
        """Row-major int32 code array for all cells of *rows*."""
        value_code = self.value_code
        get = value_code.get
        out: list[int] = []
        append = out.append
        true_code = false_code = None
        for row in rows:
            for value in row:
                if value is None:
                    append(-1)
                elif value is True:
                    if true_code is None:
                        true_code = self._token_code("true")
                    append(true_code)
                elif value is False:
                    if false_code is None:
                        false_code = self._token_code("false")
                    append(false_code)
                else:
                    code = get(value)
                    if code is None:
                        token = normalize_cell(value)
                        code = -1 if token is None else self._token_code(token)
                        value_code[value] = code
                    append(code)
        codes = np.empty(n_cells, dtype=np.int32)
        codes[:] = out
        return codes

    def _token_code(self, token: str) -> int:
        code = self.token_code.get(token)
        if code is None:
            code = len(self.tokens)
            self.token_code[token] = code
            self.tokens.append(token)
        return code


def _ingest_vectorized(
    lake: DataLake, db: Database, config: IndexConfig, rng: random.Random
) -> int:
    null_cells = 0
    buffer: list[_TableParts] = []
    buffered = 0
    factorizer = _TokenFactorizer()
    for table_id, table in enumerate(lake):
        perm: Optional[list[int]] = None
        if config.shuffle_rows:
            # Shuffling an index list consumes the identical rng sequence
            # as shuffling the row list itself, so RowIds match the
            # scalar path permutation exactly.
            perm = list(range(table.num_rows))
            rng.shuffle(perm)
        parts = _table_parts(table_id, table, factorizer, perm)
        if parts is not None:
            buffer.append(parts)
            buffered += len(parts.codes)
        if buffered >= _FLUSH_ROWS:
            null_cells += _hash_and_insert(db, config, buffer, factorizer)[1]
            buffer, buffered = [], 0
            factorizer = _TokenFactorizer()
    if buffer:
        null_cells += _hash_and_insert(db, config, buffer, factorizer)[1]
    return null_cells


def _table_parts(
    table_id: int,
    table,
    factorizer: _TokenFactorizer,
    perm: Optional[list[int]] = None,
) -> Optional[_TableParts]:
    """Normalise one lake table into flat code arrays (row-major emission
    order, identical to the scalar loop); ``None`` for empty tables."""
    n_rows, n_cols = table.num_rows, table.num_columns
    n_cells = n_rows * n_cols
    if n_cells == 0:
        return None

    _, quad = column_quadrant_matrix(table, factorizer.numeric_memo)
    rows = table.rows
    if perm is not None:
        rows = [rows[i] for i in perm]
        quad = quad[np.asarray(perm, dtype=np.int64)]

    codes = factorizer.factorize(rows, n_cells)
    return _TableParts(table_id, codes, quad.reshape(-1), n_rows, n_cols)


def _hash_and_insert(
    db: Database,
    config: IndexConfig,
    buffer: list[_TableParts],
    factorizer: _TokenFactorizer,
) -> tuple[int, int]:
    """Hash one buffered batch of tables and bulk-append it.

    XASH runs over the batch's *unique* tokens only and is broadcast back
    through the cell code array; super keys are OR-reduced per (table,
    row) segment in one ``reduceat`` over the whole buffer. Returns
    ``(rows_inserted, null_cells)``.
    """
    raw_codes = _concat([parts.codes for parts in buffer])
    quadrant = _concat([parts.quadrant for parts in buffer])
    non_null = raw_codes >= 0
    null_count = len(raw_codes) - int(non_null.sum())
    if null_count == len(raw_codes):
        return 0, null_count

    # Sort the first-seen-order token list into the store's dictionary
    # order and remap the per-cell codes through the permutation; the
    # sorted array doubles as the CellValue dictionary, so the store
    # skips its own np.unique pass.
    tokens = np.empty(len(factorizer.tokens), dtype=object)
    tokens[:] = factorizer.tokens
    order = np.argsort(tokens)
    sorted_tokens = tokens[order]
    remap = np.empty(len(tokens), dtype=np.int32)
    remap[order] = np.arange(len(tokens), dtype=np.int32)

    cell_codes = raw_codes[non_null]
    final_codes = remap[cell_codes]
    encoded_values = DictEncodedText(final_codes, sorted_tokens)

    unique_hashes = xash_batch(
        factorizer.tokens, config.hash_size, config.xash_chars
    )
    cell_hashes = unique_hashes[cell_codes]

    # Per-table id columns, filtered by the buffer-wide non-null mask.
    column_ids = _concat(
        [
            np.tile(np.arange(parts.num_cols, dtype=np.int64), parts.num_rows)
            for parts in buffer
        ]
    )[non_null]
    row_ids_full = _concat(
        [
            np.repeat(np.arange(parts.num_rows, dtype=np.int64), parts.num_cols)
            for parts in buffer
        ]
    )
    table_ids = np.repeat(
        np.array([parts.table_id for parts in buffer], dtype=np.int64),
        np.array([len(parts.codes) for parts in buffer], dtype=np.int64),
    )[non_null]

    # Global row numbering across the buffer keeps every (table, row)
    # segment contiguous and ascending, so one segmented OR covers all
    # buffered tables; rows with no non-null cells never appear and rows
    # never span flushes (tables are buffered whole). Derived from the
    # already-built local row ids by shifting each table's span.
    offsets = np.cumsum([0] + [parts.num_rows for parts in buffer][:-1])
    cells_per_table = np.array([len(parts.codes) for parts in buffer], dtype=np.int64)
    global_rows = (row_ids_full + np.repeat(offsets, cells_per_table))[non_null]
    total_rows = int(offsets[-1]) + buffer[-1].num_rows
    counts = np.bincount(global_rows, minlength=total_rows)
    occupied = counts > 0
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    super_keys = np.zeros(total_rows, dtype=unique_hashes.dtype)
    super_keys[occupied] = segmented_or(cell_hashes, starts[occupied])

    inserted = db.insert_columns(
        config.table_name,
        [
            (encoded_values, None),
            (table_ids, None),
            (column_ids, None),
            (row_ids_full[non_null], None),
            (super_keys[global_rows], None),
            (quadrant[non_null], None),
        ],
    )
    return inserted, null_count


def _concat(arrays: list[np.ndarray]) -> np.ndarray:
    return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)


# --------------------------------------------------------------------------
# Scalar reference pipeline (the seed implementation, kept as test oracle)
# --------------------------------------------------------------------------


def _ingest_scalar(
    lake: DataLake, db: Database, config: IndexConfig, rng: random.Random
) -> int:
    index_rows: list[tuple] = []
    null_cells = 0
    for table_id, table in enumerate(lake):
        means = column_means(table)
        rows = list(table.rows)
        if config.shuffle_rows:
            rng.shuffle(rows)
        for row_id, row in enumerate(rows):
            row_super_key = super_key(row, config.hash_size, config.xash_chars)
            for column_id, value in enumerate(row):
                token = normalize_cell(value)
                if token is None:
                    null_cells += 1
                    continue
                index_rows.append(
                    (
                        token,
                        table_id,
                        column_id,
                        row_id,
                        row_super_key,
                        quadrant_bit(value, means[column_id]),
                    )
                )
        # Flush per table to bound peak memory on large lakes.
        if len(index_rows) >= _FLUSH_ROWS:
            db.insert(config.table_name, index_rows)
            index_rows.clear()
    if index_rows:
        db.insert(config.table_name, index_rows)
    return null_cells


def index_table(
    table_id: int,
    table,
    db: Database,
    config: IndexConfig = IndexConfig(),
) -> int:
    """Incrementally index one lake table into an existing ``AllTables``.

    The single-relation design is what makes maintenance this simple
    (paper §V: heterogeneous per-system indexes are the alternative) --
    appending a table is a plain INSERT; the in-database hash indexes
    absorb the new rows. Uses the same vectorised chunk builder as
    ``build_alltables`` (or the scalar loop under
    ``IndexConfig(vectorized=False)``). Returns the number of index rows
    added.
    """
    if not db.has_table(config.table_name):
        raise IndexingError(
            f"no {config.table_name!r} relation; run build_alltables first"
        )
    _check_hash_width(config, db)
    if config.vectorized:
        factorizer = _TokenFactorizer()
        parts = _table_parts(table_id, table, factorizer)
        if parts is None:
            return 0
        return _hash_and_insert(db, config, [parts], factorizer)[0]
    means = column_means(table)
    rows: list[tuple] = []
    for row_id, row in enumerate(table.rows):
        row_super_key = super_key(row, config.hash_size, config.xash_chars)
        for column_id, value in enumerate(row):
            token = normalize_cell(value)
            if token is None:
                continue
            rows.append(
                (
                    token,
                    table_id,
                    column_id,
                    row_id,
                    row_super_key,
                    quadrant_bit(value, means[column_id]),
                )
            )
    return db.insert(config.table_name, rows)
