"""The unified BLEND index: XASH super keys, Quadrant bits, the AllTables
builder, lake statistics, and Table VIII storage accounting.

The AllTables builder ships three byte-identical pipelines: the default
**vectorised** fast path (per-flush token factorisation, batch XASH over
unique tokens via ``xash_batch``, segmented super-key OR-reduction,
quadrant bits from ``column_quadrant_matrix``, bulk ``insert_columns``
appends), the **sharded parallel** build (``IndexConfig(workers=N)``:
cell-balanced table shards fanned out over worker processes, shard
outputs recoded into one global sorted dictionary and merged in
table-id order), and the scalar cell-at-a-time reference
(``IndexConfig(vectorized=False)``), retained as the test oracle.
``benchmarks/run_bench.py`` tracks the speedups in ``BENCH_index.json``.
"""

from .alltables import (
    ALLTABLES_SCHEMA,
    IndexBuildReport,
    IndexConfig,
    build_alltables,
    deindex_table,
    index_table,
    reindex_table,
)
from .quadrant import column_means, column_quadrant_matrix, quadrant_bit, split_keys_by_target
from .stats import LakeStatistics
from .storage_model import StorageBreakdown, format_bytes, measure_breakdown
from .xash import may_contain, super_key, tuple_hash, xash, xash_batch

__all__ = [
    "ALLTABLES_SCHEMA",
    "IndexBuildReport",
    "IndexConfig",
    "build_alltables",
    "index_table",
    "deindex_table",
    "reindex_table",
    "column_means",
    "column_quadrant_matrix",
    "quadrant_bit",
    "split_keys_by_target",
    "LakeStatistics",
    "StorageBreakdown",
    "format_bytes",
    "measure_breakdown",
    "may_contain",
    "super_key",
    "tuple_hash",
    "xash",
    "xash_batch",
]
