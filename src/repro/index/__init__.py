"""The unified BLEND index: XASH super keys, Quadrant bits, the AllTables
builder, lake statistics, and Table VIII storage accounting."""

from .alltables import ALLTABLES_SCHEMA, IndexBuildReport, IndexConfig, build_alltables, index_table
from .quadrant import column_means, quadrant_bit, split_keys_by_target
from .stats import LakeStatistics
from .storage_model import StorageBreakdown, format_bytes, measure_breakdown
from .xash import may_contain, super_key, tuple_hash, xash

__all__ = [
    "ALLTABLES_SCHEMA",
    "IndexBuildReport",
    "IndexConfig",
    "build_alltables",
    "index_table",
    "column_means",
    "quadrant_bit",
    "split_keys_by_target",
    "LakeStatistics",
    "StorageBreakdown",
    "format_bytes",
    "measure_breakdown",
    "may_contain",
    "super_key",
    "tuple_hash",
    "xash",
]
