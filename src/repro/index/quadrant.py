"""Quadrant bits for in-database QCR correlation estimation (paper §V).

The original QCR index (Santos et al., ICDE 2022) stores, per (join
column, numeric column) pair, the *h* smallest hashes of (key, quadrant)
pairs -- quadratic in the number of column pairs. BLEND replaces that with
a single Boolean ``Quadrant`` column in ``AllTables``: 1 when a numeric
cell is >= its column mean, 0 when below, NULL for non-numeric cells.

The Quadrant Count Ratio between a query target and a candidate column is
then computable entirely in SQL (Listing 3):

    QCR = (n_I + n_III - n_II - n_IV) / N  =  (2 * (n_I + n_III) - N) / N

where a joined pair lands in quadrant I/III when both sides are on the
same side of their means -- i.e. when the candidate's Quadrant bit equals
the query key's "target above its mean" bit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..lake.table import Cell, Table, numeric_value


def column_means(table: Table) -> list[Optional[float]]:
    """Per column: the mean of numeric cell values, or None for columns
    the type inference does not consider numeric."""
    flags = table.numeric_columns()
    means: list[Optional[float]] = []
    for position in range(table.num_columns):
        if not flags[position]:
            means.append(None)
            continue
        total = 0.0
        count = 0
        for row in table.rows:
            value = numeric_value(row[position])
            if value is not None:
                total += value
                count += 1
        means.append(total / count if count else None)
    return means


def quadrant_bit(value: Cell, mean: Optional[float]) -> Optional[bool]:
    """The Quadrant column entry for one cell: ``value >= mean`` or NULL."""
    if mean is None:
        return None
    numeric = numeric_value(value)
    if numeric is None:
        return None
    return numeric >= mean


_MISSING = object()


def column_quadrant_matrix(
    table: Table, memo: Optional[dict] = None
) -> tuple[list[Optional[float]], np.ndarray]:
    """Vectorised ``column_means`` + ``quadrant_bit`` over a whole table.

    Returns ``(means, bits)`` where *bits* is a ``num_rows x num_columns``
    ``int8`` matrix holding the Quadrant column entries in storage form
    (``-1`` NULL, else 0/1). Bit-identical to calling the scalar functions
    per cell: numeric cells are extracted once per column, the mean uses
    the same sequential float summation as :func:`column_means`, and the
    comparison ``value >= mean`` runs as one array op.

    *memo* optionally caches ``numeric_value`` per distinct cell value
    across calls (``numeric_value`` is pure). Booleans bypass it --
    ``True == 1`` would otherwise alias their dict slots.
    """
    flags = table.numeric_columns()
    n_rows, n_cols = table.num_rows, table.num_columns
    means: list[Optional[float]] = []
    bits = np.full((n_rows, n_cols), -1, dtype=np.int8)
    rows = table.rows
    if memo is None:
        memo = {}
    for position in range(n_cols):
        if not flags[position]:
            means.append(None)
            continue
        values, is_none = _column_numeric_values(rows, position, n_rows, memo)
        _fill_column_bits(bits, position, values, is_none, n_rows, means)
    return means, bits


def _column_numeric_values(
    rows, position: int, n_rows: int, memo: dict
) -> tuple[np.ndarray, np.ndarray]:
    """``numeric_value`` of one column as ``(values, is_none)`` arrays
    (NaN at excluded positions) -- the scalar per-cell extraction, shared
    by both quadrant-matrix builders."""
    memo_get = memo.get
    values = np.empty(n_rows, dtype=np.float64)
    is_none = np.zeros(n_rows, dtype=bool)
    for i, row in enumerate(rows):
        value = row[position]
        if value is True or value is False:
            numeric = None
        else:
            numeric = memo_get(value, _MISSING)
            if numeric is _MISSING:
                numeric = numeric_value(value)
                memo[value] = numeric
        if numeric is None:
            is_none[i] = True
            values[i] = np.nan
        else:
            values[i] = numeric
    return values, is_none


def _fill_column_bits(
    bits: np.ndarray,
    position: int,
    values: np.ndarray,
    is_none: np.ndarray,
    n_rows: int,
    means: list,
) -> None:
    """Mean + quadrant bits of one extracted column, appended/written in
    place (shared tail of both quadrant-matrix builders)."""
    count = n_rows - int(is_none.sum())
    if count == 0:
        means.append(None)
        return
    # Sequential Python-float summation in row order: identical
    # rounding to the scalar ``column_means`` accumulation loop.
    mean = sum(values[~is_none].tolist()) / count
    means.append(mean)
    column_bits = (values >= mean).astype(np.int8)  # NaN -> 0, as scalar
    column_bits[is_none] = -1
    bits[:, position] = column_bits


def column_quadrant_matrix_fast(
    table: Table, memo: Optional[dict] = None
) -> tuple[list[Optional[float]], np.ndarray]:
    """:func:`column_quadrant_matrix` with vectorised per-column numeric
    extraction -- the sharded index pipeline's variant.

    Columns whose cells are purely ``int``/``float``/numeric-``str`` (plus
    NULLs) are converted with one ``astype(float64)`` pass; anything the
    fast dispatch cannot prove equivalent (bools, mixed str+float columns
    where the two NaN conventions differ, unparsable strings, exotic
    types) falls back to the shared scalar extraction, so the result is
    bit-identical to :func:`column_quadrant_matrix` by construction.

    The NaN conventions that force the str+float fallback:
    ``numeric_value`` maps a *float* NaN cell to None (excluded, bit -1)
    but a ``"nan"`` *string* cell to NaN (included: it poisons the mean
    and compares False, bit 0). With only one of the two types present
    the exclusion mask is decidable from the array alone.
    """
    flags = table.numeric_columns()
    n_rows, n_cols = table.num_rows, table.num_columns
    means: list[Optional[float]] = []
    bits = np.full((n_rows, n_cols), -1, dtype=np.int8)
    rows = table.rows
    if memo is None:
        memo = {}
    for position in range(n_cols):
        if not flags[position]:
            means.append(None)
            continue
        column = [row[position] for row in rows]
        values = is_none = None
        kinds = set(map(type, column))
        kinds.discard(type(None))
        if kinds and kinds <= {int, float, str} and not (str in kinds and float in kinds):
            none_mask = np.fromiter((v is None for v in column), dtype=bool, count=n_rows)
            present = [v for v in column if v is not None] if none_mask.any() else column
            try:
                converted = np.array(present, dtype=np.float64)
            except (ValueError, TypeError, OverflowError):
                converted = None  # e.g. non-numeric str in an 80 % column
            if converted is not None:
                values = np.full(n_rows, np.nan, dtype=np.float64)
                values[~none_mask] = converted
                if float in kinds:
                    is_none = none_mask | np.isnan(values)
                else:
                    is_none = none_mask
        if values is None:
            values, is_none = _column_numeric_values(rows, position, n_rows, memo)
        _fill_column_bits(bits, position, values, is_none, n_rows, means)
    return means, bits


def split_keys_by_target(
    keys: Sequence[Cell], targets: Sequence[Cell]
) -> tuple[list[str], list[str]]:
    """Split query join keys into (below-mean, above-or-equal-mean) token
    lists -- the ``$k_0$`` / ``$k_1$`` parameters of Listing 3.

    The split happens "before invoking the query while parsing the input
    table" (paper §VI); keys with non-numeric targets are dropped. A key
    appearing with targets on both sides keeps its first occurrence,
    matching a hash-map build over the query column.
    """
    from ..lake.table import normalize_cell

    values = [numeric_value(t) for t in targets]
    present = [v for v in values if v is not None]
    if not present:
        return [], []
    mean = sum(present) / len(present)
    below: list[str] = []
    above: list[str] = []
    seen: set[str] = set()
    for key, value in zip(keys, values):
        token = normalize_cell(key)
        if token is None or value is None or token in seen:
            continue
        seen.add(token)
        if value >= mean:
            above.append(token)
        else:
            below.append(token)
    return below, above


def qcr_from_counts(same_quadrant: int, total: int) -> float:
    """QCR from the count of same-quadrant pairs among *total* pairs."""
    if total == 0:
        return 0.0
    return (2.0 * same_quadrant - total) / total
