"""XASH: the super-key hash of MATE (Esmailoghli et al., VLDB 2022).

XASH maps each cell token to a sparse bitmask built from the token's
*least frequent* characters (rare characters discriminate better), with
the character's position quantised into location buckets and the whole
mask rotated by the token length. A row's **super key** is the bitwise OR
of its cells' hashes.

The super key acts as a bloom filter for multi-column joins: a candidate
row can only contain all values of a query tuple if every query value's
hash is bit-contained in the row's super key. False positives are
possible (bits contributed by other cells may cover a missed value); false
negatives are not -- recall stays 100 % (paper Table V).

The default hash width is 63 bits so super keys fit a signed int64 column
in the column store; MATE's 128-bit variant is available via ``hash_size``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from ..lake.table import Cell, normalize_cell

# English-corpus character frequencies (rare -> strong discriminators).
# Characters outside this table are treated as maximally rare.
_CHAR_FREQUENCY = {
    "e": 12.70, "t": 9.06, "a": 8.17, "o": 7.51, "i": 6.97, "n": 6.75,
    "s": 6.33, "h": 6.09, "r": 5.99, "d": 4.25, "l": 4.03, "c": 2.78,
    "u": 2.76, "m": 2.41, "w": 2.36, "f": 2.23, "g": 2.02, "y": 1.97,
    "p": 1.93, "b": 1.29, "v": 0.98, "k": 0.77, "j": 0.15, "x": 0.15,
    "q": 0.10, "z": 0.07, "0": 3.0, "1": 3.0, "2": 2.0, "3": 2.0,
    "4": 2.0, "5": 2.0, "6": 2.0, "7": 2.0, "8": 2.0, "9": 2.0,
    " ": 10.0, "-": 1.5, ".": 1.5, "_": 1.0, "/": 1.0,
}

DEFAULT_HASH_SIZE = 63
DEFAULT_NUM_CHARS = 2
_LOCATION_BUCKETS = 4
_SPREAD_PRIME = 0x9E3779B1  # golden-ratio prime: spreads character codes


def _rotate_left(value: int, shift: int, width: int) -> int:
    """Rotate a *width*-bit integer left by *shift* bits."""
    shift %= width
    mask = (1 << width) - 1
    return ((value << shift) | (value >> (width - shift))) & mask


@lru_cache(maxsize=200_000)
def xash(
    token: str,
    hash_size: int = DEFAULT_HASH_SIZE,
    num_chars: int = DEFAULT_NUM_CHARS,
) -> int:
    """The XASH bitmask of a normalised token.

    Deterministic; the cache makes repeated indexing of skewed value
    distributions cheap.
    """
    if not token:
        return 0
    # Select the `num_chars` least frequent characters, most discriminating
    # first; stable by first occurrence for determinism.
    seen: dict[str, int] = {}
    for position, char in enumerate(token):
        if char not in seen:
            seen[char] = position
    ranked = sorted(
        seen.items(), key=lambda item: (_CHAR_FREQUENCY.get(item[0], 0.0), item[1])
    )
    mask = 0
    length = len(token)
    char_space = max(1, hash_size // _LOCATION_BUCKETS)
    for char, position in ranked[:num_chars]:
        char_slot = (ord(char) * _SPREAD_PRIME) % char_space
        location = min(_LOCATION_BUCKETS - 1, (position * _LOCATION_BUCKETS) // length)
        bit = (char_slot * _LOCATION_BUCKETS + location) % hash_size
        mask |= 1 << bit
    return _rotate_left(mask, length, hash_size)



# ASCII-indexed view of _CHAR_FREQUENCY for the vectorised path. Index 128
# is a shared "unknown" slot (frequency 0.0); every key in the table is
# ASCII, so clipping codes to 128 preserves the scalar lookup semantics.
_FREQ_TABLE = np.zeros(129, dtype=np.float64)
for _char, _freq in _CHAR_FREQUENCY.items():
    _FREQ_TABLE[ord(_char)] = _freq
del _char, _freq

# Rank key = frequency * _POSITION_SCALE + position. Frequencies differ by
# >= 0.01, so any two distinct frequencies are separated by >= 1e7 key
# units -- far above any realistic token length -- while the sum stays well
# inside float64's 2^53 exact-integer range.
_POSITION_SCALE = 1e9

# Tokens longer than this fall back to the scalar path inside xash_batch
# (the batch matrix pads every token to the longest, so outliers would
# blow up memory quadratically with the per-row sorts).
_MAX_VECTOR_TOKEN_LEN = 64


def hash_dtype(hash_size: int):
    """Array dtype for *hash_size*-bit hashes: ``int64`` up to 63 bits
    (the column store's ``SuperKey`` width), object arrays of Python ints
    beyond (MATE's 128-bit variant). One definition shared by every
    batch producer -- including each shard worker of the parallel
    ``AllTables`` build, whose parts must concatenate without dtype
    surprises at the merge."""
    return object if hash_size > 63 else np.int64


def xash_batch(
    tokens: Sequence[str],
    hash_size: int = DEFAULT_HASH_SIZE,
    num_chars: int = DEFAULT_NUM_CHARS,
) -> np.ndarray:
    """Vectorised :func:`xash` over a batch of normalised tokens.

    Bit-identical to calling ``xash`` per token; the offline indexer calls
    this over each table's *unique* tokens and broadcasts the result back
    with an inverse index, replacing the per-call cached loop.

    The final left-rotation by token length distributes over the OR of
    single-bit masks, so it is folded into the per-bit position arithmetic
    (``(bit + len) % hash_size``) and no wide-integer rotate is needed.

    Returns an ``int64`` array when ``hash_size <= 63`` (the column-store
    ``SuperKey`` width) and an object array of Python ints otherwise
    (MATE's 128-bit variant).
    """
    n = len(tokens)
    wide = hash_size > 63
    out_dtype = hash_dtype(hash_size)
    if n == 0:
        return np.empty(0, dtype=out_dtype)
    lengths = np.fromiter((len(t) for t in tokens), dtype=np.int64, count=n)
    if int(lengths.max()) > _MAX_VECTOR_TOKEN_LEN:
        # The vector path pads every token to the batch maximum, so one
        # huge cell (embedded JSON, long description) would inflate the
        # UCS4 matrix to n x max_len. Outlier-long tokens take the scalar
        # path instead; the rest stay vectorised at bounded width.
        out = np.empty(n, dtype=out_dtype)
        long_mask = lengths > _MAX_VECTOR_TOKEN_LEN
        short_positions = np.nonzero(~long_mask)[0]
        out[short_positions] = xash_batch(
            [tokens[i] for i in short_positions], hash_size, num_chars
        )
        for i in np.nonzero(long_mask)[0]:
            out[i] = xash(tokens[i], hash_size, num_chars)
        return out
    arr = np.asarray(tokens, dtype=np.str_)
    width = arr.dtype.itemsize // 4
    if width == 0:
        return np.zeros(n, dtype=out_dtype)
    codes = np.ascontiguousarray(arr).view(np.uint32).reshape(n, width)
    positions = np.arange(width, dtype=np.int64)
    pad = positions[None, :] >= lengths[:, None]

    # Duplicate characters: keep only each character's first occurrence
    # (the scalar path dedups before ranking). A stable per-row sort by
    # character code puts the earliest occurrence of each code first; any
    # later equal neighbour is a duplicate, scattered back to token order.
    order = np.argsort(codes, axis=1, kind="stable")
    sorted_codes = np.take_along_axis(codes, order, axis=1)
    dup_sorted = np.zeros((n, width), dtype=bool)
    dup_sorted[:, 1:] = sorted_codes[:, 1:] == sorted_codes[:, :-1]
    dup = np.zeros((n, width), dtype=bool)
    np.put_along_axis(dup, order, dup_sorted, axis=1)

    key = _FREQ_TABLE[np.minimum(codes, 128)] * _POSITION_SCALE
    key = key + positions[None, :]
    key[pad | dup] = np.inf

    select = np.argsort(key, axis=1, kind="stable")[:, :num_chars]
    valid = np.isfinite(np.take_along_axis(key, select, axis=1))
    chosen_codes = np.take_along_axis(codes, select, axis=1)

    char_space = max(1, hash_size // _LOCATION_BUCKETS)
    char_slot = (chosen_codes.astype(np.uint64) * np.uint64(_SPREAD_PRIME)) % np.uint64(char_space)
    safe_len = np.maximum(lengths, 1)[:, None]
    location = np.minimum(_LOCATION_BUCKETS - 1, (select * _LOCATION_BUCKETS) // safe_len)
    bit = (char_slot * np.uint64(_LOCATION_BUCKETS) + location.astype(np.uint64)) % np.uint64(hash_size)
    # Fold the length rotation into the bit position (see docstring).
    final_bit = (bit + lengths[:, None].astype(np.uint64)) % np.uint64(hash_size)

    if not wide:
        bits = np.where(valid, np.uint64(1) << final_bit, np.uint64(0))
        return np.bitwise_or.reduce(bits, axis=1).astype(np.int64)
    ones = np.ones(final_bit.shape, dtype=object)
    bits = np.left_shift(ones, final_bit.astype(object))
    bits[~valid] = 0
    return np.bitwise_or.reduce(bits, axis=1)


def segmented_or(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """OR-reduce contiguous segments of *values* (``int64`` or object
    Python ints) starting at *starts* -- the shared super-key fold used by
    both the offline ingest (per-row cell hashes) and the online MC seeker
    (per-tuple query hashes)."""
    if len(values) == 0:
        return np.empty(0, dtype=values.dtype)
    return np.bitwise_or.reduceat(values, starts)


def tuple_hashes_batch(
    tuples: Sequence[Sequence[str]],
    hash_size: int = DEFAULT_HASH_SIZE,
    num_chars: int = DEFAULT_NUM_CHARS,
) -> np.ndarray:
    """Vectorised :func:`tuple_hash` over a batch of normalised-token
    tuples: XASH runs once over the batch's *unique* tokens and each
    tuple's hash is an OR over its token positions -- the online mirror of
    the ingest pipeline's unique-token broadcast.

    Returns one hash per tuple (``int64`` for ``hash_size <= 63``, object
    otherwise), bit-identical to calling ``tuple_hash`` per tuple.
    """
    out_dtype = hash_dtype(hash_size)
    if not tuples:
        return np.empty(0, dtype=out_dtype)
    vocab: dict[str, int] = {}
    flat: list[int] = []
    lengths = np.empty(len(tuples), dtype=np.int64)
    for i, values in enumerate(tuples):
        lengths[i] = len(values)
        for token in values:
            code = vocab.get(token)
            if code is None:
                code = len(vocab)
                vocab[token] = code
            flat.append(code)
    unique_hashes = xash_batch(list(vocab), hash_size, num_chars)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    hashes = np.zeros(len(tuples), dtype=out_dtype)
    occupied = lengths > 0
    gathered = unique_hashes[np.asarray(flat, dtype=np.int64)]
    if occupied.any():
        hashes[occupied] = segmented_or(gathered, starts[occupied])
    return hashes


# Bound on the (candidates x hashes) bitwise matrix: ~32 MB of int64.
_CONTAIN_BLOCK_CELLS = 1 << 22


def may_contain_batch(super_keys: np.ndarray, query_hashes: np.ndarray) -> np.ndarray:
    """Vectorised :func:`may_contain`: for each row super key, can it
    bit-contain *any* of the query hashes?

    The int64 fast path runs one broadcast bitwise-AND over the full
    (candidates x hashes) matrix, blocked over hash columns to bound peak
    memory; the 128-bit variant (object arrays of Python ints) falls back
    to one pass per distinct hash.
    """
    mask = np.zeros(len(super_keys), dtype=bool)
    if len(super_keys) == 0 or len(query_hashes) == 0:
        return mask
    if super_keys.dtype == object or query_hashes.dtype == object:
        # Mixed widths happen: 128-bit query hashes are always object,
        # but a candidate batch whose super keys all fit 63 bits arrives
        # as int64 -- AND-ing a >2^63 Python int into an int64 array
        # would raise OverflowError, so promote the keys first.
        keys = super_keys if super_keys.dtype == object else super_keys.astype(object)
        for query_hash in query_hashes:
            mask |= (keys & query_hash) == query_hash
        return mask
    block = max(1, _CONTAIN_BLOCK_CELLS // max(len(super_keys), 1))
    keys = super_keys[:, None]
    for start in range(0, len(query_hashes), block):
        hashes = query_hashes[None, start : start + block]
        mask |= ((keys & hashes) == hashes).any(axis=1)
    return mask


def super_key(
    row: Iterable[Cell],
    hash_size: int = DEFAULT_HASH_SIZE,
    num_chars: int = DEFAULT_NUM_CHARS,
) -> int:
    """OR-aggregate XASH of all non-null cells in a row."""
    key = 0
    for value in row:
        token = normalize_cell(value)
        if token is not None:
            key |= xash(token, hash_size, num_chars)
    return key


def tuple_hash(
    values: Iterable[Cell],
    hash_size: int = DEFAULT_HASH_SIZE,
    num_chars: int = DEFAULT_NUM_CHARS,
) -> int:
    """OR-aggregate XASH of a query tuple (same as :func:`super_key`; kept
    as a named operation because callers hash *query* tuples with it)."""
    return super_key(values, hash_size, num_chars)


def may_contain(row_super_key: int, query_hash: int) -> bool:
    """Bloom-filter containment: can a row with *row_super_key* contain
    every value behind *query_hash*? No false negatives."""
    return (row_super_key & query_hash) == query_hash
