"""XASH: the super-key hash of MATE (Esmailoghli et al., VLDB 2022).

XASH maps each cell token to a sparse bitmask built from the token's
*least frequent* characters (rare characters discriminate better), with
the character's position quantised into location buckets and the whole
mask rotated by the token length. A row's **super key** is the bitwise OR
of its cells' hashes.

The super key acts as a bloom filter for multi-column joins: a candidate
row can only contain all values of a query tuple if every query value's
hash is bit-contained in the row's super key. False positives are
possible (bits contributed by other cells may cover a missed value); false
negatives are not -- recall stays 100 % (paper Table V).

The default hash width is 63 bits so super keys fit a signed int64 column
in the column store; MATE's 128-bit variant is available via ``hash_size``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional

from ..lake.table import Cell, normalize_cell

# English-corpus character frequencies (rare -> strong discriminators).
# Characters outside this table are treated as maximally rare.
_CHAR_FREQUENCY = {
    "e": 12.70, "t": 9.06, "a": 8.17, "o": 7.51, "i": 6.97, "n": 6.75,
    "s": 6.33, "h": 6.09, "r": 5.99, "d": 4.25, "l": 4.03, "c": 2.78,
    "u": 2.76, "m": 2.41, "w": 2.36, "f": 2.23, "g": 2.02, "y": 1.97,
    "p": 1.93, "b": 1.29, "v": 0.98, "k": 0.77, "j": 0.15, "x": 0.15,
    "q": 0.10, "z": 0.07, "0": 3.0, "1": 3.0, "2": 2.0, "3": 2.0,
    "4": 2.0, "5": 2.0, "6": 2.0, "7": 2.0, "8": 2.0, "9": 2.0,
    " ": 10.0, "-": 1.5, ".": 1.5, "_": 1.0, "/": 1.0,
}

DEFAULT_HASH_SIZE = 63
DEFAULT_NUM_CHARS = 2
_LOCATION_BUCKETS = 4
_SPREAD_PRIME = 0x9E3779B1  # golden-ratio prime: spreads character codes


def _rotate_left(value: int, shift: int, width: int) -> int:
    """Rotate a *width*-bit integer left by *shift* bits."""
    shift %= width
    mask = (1 << width) - 1
    return ((value << shift) | (value >> (width - shift))) & mask


@lru_cache(maxsize=200_000)
def xash(
    token: str,
    hash_size: int = DEFAULT_HASH_SIZE,
    num_chars: int = DEFAULT_NUM_CHARS,
) -> int:
    """The XASH bitmask of a normalised token.

    Deterministic; the cache makes repeated indexing of skewed value
    distributions cheap.
    """
    if not token:
        return 0
    # Select the `num_chars` least frequent characters, most discriminating
    # first; stable by first occurrence for determinism.
    seen: dict[str, int] = {}
    for position, char in enumerate(token):
        if char not in seen:
            seen[char] = position
    ranked = sorted(
        seen.items(), key=lambda item: (_CHAR_FREQUENCY.get(item[0], 0.0), item[1])
    )
    mask = 0
    length = len(token)
    char_space = max(1, hash_size // _LOCATION_BUCKETS)
    for char, position in ranked[:num_chars]:
        char_slot = (ord(char) * _SPREAD_PRIME) % char_space
        location = min(_LOCATION_BUCKETS - 1, (position * _LOCATION_BUCKETS) // length)
        bit = (char_slot * _LOCATION_BUCKETS + location) % hash_size
        mask |= 1 << bit
    return _rotate_left(mask, length, hash_size)



def super_key(
    row: Iterable[Cell],
    hash_size: int = DEFAULT_HASH_SIZE,
    num_chars: int = DEFAULT_NUM_CHARS,
) -> int:
    """OR-aggregate XASH of all non-null cells in a row."""
    key = 0
    for value in row:
        token = normalize_cell(value)
        if token is not None:
            key |= xash(token, hash_size, num_chars)
    return key


def tuple_hash(
    values: Iterable[Cell],
    hash_size: int = DEFAULT_HASH_SIZE,
    num_chars: int = DEFAULT_NUM_CHARS,
) -> int:
    """OR-aggregate XASH of a query tuple (same as :func:`super_key`; kept
    as a named operation because callers hash *query* tuples with it)."""
    return super_key(values, hash_size, num_chars)


def may_contain(row_super_key: int, query_hash: int) -> bool:
    """Bloom-filter containment: can a row with *row_super_key* contain
    every value behind *query_hash*? No false negatives."""
    return (row_super_key & query_hash) == query_hash
