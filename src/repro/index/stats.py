"""Lake statistics for the optimizer's learned cost model (paper §VII-B).

The cost model's features are computed from corpus statistics gathered in
the offline phase: the frequency of each token in the lake (posting-list
length) and aggregate counts. Kept separate from the index so the online
phase can estimate seeker costs without touching ``AllTables``.

Statistics are **maintained exactly** under the lake lifecycle:
:meth:`LakeStatistics.add_table` and :meth:`LakeStatistics.remove_table`
update every field (per-token frequencies included, with zero-count
tokens dropped), so a long-running deployment's statistics always equal a
from-scratch :meth:`LakeStatistics.from_lake` over the current lake --
pinned by tests, no drift. Both the offline scan and the maintenance
deltas run on the vectorised token-factorisation kernel of the AllTables
builder (one ``np.bincount`` per table instead of a per-cell Python
loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..lake.datalake import DataLake
from ..lake.table import Cell, Table, normalize_cell, normalize_tokens


def table_token_counts(table: Table, factorizer=None) -> tuple[list[str], np.ndarray]:
    """Per-token occurrence counts of one table's non-null cells.

    Runs the AllTables builder's batch factorisation kernel
    (:class:`repro.index.alltables._FastFactorizer`; bit-identical to
    ``normalize_cell`` per cell, including the bool/int duality rules)
    and one ``np.bincount`` -- the vectorised replacement for the old
    per-cell statistics loop. Returns ``(tokens, counts)`` aligned
    arrays; pass a shared *factorizer* to reuse its memo across tables
    (counts then cover only this table, tokens are the factorizer's
    cumulative first-seen list).
    """
    from .alltables import _FastFactorizer  # local: avoids import cycle at load

    if factorizer is None:
        factorizer = _FastFactorizer()
    n_cells = table.num_rows * table.num_columns
    if n_cells == 0:
        return factorizer.tokens, np.zeros(len(factorizer.tokens), dtype=np.int64)
    tokens = getattr(table, "tokens_if_cached", lambda: None)()
    if tokens is not None:
        # The indexing path already normalised this table (the cache is
        # populated by ``index_table``/``Table.normalized_cells``):
        # factorize straight from tokens.
        codes = factorizer.factorize_tokens(tokens, n_cells)
    else:
        codes = factorizer.factorize_tokens(
            normalize_tokens([v for row in table.rows for v in row]), n_cells
        )
    counts = np.bincount(codes[codes >= 0], minlength=len(factorizer.tokens))
    return factorizer.tokens, counts.astype(np.int64, copy=False)


@dataclass
class LakeStatistics:
    """Token frequencies plus corpus aggregates."""

    num_tables: int
    num_cells: int
    frequencies: dict[str, int] = field(repr=False)
    num_columns: int = 0
    num_rows: int = 0

    @property
    def num_distinct_tokens(self) -> int:
        """Distinct non-null tokens across the lake (maintained exactly:
        tokens whose frequency reaches zero are dropped)."""
        return len(self.frequencies)

    def average_posting_length(self) -> float:
        """Mean posting-list length (``AllTables`` rows per distinct
        token) -- the corpus' value-collision density, which scales how
        many index rows one probed token drags into a seeker scan."""
        if not self.frequencies:
            return 0.0
        return self.num_cells / len(self.frequencies)

    @classmethod
    def from_lake(cls, lake: DataLake) -> "LakeStatistics":
        from .alltables import _FastFactorizer

        factorizer = _FastFactorizer()
        totals = np.zeros(0, dtype=np.int64)
        num_cells = 0
        num_columns = 0
        num_rows = 0
        for table in lake:
            tokens, counts = table_token_counts(table, factorizer)
            if len(counts) > len(totals):
                grown = np.zeros(len(counts), dtype=np.int64)
                grown[: len(totals)] = totals
                totals = grown
            totals[: len(counts)] += counts
            num_cells += int(counts.sum())
            num_columns += table.num_columns
            num_rows += table.num_rows
        frequencies = dict(zip(factorizer.tokens, totals.tolist()))
        return cls(
            num_tables=len(lake),
            num_cells=num_cells,
            frequencies=frequencies,
            num_columns=num_columns,
            num_rows=num_rows,
        )

    # -- snapshots --------------------------------------------------------------------

    def snapshot_arrays(self) -> tuple[list[str], np.ndarray]:
        """The per-token frequency table as aligned ``(tokens, counts)``
        arrays -- the snapshot layer's mmap-friendly form (counts as one
        int64 ``.npy``, tokens as an offsets+UTF-8-blob pair); the
        aggregate scalars travel in the manifest."""
        counts = np.fromiter(
            self.frequencies.values(), dtype=np.int64, count=len(self.frequencies)
        )
        return list(self.frequencies.keys()), counts

    @classmethod
    def from_snapshot(
        cls,
        tokens: list[str],
        counts: np.ndarray,
        num_tables: int,
        num_cells: int,
        num_columns: int,
        num_rows: int,
    ) -> "LakeStatistics":
        """Rebuild statistics from :meth:`snapshot_arrays` output plus
        the manifest aggregates -- exactly equal (``==``) to the
        instance that was saved."""
        return cls(
            num_tables=num_tables,
            num_cells=num_cells,
            frequencies=dict(zip(tokens, counts.tolist())),
            num_columns=num_columns,
            num_rows=num_rows,
        )

    # -- exact lifecycle maintenance ------------------------------------------------

    def add_table(self, table: Table) -> None:
        """Fold one added table into every statistic (vectorised)."""
        tokens, counts = table_token_counts(table)
        frequencies = self.frequencies
        for token, count in zip(tokens, counts.tolist()):
            if count:
                frequencies[token] = frequencies.get(token, 0) + count
        self.num_cells += int(counts.sum())
        self.num_tables += 1
        self.num_columns += table.num_columns
        self.num_rows += table.num_rows

    def remove_table(self, table: Table) -> None:
        """Subtract one removed table from every statistic -- exact
        per-token frequency decrements, with tokens dropped at zero so
        the maintained state stays equal to a from-scratch scan (no
        drift, no ghost tokens inflating ``num_distinct_tokens``)."""
        tokens, counts = table_token_counts(table)
        frequencies = self.frequencies
        for token, count in zip(tokens, counts.tolist()):
            if not count:
                continue
            remaining = frequencies.get(token, 0) - count
            if remaining > 0:
                frequencies[token] = remaining
            else:
                frequencies.pop(token, None)
        self.num_cells -= int(counts.sum())
        self.num_tables -= 1
        self.num_columns -= table.num_columns
        self.num_rows -= table.num_rows

    def replace_table(self, previous: Table, table: Table) -> None:
        """Swap one table's contribution for another's (same table id)."""
        self.remove_table(previous)
        self.add_table(table)

    # -- cost-model reads ------------------------------------------------------------

    def frequency(self, value: Cell) -> int:
        """Occurrences of one value's token across the lake."""
        token = normalize_cell(value)
        if token is None:
            return 0
        return self.frequencies.get(token, 0)

    def average_frequency(self, values: Iterable[Cell]) -> float:
        """Mean token frequency of a query column -- the cost model's
        third feature. Unknown tokens count as zero (they prune to empty
        posting lists, the cheapest case)."""
        total = 0
        count = 0
        for value in values:
            total += self.frequency(value)
            count += 1
        return total / count if count else 0.0

    def selectivity(self, values: Iterable[Cell]) -> float:
        """Fraction of all index rows a value set touches (upper bound)."""
        if self.num_cells == 0:
            return 0.0
        touched = sum(self.frequency(v) for v in values)
        return min(1.0, touched / self.num_cells)
