"""Lake statistics for the optimizer's learned cost model (paper §VII-B).

The cost model's features are computed from corpus statistics gathered in
the offline phase: the frequency of each token in the lake (posting-list
length) and aggregate counts. Kept separate from the index so the online
phase can estimate seeker costs without touching ``AllTables``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..lake.datalake import DataLake
from ..lake.table import Cell, normalize_cell


@dataclass
class LakeStatistics:
    """Token frequencies plus corpus aggregates."""

    num_tables: int
    num_cells: int
    frequencies: dict[str, int] = field(repr=False)

    @classmethod
    def from_lake(cls, lake: DataLake) -> "LakeStatistics":
        frequencies: dict[str, int] = {}
        num_cells = 0
        for table in lake:
            for _, _, value in table.iter_cells():
                token = normalize_cell(value)
                if token is None:
                    continue
                num_cells += 1
                frequencies[token] = frequencies.get(token, 0) + 1
        return cls(num_tables=len(lake), num_cells=num_cells, frequencies=frequencies)

    def frequency(self, value: Cell) -> int:
        """Occurrences of one value's token across the lake."""
        token = normalize_cell(value)
        if token is None:
            return 0
        return self.frequencies.get(token, 0)

    def average_frequency(self, values: Iterable[Cell]) -> float:
        """Mean token frequency of a query column -- the cost model's
        third feature. Unknown tokens count as zero (they prune to empty
        posting lists, the cheapest case)."""
        total = 0
        count = 0
        for value in values:
            total += self.frequency(value)
            count += 1
        return total / count if count else 0.0

    def selectivity(self, values: Iterable[Cell]) -> float:
        """Fraction of all index rows a value set touches (upper bound)."""
        if self.num_cells == 0:
            return 0.0
        touched = sum(self.frequency(v) for v in values)
        return min(1.0, touched / self.num_cells)
