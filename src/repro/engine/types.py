"""SQL value model for the embedded engine.

The engine supports four scalar types -- ``NULL``, booleans, numbers
(int/float), and text -- mirroring what BLEND's ``AllTables`` relation
needs (``CellValue`` nvarchar, id integers, ``SuperKey`` unsigned int,
``Quadrant`` nullable boolean).

Python ``None`` represents SQL ``NULL`` throughout. Comparisons follow SQL
three-valued logic: any comparison against ``NULL`` yields ``NULL``
(``None``), and ``WHERE`` only keeps rows whose predicate is truthy.
"""

from __future__ import annotations

from enum import Enum
from typing import Any


class SqlType(Enum):
    """Declared column types understood by the catalog."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"

    @classmethod
    def from_name(cls, name: str) -> "SqlType":
        normalized = name.strip().lower()
        aliases = {
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "smallint": cls.INTEGER,
            "byte": cls.INTEGER,
            "float": cls.FLOAT,
            "real": cls.FLOAT,
            "double": cls.FLOAT,
            "numeric": cls.FLOAT,
            "decimal": cls.FLOAT,
            "text": cls.TEXT,
            "varchar": cls.TEXT,
            "nvarchar": cls.TEXT,
            "string": cls.TEXT,
            "char": cls.TEXT,
            "bool": cls.BOOLEAN,
            "boolean": cls.BOOLEAN,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ValueError(f"unknown SQL type name: {name!r}") from None


def is_null(value: Any) -> bool:
    """True when *value* is SQL NULL."""
    return value is None


def coerce_to_type(value: Any, sql_type: SqlType) -> Any:
    """Coerce a Python value into the storage representation of *sql_type*.

    ``None`` passes through unchanged. Raises ``ValueError`` when the value
    cannot be represented (e.g. text into an integer column).
    """
    if value is None:
        return None
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise ValueError(f"cannot store {value!r} in an INTEGER column")
    if sql_type is SqlType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        raise ValueError(f"cannot store {value!r} in a FLOAT column")
    if sql_type is SqlType.TEXT:
        if isinstance(value, str):
            return value
        raise ValueError(f"cannot store {value!r} in a TEXT column")
    if sql_type is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise ValueError(f"cannot store {value!r} in a BOOLEAN column")
    raise ValueError(f"unhandled SQL type: {sql_type}")


def sql_equals(left: Any, right: Any) -> Any:
    """Three-valued SQL equality. Returns True/False/None."""
    if left is None or right is None:
        return None
    return _comparable(left) == _comparable(right)


def sql_compare(left: Any, right: Any) -> Any:
    """Three-valued comparison: -1/0/+1, or ``None`` for NULL operands.

    Mixed text/number comparisons raise ``TypeError`` -- the planner is
    expected to keep comparisons type-homogeneous, like a strict DBMS.
    """
    if left is None or right is None:
        return None
    lhs, rhs = _comparable(left), _comparable(right)
    if isinstance(lhs, str) != isinstance(rhs, str):
        raise TypeError(f"cannot compare {type(left).__name__} with {type(right).__name__}")
    if lhs < rhs:
        return -1
    if lhs > rhs:
        return 1
    return 0


def _comparable(value: Any) -> Any:
    """Normalise booleans to ints so that ``true = 1`` holds, as in most
    SQL engines with implicit boolean/integer duality."""
    if isinstance(value, bool):
        return int(value)
    return value


def sql_and(left: Any, right: Any) -> Any:
    """Three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Any, right: Any) -> Any:
    """Three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Any) -> Any:
    """Three-valued NOT."""
    if value is None:
        return None
    return not value


def sql_cast_int(value: Any) -> Any:
    """The ``::int`` cast used by the correlation seeker's QCR formula.

    Booleans become 0/1, numeric strings are parsed, NULL stays NULL.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        try:
            return int(float(value))
        except ValueError:
            raise ValueError(f"cannot cast {value!r} to int") from None
    raise ValueError(f"cannot cast {value!r} to int")


def sql_cast_float(value: Any) -> Any:
    """The ``::float`` cast."""
    if value is None:
        return None
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise ValueError(f"cannot cast {value!r} to float") from None
    raise ValueError(f"cannot cast {value!r} to float")


def sort_key(value: Any) -> tuple:
    """Total-order key for ORDER BY.

    SQL NULLs sort last (ascending); values are grouped by kind so mixed
    columns still produce a deterministic order: numbers < text < bool-free
    leftovers. This mirrors PostgreSQL's NULLS LAST default.
    """
    if value is None:
        return (2, 0)
    normalized = _comparable(value)
    if isinstance(normalized, str):
        return (1, normalized)
    return (0, normalized)
