"""Row-oriented storage backend ("the PostgreSQL role" in the paper).

Rows are stored as Python tuples; secondary indexes are hash maps from a
column value to the list of row positions holding it. The tuple-at-a-time
iterator executor (:mod:`..sql.executor_row`) scans this layout, which
gives the engine the cost profile of a classic row store: cheap point
look-ups through indexes, comparatively expensive full scans and
aggregations.

Deletes (``delete_rows``) are **tombstones**: matching rows are masked
out, every read path skips them, and once the dead fraction crosses
``compact_threshold`` the table is compacted -- rows physically dropped,
indexes rebuilt, and (when ``cluster_keys`` is set) rows re-sorted into
the declared clustering order, so compacted storage is indistinguishable
from a freshly bulk-loaded table.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from ...errors import CatalogError, ExecutionError
from ..types import SqlType, coerce_to_type
from .catalog import TableSchema

# Approximate per-value heap costs used by the storage accounting that
# backs Table VIII. Exact ``sys.getsizeof`` is too slow for million-row
# lakes, so fixed averages are used for the common cases.
_BYTES_PER_POINTER = 8
_BYTES_TUPLE_OVERHEAD = 56

# Dead-row fraction at which delete_rows triggers automatic compaction.
DEFAULT_COMPACT_THRESHOLD = 0.3


class RowTable:
    """A table stored as a list of tuples plus optional hash indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[tuple] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}
        self._deleted: Optional[list[bool]] = None  # tombstone mask
        self._num_deleted = 0
        self.compact_threshold = DEFAULT_COMPACT_THRESHOLD
        self.cluster_keys: tuple[str, ...] = ()
        self.compactions = 0  # bumped per physical compaction
        # Storage rows adopted from a snapshot base (delta accounting
        # only -- the row store has no mmap sharing to protect, so
        # mutations need no structural base/delta split).
        self._base_rows = 0

    # -- data ----------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._rows) - self._num_deleted

    # -- snapshots ---------------------------------------------------------------

    def snapshot_rows(self) -> tuple[list[tuple], Optional[list[bool]]]:
        """The storage state a snapshot persists: every stored row
        (tombstoned ones included, position-aligned with the mask) plus
        the tombstone mask, ``None`` while the table holds no deletes.
        The row store's payload is its tuples -- the row-oriented
        equivalent of the column store's sealed arrays -- serialised by
        the snapshot layer as one pickle stream, which round-trips every
        cell exactly (arbitrary-precision 128-bit super keys included).
        """
        return self._rows, self._deleted

    @classmethod
    def from_snapshot(
        cls,
        schema: TableSchema,
        rows: list[tuple],
        deleted: Optional[list[bool]] = None,
        index_columns: Iterable[str] = (),
        cluster_keys: Sequence[str] = (),
        compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
        compactions: int = 0,
    ) -> "RowTable":
        """Rebuild a table around already-typed snapshot rows. Declared
        hash indexes are rebuilt eagerly (the row store has no lazy
        postings path -- every mutation maintains them in place)."""
        table = cls(schema)
        table._rows = [tuple(row) for row in rows]
        table._deleted = list(deleted) if deleted is not None else None
        table._num_deleted = sum(table._deleted) if table._deleted else 0
        table.cluster_keys = tuple(cluster_keys)
        table.compact_threshold = compact_threshold
        table.compactions = compactions
        table._base_rows = len(table._rows)
        for name in index_columns:
            table.create_index(name)
        return table

    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append *rows*, coercing values to declared column types and
        maintaining all indexes. Returns the number of rows inserted."""
        types = [column.sql_type for column in self.schema.columns]
        width = len(types)
        inserted = 0
        start = len(self._rows)
        for row in rows:
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} does not match table "
                    f"{self.schema.name!r} width {width}"
                )
            coerced = tuple(
                coerce_to_type(value, sql_type) for value, sql_type in zip(row, types)
            )
            self._rows.append(coerced)
            inserted += 1
        for column_name, index in self._indexes.items():
            position = self.schema.position_of(column_name)
            for row_id in range(start, len(self._rows)):
                value = self._rows[row_id][position]
                if value is not None:
                    index.setdefault(value, []).append(row_id)
        if self._deleted is not None:
            self._deleted.extend([False] * inserted)
        return inserted

    def insert_columns(self, columns) -> int:
        """Bulk-append typed ``(data, null_mask)`` column chunks.

        The row-store counterpart of :meth:`ColumnTable.insert_columns`:
        values arrive already typed from the vectorised ingest, so the
        per-cell ``coerce_to_type`` dispatch is skipped and tuples are
        built with one ``zip`` transpose. Indexes are maintained in place.
        """
        from .column_store import validate_chunk

        count = validate_chunk(self.schema, columns)
        if count == 0:
            return 0
        lists = [
            _chunk_to_python(column_def.sql_type, data, null)
            for column_def, (data, null) in zip(self.schema.columns, columns)
        ]
        start = len(self._rows)
        self._rows.extend(zip(*lists))
        for column_name, index in self._indexes.items():
            position = self.schema.position_of(column_name)
            values = lists[position]
            for offset, value in enumerate(values):
                if value is not None:
                    index.setdefault(value, []).append(start + offset)
        if self._deleted is not None:
            self._deleted.extend([False] * count)
        return count

    def delete_rows(self, column_name: str, values: Iterable[Any]) -> int:
        """Tombstone every row whose *column_name* equals any of *values*
        (the ``AllTables`` maintenance primitive: ``TableId IN (...)``).

        Deletion is logical -- scans, fetches, and index look-ups skip the
        masked rows -- until the dead fraction reaches
        ``compact_threshold``, at which point the table is physically
        compacted. Returns the number of rows deleted.
        """
        position = self.schema.position_of(column_name)
        wanted = {v for v in values if v is not None}
        if not wanted or not self._rows:
            return 0
        key = column_name.lower()
        if key in self._indexes:
            index = self._indexes[key]
            positions = [p for v in wanted for p in index.get(v, ())]
        else:
            positions = [
                p for p, row in enumerate(self._rows) if row[position] in wanted
            ]
        if self._deleted is None:
            self._deleted = [False] * len(self._rows)
        deleted = 0
        mask = self._deleted
        for p in positions:
            if not mask[p]:
                mask[p] = True
                deleted += 1
        self._num_deleted += deleted
        if deleted and self._num_deleted >= self.compact_threshold * len(self._rows):
            self.compact()
        return deleted

    def compact(self) -> None:
        """Physically drop tombstoned rows and rebuild every index; when
        ``cluster_keys`` is set, surviving rows are re-sorted into the
        declared clustering order first, so compacted storage matches a
        fresh bulk load of the same rows byte for byte."""
        mask = self._deleted
        rows = (
            self._rows
            if mask is None
            else [row for row, dead in zip(self._rows, mask) if not dead]
        )
        if self.cluster_keys:
            positions = [self.schema.position_of(c) for c in self.cluster_keys]
            rows = sorted(
                rows,
                key=lambda row: tuple(
                    (row[p] is None, row[p]) for p in positions
                ),
            )
        self._rows = rows
        self._deleted = None
        self._num_deleted = 0
        for key in list(self._indexes):
            self._indexes[key] = {}
            self._build_index(key)
        self.compactions += 1
        self._base_rows = 0  # the base/delta boundary is gone

    def scan(self) -> Iterator[tuple]:
        """Iterate live rows in insertion order."""
        if self._deleted is None:
            return iter(self._rows)
        return (
            row for row, dead in zip(self._rows, self._deleted) if not dead
        )

    def fetch(self, positions: Iterable[int]) -> Iterator[tuple]:
        """Yield the rows at the given positions."""
        rows = self._rows
        for position in positions:
            yield rows[position]

    def row_at(self, position: int) -> tuple:
        return self._rows[position]

    # -- indexes ---------------------------------------------------------------

    def create_index(self, column_name: str) -> None:
        """Build a hash index on *column_name* (idempotent)."""
        key = column_name.lower()
        self.schema.position_of(column_name)  # validates existence
        if key in self._indexes:
            return
        self._indexes[key] = {}
        self._build_index(key)

    def _build_index(self, key: str) -> None:
        """(Re)populate one index dict from the current rows. Tombstoned
        rows are indexed too -- look-ups filter them -- so the postings
        stay position-aligned without a mask-aware build."""
        position = self.schema.position_of(key)
        index = self._indexes[key]
        for row_id, row in enumerate(self._rows):
            value = row[position]
            if value is not None:
                index.setdefault(value, []).append(row_id)

    def has_index(self, column_name: str) -> bool:
        return column_name.lower() in self._indexes

    def warm(self) -> None:
        """Interface parity with ``ColumnTable.warm``: the row store
        builds its indexes eagerly and keeps no lazily-materialised read
        state, so there is nothing to force before concurrent reads."""

    def index_lookup(self, column_name: str, values: Iterable[Any]) -> list[int]:
        """Live row positions whose *column_name* equals any of *values*,
        in ascending position order (so downstream operators see rows in
        storage order, like a bitmap index scan)."""
        key = column_name.lower()
        if key not in self._indexes:
            raise CatalogError(
                f"no index on {self.schema.name}.{column_name}"
            )
        index = self._indexes[key]
        positions: list[int] = []
        seen: set[Any] = set()
        for value in values:
            if value is None or value in seen:
                continue
            seen.add(value)
            hit = index.get(value)
            if hit:
                positions.extend(hit)
        if self._deleted is not None:
            mask = self._deleted
            positions = [p for p in positions if not mask[p]]
        positions.sort()
        return positions

    def index_distinct_values(self, column_name: str) -> list[Any]:
        key = column_name.lower()
        if key not in self._indexes:
            raise CatalogError(f"no index on {self.schema.name}.{column_name}")
        index = self._indexes[key]
        if self._deleted is None:
            return list(index.keys())
        mask = self._deleted
        return [
            value
            for value, postings in index.items()
            if any(not mask[p] for p in postings)
        ]

    # -- delta accounting ---------------------------------------------------------

    def delta_stats(self) -> dict[str, Any]:
        """Mutation debt since the snapshot load (interface parity with
        :meth:`ColumnTable.delta_stats`; the trigger signal the
        background snapshot compactor polls)."""
        total = len(self._rows)
        base = min(self._base_rows, total)
        return {
            "frozen": self._base_rows > 0,
            "base_rows": base if base else total,
            "delta_rows": total - base if base else 0,
            "deleted_rows": self._num_deleted,
        }

    # -- storage accounting -------------------------------------------------------

    def storage_bytes(self) -> int:
        """Approximate resident bytes of rows plus indexes.

        Uses sampled ``sys.getsizeof`` on up to 1000 rows and extrapolates,
        which keeps Table VIII's accounting fast on large lakes.
        """
        if not self._rows:
            return 0
        sample_size = min(1000, len(self._rows))
        step = max(1, len(self._rows) // sample_size)
        sampled = self._rows[::step][:sample_size]
        sampled_bytes = 0
        for row in sampled:
            sampled_bytes += _BYTES_TUPLE_OVERHEAD
            for value in row:
                sampled_bytes += _value_bytes(value)
        row_bytes = int(sampled_bytes / len(sampled) * len(self._rows))
        index_bytes = 0
        for index in self._indexes.values():
            index_bytes += len(index) * (_BYTES_POINTER_PAIR)
            index_bytes += sum(len(postings) for postings in index.values()) * _BYTES_PER_POINTER
        return row_bytes + index_bytes


def _chunk_to_python(sql_type: SqlType, data, null) -> list:
    """One bulk-ingest column as a list of stored Python values (matching
    what ``coerce_to_type`` would have produced)."""
    from .column_store import DictEncodedText

    if isinstance(data, DictEncodedText):
        codes = data.codes
        if not len(data.dictionary):  # all-NULL chunk
            return [None] * len(codes)
        gathered = data.dictionary[np.maximum(codes, 0)]
        values = gathered.tolist()
        if (codes < 0).any():
            return [
                None if code < 0 else value for code, value in zip(codes.tolist(), values)
            ]
        return values
    if data.dtype == object:
        values = list(data)
    else:
        values = data.astype(object).tolist()
    if sql_type is SqlType.BOOLEAN:
        if null is not None and null.any():
            nulls = null.tolist()
            return [
                None if is_null or v is None or v < 0 else bool(v)
                for v, is_null in zip(values, nulls)
            ]
        return [None if v is None or v < 0 else bool(v) for v in values]
    if null is not None and null.any():
        nulls = null.tolist()
        return [None if is_null else v for v, is_null in zip(values, nulls)]
    return values


_BYTES_POINTER_PAIR = 2 * _BYTES_PER_POINTER


def _value_bytes(value: Any) -> int:
    """Cheap per-value byte estimate (strings dominate real lakes)."""
    if value is None:
        return _BYTES_PER_POINTER
    if isinstance(value, str):
        return 49 + len(value)  # CPython compact-unicode overhead + payload
    if isinstance(value, bool):
        return _BYTES_PER_POINTER
    if isinstance(value, int):
        return 28 if value.bit_length() <= 60 else sys.getsizeof(value)
    if isinstance(value, float):
        return 24
    return sys.getsizeof(value)
