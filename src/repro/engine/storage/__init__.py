"""Storage backends: row store and dictionary-encoded column store."""

from .catalog import Catalog, ColumnDef, TableSchema
from .column_store import ColumnTable
from .row_store import RowTable

__all__ = ["Catalog", "ColumnDef", "TableSchema", "ColumnTable", "RowTable"]
