"""Columnar storage backend ("the commercial column store" in the paper).

Each column is held as a NumPy array: integers/floats as numeric arrays
with a validity mask, text dictionary-encoded as int32 codes over a sorted
value dictionary, booleans as int8 with ``-1`` for NULL. The vectorised
executor (:mod:`..sql.executor_column`) operates on these arrays directly,
which is what makes BLEND's scan-heavy seeker queries an order of
magnitude faster here than on the row store (paper Figs. 5 and 7).

Two ingest paths feed a table:

* ``insert_rows`` -- tuple-at-a-time with per-cell type coercion, buffered
  in Python lists until the next read seals them into arrays.
* ``insert_columns`` -- the bulk fast path: already-typed column arrays
  (``(data, null_mask)`` pairs) are appended directly, dictionary-encoding
  text via ``np.unique`` and bypassing ``coerce_to_type`` entirely. This
  is what the vectorised ``AllTables`` builder uses.

Sealing is *incremental*: new rows (from either path) are merged into the
existing sealed arrays instead of invalidating and rebuilding the whole
table, so interleaved bulk loads stay linear.

Deletes (``delete_rows``) are **tombstones**: a boolean mask over the
sealed arrays marks dead rows, and every public read API serves the
*live* view (row numbering skips the dead rows, so the executor never
sees them). Once the dead fraction reaches ``compact_threshold`` the
table compacts: surviving rows are rebuilt into fresh sealed runs, text
dictionaries are re-encoded down to the surviving values, and (when
``cluster_keys`` is set) rows are re-sorted into the declared clustering
order -- compacted storage is byte-identical to a fresh bulk load of the
same rows.

Tables adopted from a snapshot are **frozen-base**: their sealed arrays
(typically read-only ``np.memmap`` views shared by every worker mapping
the same snapshot) are never rewritten. Mutations append to a *delta
segment* instead -- one extra ``_ColumnData`` run per column holding
every row ingested since the load, plus the ordinary tombstone mask
over base ∪ delta. Reads serve the concatenation (storage position
``p`` lives in the base when ``p < len(base)``, else at ``p -
len(base)`` in the delta); text columns expose a lazily-cached sorted
union dictionary over both segments so dictionary-code consumers keep
the code-order == string-order contract. Folding the delta back into a
single private segment (:meth:`compact`) produces arrays byte-identical
to a fresh bulk load of the same rows, which is what the background
snapshot compactor persists as the next base generation.

Secondary indexes are *declared* once (``create_index``) and survive
mutations: ``insert_columns`` appends merge each new chunk's sorted run
into the existing postings (no full re-argsort), while row-at-a-time
inserts drop the materialised postings for a lazy rebuild on the next
look-up. Postings are in **storage** coordinates over base ∪ delta with
tombstoned rows included -- look-ups filter dead positions and
translate to the live coordinates every other read API speaks -- so
deletes are O(delta) and never invalidate postings.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

import numpy as np

from ...errors import CatalogError, ExecutionError
from ..types import SqlType, coerce_to_type
from .catalog import TableSchema

# A bulk-ingest column chunk: (data, null_mask). ``null_mask`` may be None
# when the chunk has no NULLs. Accepted dtypes per column type:
# TEXT -> object array of str (or a pre-encoded DictEncodedText),
# INTEGER -> any int dtype, FLOAT -> any float dtype, BOOLEAN -> bool/int
# dtype (int8 with -1 meaning NULL is accepted directly when null_mask is
# None).
ColumnChunk = tuple[np.ndarray, Optional[np.ndarray]]

# Dead-row fraction at which delete_rows triggers automatic compaction.
DEFAULT_COMPACT_THRESHOLD = 0.3


class DictEncodedText:
    """A text chunk already dictionary-encoded by the producer.

    ``dictionary`` must be a *sorted* array of distinct strings and
    ``codes`` int32 positions into it (``-1`` = NULL) -- exactly what
    ``np.unique(..., return_inverse=True)`` yields. Passing this instead
    of raw strings lets a bulk producer that already deduplicated its
    tokens (the ``AllTables`` ingest does, for XASH) skip the store's own
    ``np.unique`` sort.
    """

    __slots__ = ("codes", "dictionary")

    def __init__(self, codes: np.ndarray, dictionary: np.ndarray) -> None:
        self.codes = np.asarray(codes, dtype=np.int32)
        self.dictionary = np.asarray(dictionary, dtype=object)

    def __len__(self) -> int:
        return len(self.codes)


def validate_chunk(schema: TableSchema, columns: Sequence[ColumnChunk]) -> int:
    """Shared bulk-ingest chunk validation (both backends): width must
    match the schema, all columns equal length. Returns the row count."""
    if len(columns) != len(schema.columns):
        raise ExecutionError(
            f"chunk width {len(columns)} does not match table "
            f"{schema.name!r} width {len(schema.columns)}"
        )
    lengths = {len(data) for data, _ in columns}
    if len(lengths) > 1:
        raise ExecutionError(f"ragged column chunk: lengths {sorted(lengths)}")
    return lengths.pop() if lengths else 0


class DictCodes(np.ndarray):
    """An int32 code array that remembers its (sorted) text dictionary.

    This is how dictionary-encoded text flows through the vectorised
    executor *without* materialising strings: the planner marks scan
    columns whose every consumer is code-safe (grouping, COUNT(DISTINCT),
    pass-through projection), the scan delivers this view instead of
    gathered strings, and decoding happens only at result-materialisation
    time. Because the dictionary is sorted, code order equals string
    order, so factorisation and grouping on raw codes are exact.

    Fancy indexing preserves the class and its dictionary
    (``__array_finalize__``), so codes survive gathers, group
    representatives, and batch slicing unchanged.
    """

    def __new__(cls, codes: np.ndarray, dictionary: np.ndarray) -> "DictCodes":
        obj = np.asarray(codes, dtype=np.int32).view(cls)
        obj.dictionary = dictionary
        return obj

    def __array_finalize__(self, obj) -> None:
        if obj is not None:
            self.dictionary = getattr(obj, "dictionary", None)

    def decode(self) -> np.ndarray:
        """Materialise the strings (``None`` at NULL positions, code -1)."""
        null = np.asarray(self) < 0
        base = np.asarray(np.maximum(self, 0))
        if self.dictionary is not None and len(self.dictionary):
            out = self.dictionary[base].copy()
        else:
            out = np.empty(len(self), dtype=object)
        out[null] = None
        return out


def decode_if_coded(data: np.ndarray) -> np.ndarray:
    """Plain data array for *data*: dictionary codes are decoded to their
    object-string form, anything else passes through untouched."""
    return data.decode() if isinstance(data, DictCodes) else data


class _ColumnData:
    """One sealed column: typed array + null mask (or codes + dictionary)."""

    __slots__ = ("sql_type", "data", "null", "codes", "dictionary", "code_of")

    def __init__(self, sql_type: SqlType) -> None:
        self.sql_type = sql_type
        self.data: Optional[np.ndarray] = None  # numeric / bool storage
        self.null: Optional[np.ndarray] = None
        self.codes: Optional[np.ndarray] = None  # text storage
        self.dictionary: Optional[np.ndarray] = None  # object array of str
        self.code_of: Optional[dict[str, int]] = None


class ColumnTable:
    """Dictionary-encoded, mask-validated columnar table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._pending: list[list[Any]] = [[] for _ in schema.columns]
        # Encoded-but-unmerged ingest batches, in arrival order. Kept as a
        # backlog so an F-flush bulk load pays ONE multiway merge at first
        # read instead of re-merging all prior rows on every flush.
        self._backlog: list[list[_ColumnData]] = []
        self._sealed: Optional[list[_ColumnData]] = None
        self._num_rows = 0  # live rows (appends - deletes)
        # Declared index columns (lowercased) vs their materialised
        # postings: declarations survive every mutation; postings are
        # maintained incrementally on bulk appends and rebuilt lazily
        # after row-at-a-time inserts or deletes.
        self._index_columns: set[str] = set()
        self._indexes: dict[str, dict[Any, np.ndarray]] = {}
        self._deleted: Optional[np.ndarray] = None  # tombstones over sealed rows
        self._num_deleted = 0
        self._live: Optional[np.ndarray] = None  # cached live storage positions
        self.compact_threshold = DEFAULT_COMPACT_THRESHOLD
        self.cluster_keys: tuple[str, ...] = ()
        self.compactions = 0  # bumped per physical compaction
        # True while sealed arrays are memory-mapped snapshot payloads
        # (read-only views over the on-disk .npy files, possibly shared
        # by other serving processes mapping the same snapshot).
        self._mmap_backed = False
        # Frozen-base mode (snapshot-adopted tables): the sealed arrays
        # are immutable and every appended row lands in the write-ahead
        # delta segment below instead of being merged into them.
        self._frozen_base = False
        self._delta: Optional[list[_ColumnData]] = None
        # Per-text-column cache of (union dictionary, base code remap,
        # delta code remap) over both segments; dropped when the delta
        # grows.
        self._merged_text: dict[int, tuple] = {}

    # -- loading ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    # -- snapshots ---------------------------------------------------------------

    def snapshot_columns(self) -> tuple[list[_ColumnData], Optional[np.ndarray]]:
        """The sealed storage state a snapshot persists: one
        :class:`_ColumnData` per schema column (buffered batches merged
        first, so the arrays are exactly what a reader would see) plus
        the tombstone mask, ``None`` while the table holds no deletes.

        Frozen-base tables fold base + delta into fresh merged arrays
        *without* touching the table: a full save of a mutated loaded
        table must not cost this process (or its siblings) the shared
        base mmap."""
        sealed = self._seal()
        if self._delta is not None:
            sealed = [
                _merge_many([base, delta])
                for base, delta in zip(sealed, self._delta)
            ]
        return sealed, self._deleted

    @classmethod
    def from_snapshot(
        cls,
        schema: TableSchema,
        columns: list[_ColumnData],
        num_rows: int,
        deleted: Optional[np.ndarray] = None,
        num_deleted: int = 0,
        index_columns: Iterable[str] = (),
        cluster_keys: Sequence[str] = (),
        compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
        compactions: int = 0,
        mmap_backed: bool = True,
    ) -> "ColumnTable":
        """Rebuild a table around already-sealed column arrays (the
        snapshot load path). The arrays are adopted as-is -- typically
        read-only ``np.memmap`` views over the snapshot's ``.npy``
        payloads, so loading is I/O-bound -- and **frozen**: mutations
        append to the write-ahead delta segment, never to these arrays,
        so the snapshot files on disk (possibly shared by many serving
        processes) stay mapped read-only forever. Secondary-index
        *declarations* are restored; postings rematerialise lazily on
        the first look-up, exactly as after a delete."""
        table = cls(schema)
        table._sealed = columns
        table._num_rows = num_rows
        if deleted is not None and isinstance(deleted, np.memmap):
            # The tombstone mask is the one base-coordinate structure
            # deletes keep writing; give it a private copy up front.
            deleted = np.array(deleted)
        table._deleted = deleted
        table._num_deleted = num_deleted
        table._index_columns = {name.lower() for name in index_columns}
        table.cluster_keys = tuple(cluster_keys)
        table.compact_threshold = compact_threshold
        table.compactions = compactions
        table._mmap_backed = mmap_backed
        table._frozen_base = True
        return table

    def _materialize_merged(self) -> None:
        """Fold the delta segment (and any memory-mapped base arrays)
        into one private single-segment form -- the shape the pre-delta
        code paths, notably :meth:`compact`'s cluster sort, operate on.
        The snapshot files on disk stay untouched; this table simply
        stops sharing them. Storage positions are preserved (base rows
        keep their positions, delta row ``i`` stays at ``len(base) +
        i``), so tombstones and index postings remain valid."""
        self._seal()
        if self._delta is not None:
            self._sealed = [
                _merge_many([base, delta])
                for base, delta in zip(self._sealed, self._delta)
            ]
            self._delta = None
        else:
            for column in self._sealed or []:
                for attr in ("codes", "data", "null"):
                    array = getattr(column, attr)
                    if isinstance(array, np.memmap):
                        setattr(column, attr, np.array(array))
        if isinstance(self._deleted, np.memmap):
            self._deleted = np.array(self._deleted)
        self._merged_text = {}
        self._frozen_base = False
        self._mmap_backed = False

    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Buffer *rows* for columnar sealing; secondary indexes are
        invalidated (rebuilt lazily), sealed arrays are kept and merged
        incrementally at the next seal."""
        types = [column.sql_type for column in self.schema.columns]
        width = len(types)
        inserted = 0
        pending = self._pending
        for row in rows:
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} does not match table "
                    f"{self.schema.name!r} width {width}"
                )
            for position, (value, sql_type) in enumerate(zip(row, types)):
                pending[position].append(coerce_to_type(value, sql_type))
            inserted += 1
        if inserted:
            self._num_rows += inserted
            self._indexes = {}
        return inserted

    def insert_columns(self, columns: Sequence[ColumnChunk]) -> int:
        """Bulk-append already-typed column arrays (the vectorised ingest
        fast path -- no per-cell ``coerce_to_type``, text dictionary-encoded
        via ``np.unique``). Returns the number of rows appended.

        Materialised secondary indexes are maintained **incrementally**:
        the appended chunk is one sorted run (argsorted on its own, never
        the full column), and each run group is concatenated onto the
        existing postings -- appended positions are all greater than any
        existing ones, so the postings stay ascending without a merge
        pass. The result is bit-identical to a from-scratch rebuild.
        """
        count = validate_chunk(self.schema, columns)
        if count == 0:
            return 0
        # Preserve arrival order: any row-at-a-time values buffered so far
        # become their own backlog batch before this chunk is appended.
        self._flush_pending_to_backlog()
        encoded = [
            _encode_chunk(column_def.sql_type, data, null)
            for column_def, (data, null) in zip(self.schema.columns, columns)
        ]
        # Storage position of the chunk's first row: appends always land
        # past every existing storage row, tombstoned ones included.
        offset = self._num_rows + self._num_deleted
        self._backlog.append(encoded)
        self._num_rows += count
        for key in self._indexes:
            position = self.schema.position_of(key)
            index = self._indexes[key]
            for value, positions in _index_groups(encoded[position]):
                run = positions + offset
                existing = index.get(value)
                index[value] = (
                    run if existing is None else np.concatenate((existing, run))
                )
        return count

    def _flush_pending_to_backlog(self) -> None:
        if any(self._pending):
            self._backlog.append(
                [
                    _encode_values(column_def.sql_type, values)
                    for column_def, values in zip(self.schema.columns, self._pending)
                ]
            )
            self._pending = [[] for _ in self.schema.columns]

    def _seal(self) -> list[_ColumnData]:
        """Merge buffered values into the typed arrays (idempotent).

        Incremental: batches inserted since the last seal are merged onto
        the existing arrays in ONE multiway pass (single dictionary union
        for text columns), so sealing stays linear in total rows no matter
        how many flushes fed the table."""
        self._flush_pending_to_backlog()
        if not self._backlog:
            if self._sealed is None:
                self._sealed = [
                    _encode_values(column_def.sql_type, [])
                    for column_def in self.schema.columns
                ]
            return self._sealed
        if self._frozen_base and self._sealed is not None:
            # Frozen-base tables: buffered batches merge into the
            # write-ahead delta segment. The base arrays -- read-only
            # memmaps possibly shared across serving processes -- are
            # never rewritten.
            parts = ([self._delta] if self._delta is not None else []) + self._backlog
            if len(parts) == 1:
                self._delta = parts[0]
            else:
                self._delta = [
                    _merge_many([part[position] for part in parts])
                    for position in range(len(self.schema.columns))
                ]
            self._merged_text = {}
        else:
            parts = ([self._sealed] if self._sealed is not None else []) + self._backlog
            if len(parts) == 1:
                self._sealed = parts[0]
            else:
                self._sealed = [
                    _merge_many([part[position] for part in parts])
                    for position in range(len(self.schema.columns))
                ]
        self._backlog = []
        if self._deleted is not None:
            # Newly sealed rows are live: pad the tombstone mask out to
            # the new storage length (base + delta).
            total = self._storage_length()
            if total > len(self._deleted):
                pad = np.zeros(total - len(self._deleted), dtype=bool)
                self._deleted = np.concatenate((self._deleted, pad))
                self._live = None
        return self._sealed

    def _storage_length(self) -> int:
        """Sealed storage rows across base + delta, tombstones included."""
        if not self._sealed:
            return 0
        total = _column_length(self._sealed[0])
        if self._delta is not None and self._delta:
            total += _column_length(self._delta[0])
        return total

    def _segments(self, position: int) -> tuple[_ColumnData, Optional[_ColumnData]]:
        """One column's sealed ``(base, delta)`` pair; ``delta`` is None
        for single-segment (non-frozen or unmutated) tables."""
        sealed = self._seal()
        delta = self._delta[position] if self._delta is not None else None
        return sealed[position], delta

    # -- deletes and compaction ---------------------------------------------------

    def _live_positions(self) -> np.ndarray:
        """Storage positions of live rows (ascending), cached."""
        if self._live is None:
            self._live = np.nonzero(~self._deleted)[0]
        return self._live

    def _storage_positions(self, positions: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Translate live-row *positions* (the coordinate system every
        public API speaks) into storage positions. Identity while the
        table holds no tombstones."""
        if self._deleted is None:
            return positions
        live = self._live_positions()
        return live if positions is None else live[np.asarray(positions, dtype=np.int64)]

    def delete_rows(self, column_name: str, values: Iterable[Any]) -> int:
        """Tombstone every row whose *column_name* equals any of *values*
        (the ``AllTables`` maintenance primitive: ``TableId IN (...)``).

        Deletion is logical: the rows are masked out of every read path
        but stay in the sealed arrays until the dead fraction reaches
        ``compact_threshold``, at which point :meth:`compact` rebuilds
        the storage. Frozen-base tables never self-compact (folding the
        base is the background compactor's job, not a surprise O(lake)
        stall on the mutation path); they expose the dead fraction via
        :meth:`delta_stats` instead. Returns the number of rows deleted.
        """
        position = self.schema.position_of(column_name)  # validates existence
        self._seal()
        if self._storage_length() == 0:
            return 0
        match = self._storage_isin_all(position, values)
        if self._deleted is not None:
            match &= ~self._deleted
        deleted = int(match.sum())
        if deleted == 0:
            return 0
        if self._deleted is None:
            self._deleted = match
        else:
            self._deleted |= match
        self._num_deleted += deleted
        self._num_rows -= deleted
        self._live = None
        # Postings are storage-coordinate with dead rows filtered at
        # look-up, so they survive deletes untouched: O(delta) mutation.
        if (
            not self._frozen_base
            and self._num_deleted >= self.compact_threshold * len(self._deleted)
        ):
            self.compact()
        return deleted

    def compact(self) -> None:
        """Physically rebuild the sealed arrays without tombstoned rows.

        Text dictionaries are re-encoded down to the surviving values and
        rows are re-sorted into ``cluster_keys`` order when declared, so
        the result is byte-identical to a fresh bulk load of the live
        rows (the rebuild-parity invariant of the AllTables maintenance
        path). Frozen-base tables first fold their delta segment into a
        private single-segment form (storage positions are preserved, so
        the tombstone mask stays valid) -- this fold is the primitive
        the background snapshot compactor persists as the next base
        generation. Materialised index postings are dropped for lazy
        rebuild.
        """
        self._materialize_merged()
        sealed = self._seal()
        if not sealed:
            return
        total = _column_length(sealed[0])
        if self._deleted is None:
            positions = np.arange(total, dtype=np.int64)
        else:
            positions = self._live_positions()
        if self.cluster_keys:
            sort_keys: list[np.ndarray] = []
            # np.lexsort treats its LAST key as primary: feed the cluster
            # columns reversed, each as (null-flag, value) with the null
            # flag more significant so NULLs sort last (as in a fresh
            # ordered load).
            for name in reversed(self.cluster_keys):
                column = sealed[self.schema.position_of(name)]
                if column.sql_type is SqlType.TEXT:
                    codes = column.codes[positions]
                    sort_keys.append(codes)  # sorted dict: code order == text order
                    sort_keys.append(codes < 0)
                elif column.sql_type is SqlType.BOOLEAN:
                    data = column.data[positions]
                    sort_keys.append(data)
                    sort_keys.append(data < 0)
                else:
                    sort_keys.append(column.data[positions])
                    null = column.null
                    sort_keys.append(
                        null[positions]
                        if null is not None
                        else np.zeros(len(positions), dtype=bool)
                    )
            positions = positions[np.lexsort(sort_keys)]
        self._sealed = [_compact_column(column, positions) for column in sealed]
        self._deleted = None
        self._num_deleted = 0
        self._live = None
        self._indexes = {}
        self.compactions += 1

    # -- vector access (used by the vectorised executor) ------------------------

    def column_values(self, column_name: str, positions: Optional[np.ndarray] = None) -> tuple[np.ndarray, np.ndarray]:
        """Materialise a column as ``(data, null_mask)``.

        Text columns come back as object arrays of ``str`` (gathered from
        the dictionary); integers as int64; floats as float64; booleans as
        a boolean-typed logical view over the int8 storage (NULL slots are
        False under the null mask). ``positions`` optionally selects a row
        subset first.
        """
        position = self.schema.position_of(column_name)
        base, delta = self._segments(position)
        storage = self._storage_positions(positions)
        if delta is None:
            return _segment_values(base, storage)
        base_length = _column_length(base)
        if storage is None:
            base_data, base_null = _segment_values(base, None)
            delta_data, delta_null = _segment_values(delta, None)
            return (
                np.concatenate((base_data, delta_data)),
                np.concatenate((base_null, delta_null)),
            )
        storage = np.asarray(storage, dtype=np.int64)
        in_base = storage < base_length
        if in_base.all():
            return _segment_values(base, storage)
        if not in_base.any():
            return _segment_values(delta, storage - base_length)
        base_data, base_null = _segment_values(base, storage[in_base])
        delta_data, delta_null = _segment_values(delta, storage[~in_base] - base_length)
        data = np.empty(len(storage), dtype=base_data.dtype)
        null = np.empty(len(storage), dtype=bool)
        data[in_base] = base_data
        data[~in_base] = delta_data
        null[in_base] = base_null
        null[~in_base] = delta_null
        return data, null

    def text_codes(self, column_name: str, positions: Optional[np.ndarray] = None) -> tuple[np.ndarray, np.ndarray]:
        """Dictionary codes (and the dictionary) of a text column.

        On a base+delta table the codes come back remapped into the
        sorted *union* dictionary over both segments (cached per
        column), preserving the code-order == string-order contract
        every :class:`DictCodes` consumer relies on."""
        position = self.schema.position_of(column_name)
        base, delta = self._segments(position)
        if base.sql_type is not SqlType.TEXT:
            raise CatalogError(f"{column_name!r} is not a text column")
        storage = self._storage_positions(positions)
        if delta is None:
            codes = base.codes if storage is None else base.codes[storage]
            return codes, base.dictionary
        union, base_remap, delta_remap = self._merged_text_view(position)
        base_length = _column_length(base)
        if storage is None:
            return (
                np.concatenate(
                    (
                        _remap_codes(base.codes, base_remap),
                        _remap_codes(delta.codes, delta_remap),
                    )
                ),
                union,
            )
        storage = np.asarray(storage, dtype=np.int64)
        in_base = storage < base_length
        codes = np.empty(len(storage), dtype=np.int32)
        codes[in_base] = _remap_codes(base.codes[storage[in_base]], base_remap)
        codes[~in_base] = _remap_codes(
            delta.codes[storage[~in_base] - base_length], delta_remap
        )
        return codes, union

    def _merged_text_view(self, position: int) -> tuple:
        """``(union dictionary, base code remap, delta code remap)`` for
        one text column of a base+delta table. The union is the sorted
        set union of both segment dictionaries -- exactly the dictionary
        a single-segment merge of the same rows would build -- and each
        remap is ``None`` when that segment's codes are already union
        codes. Cached until the delta grows."""
        view = self._merged_text.get(position)
        if view is None:
            base, delta = self._segments(position)
            if not len(delta.dictionary):
                union = base.dictionary
            elif not len(base.dictionary):
                union = delta.dictionary
            else:
                union = np.unique(
                    np.concatenate((base.dictionary, delta.dictionary))
                ).astype(object)
            base_remap = (
                None
                if union is base.dictionary
                else np.searchsorted(union, base.dictionary).astype(np.int32)
            )
            delta_remap = (
                None
                if union is delta.dictionary
                else np.searchsorted(union, delta.dictionary).astype(np.int32)
            )
            view = (union, base_remap, delta_remap)
            self._merged_text[position] = view
        return view

    def isin_positions(self, column_name: str, values: Iterable[Any]) -> np.ndarray:
        """Positions where the column equals any of *values*, computed by a
        vectorised dictionary/numeric scan (no secondary index needed)."""
        mask = self.isin_mask(column_name, values)
        return np.nonzero(mask)[0]

    def isin_mask(self, column_name: str, values: Iterable[Any]) -> np.ndarray:
        """Boolean mask over all live rows for ``column IN values``."""
        mask = self._storage_isin_all(self.schema.position_of(column_name), values)
        if self._deleted is not None:
            return mask[self._live_positions()]
        return mask

    def _storage_isin_all(self, position: int, values: Iterable[Any]) -> np.ndarray:
        """``column IN values`` over the full storage (base + delta,
        tombstones included)."""
        base, delta = self._segments(position)
        if delta is None:
            return _storage_isin(base, values)
        probes = list(values)  # consumed once per segment
        return np.concatenate(
            (_storage_isin(base, probes), _storage_isin(delta, probes))
        )

    def gather_rows(self, positions: np.ndarray) -> list[tuple]:
        """Materialise full tuples at *positions* (row-store interop and
        result sets).

        Vectorised: every column is gathered with one fancy-indexing pass
        and converted to Python values array-at-a-time; a single ``zip``
        transposes the columns into row tuples.
        """
        count = len(positions)
        if count == 0 or not self.schema.columns:
            return [()] * count
        lists: list[list[Any]] = []
        for column in self.schema.columns:
            data, null = self.column_values(column.name, positions)
            if data.dtype == object:
                values = data.tolist()  # text path: NULLs already None
            else:
                boxed = data.astype(object)
                if null.any():
                    boxed[null] = None
                values = boxed.tolist()
            lists.append(values)
        return list(zip(*lists))

    # -- indexes -----------------------------------------------------------------

    def create_index(self, column_name: str) -> None:
        """Declare (and materialise) a hash index value -> ndarray of
        storage positions (idempotent; look-ups translate to live
        coordinates). The declaration is permanent; the postings are
        maintained incrementally on bulk appends, survive deletes, and
        are rebuilt lazily after row-at-a-time inserts."""
        key = column_name.lower()
        self.schema.position_of(column_name)  # validates existence
        self._index_columns.add(key)
        if key not in self._indexes:
            self._materialize_index(key)

    def _materialize_index(self, key: str) -> None:
        """Build the postings dict for one declared index in **storage**
        coordinates over base + delta, tombstoned rows included (look-ups
        filter and translate) -- the same content the incremental
        ``insert_columns`` maintenance accumulates, so deletes never
        force a rebuild."""
        position = self.schema.position_of(key)
        base, delta = self._segments(position)
        index: dict[Any, np.ndarray] = {}
        if _column_length(base):
            index = dict(_index_groups(base))
        if delta is not None and _column_length(delta):
            offset = _column_length(base)
            for value, positions in _index_groups(delta):
                run = positions + offset
                existing = index.get(value)
                index[value] = (
                    run if existing is None else np.concatenate((existing, run))
                )
        self._indexes[key] = index

    def has_index(self, column_name: str) -> bool:
        return column_name.lower() in self._index_columns

    def warm(self) -> None:
        """Force every lazily-built read-path structure, so subsequent
        read-only access is safe from concurrent threads.

        The column store defers work to first read in four places --
        :meth:`_seal` (backlog merge), :meth:`_live_positions` (tombstone
        compression), :meth:`_materialize_index` (postings rebuild after
        deletes or snapshot load), and the per-column ``code_of`` text
        probe dict (skipped by bulk-ingest chunks). Each is a benign
        cache in single-threaded use but a data race under concurrent
        first reads; warming materialises all of them up front (plus,
        on base+delta tables, the per-column union text dictionaries).
        Idempotent and cheap when already warm."""
        sealed = self._seal()
        if self._deleted is not None:
            self._live_positions()
        for key in self._index_columns:
            if key not in self._indexes:
                self._materialize_index(key)
        for column in list(sealed) + list(self._delta or []):
            if column.sql_type is SqlType.TEXT and column.code_of is None:
                column.code_of = {
                    value: code for code, value in enumerate(column.dictionary)
                }
        if self._delta is not None:
            for position, column_def in enumerate(self.schema.columns):
                if column_def.sql_type is SqlType.TEXT:
                    self._merged_text_view(position)

    def index_lookup(self, column_name: str, values: Iterable[Any]) -> np.ndarray:
        """Live positions (ascending) whose column equals any of *values*.

        Postings are storage-coordinate: dead positions are filtered and
        the survivors translated into the live numbering here, so the
        result matches every other read API."""
        key = column_name.lower()
        if key not in self._index_columns:
            raise CatalogError(f"no index on {self.schema.name}.{column_name}")
        self._seal()  # incremental postings may reference buffered rows
        if key not in self._indexes:
            self._materialize_index(key)
        index = self._indexes[key]
        chunks = [index[v] for v in set(values) if v is not None and v in index]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate(chunks)
        merged.sort()
        if self._deleted is not None:
            merged = merged[~self._deleted[merged]]
            merged = np.searchsorted(self._live_positions(), merged)
        return merged

    # -- storage accounting --------------------------------------------------------

    def storage_bytes(self) -> int:
        """Resident bytes of sealed arrays (both segments), dictionaries,
        and indexes."""
        total = 0
        for column in list(self._seal()) + list(self._delta or []):
            if column.codes is not None:
                total += column.codes.nbytes
                total += sum(49 + len(v) for v in column.dictionary) if len(column.dictionary) else 0
                total += len(column.dictionary) * 16  # dict slots
            if column.data is not None:
                total += column.data.nbytes
            if column.null is not None:
                total += column.null.nbytes
        for index in self._indexes.values():
            total += len(index) * 16
            total += sum(positions.nbytes for positions in index.values())
        return total

    # -- delta accounting ----------------------------------------------------------

    def delta_stats(self) -> dict[str, Any]:
        """Mutation debt of this table: storage rows in the (frozen)
        base segment, rows appended since (delta segment + unsealed
        buffers), and tombstones. The background compactor's trigger
        signal."""
        total = self._num_rows + self._num_deleted  # incl. unsealed buffers
        if not self._frozen_base or self._sealed is None:
            return {
                "frozen": False,
                "base_rows": total,
                "delta_rows": 0,
                "deleted_rows": self._num_deleted,
            }
        base = _column_length(self._sealed[0]) if self._sealed else 0
        return {
            "frozen": True,
            "base_rows": base,
            "delta_rows": total - base,
            "deleted_rows": self._num_deleted,
        }


def _encode_text(values: list[Any]) -> tuple[np.ndarray, np.ndarray, dict[str, int]]:
    """Dictionary-encode a text column: codes, sorted dictionary, lookup."""
    distinct = sorted({v for v in values if v is not None})
    code_of = {value: code for code, value in enumerate(distinct)}
    codes = np.empty(len(values), dtype=np.int32)
    for i, value in enumerate(values):
        codes[i] = -1 if value is None else code_of[value]
    dictionary = np.array(distinct, dtype=object)
    return codes, dictionary, code_of


def _encode_values(sql_type: SqlType, values: list[Any]) -> _ColumnData:
    """Seal one column's buffered (already-coerced) Python values."""
    column = _ColumnData(sql_type)
    if sql_type is SqlType.TEXT:
        column.codes, column.dictionary, column.code_of = _encode_text(values)
    elif sql_type is SqlType.BOOLEAN:
        data = np.empty(len(values), dtype=np.int8)
        for i, value in enumerate(values):
            data[i] = -1 if value is None else int(value)
        column.data = data
    else:
        dtype = np.int64 if sql_type is SqlType.INTEGER else np.float64
        data = np.zeros(len(values), dtype=dtype)
        null = np.zeros(len(values), dtype=bool)
        for i, value in enumerate(values):
            if value is None:
                null[i] = True
            else:
                data[i] = value
        column.data = data
        column.null = null
    return column


def _encode_chunk(sql_type: SqlType, data: np.ndarray, null: Optional[np.ndarray]) -> _ColumnData:
    """Seal one bulk-ingest chunk without touching individual cells."""
    if isinstance(data, DictEncodedText):
        if sql_type is not SqlType.TEXT:
            raise ExecutionError("DictEncodedText chunk on a non-text column")
        column = _ColumnData(sql_type)
        column.codes = data.codes
        column.dictionary = data.dictionary
        return column  # code_of stays lazy (built on first text probe)
    data = np.asarray(data)
    if null is not None:
        null = np.asarray(null, dtype=bool)
    column = _ColumnData(sql_type)
    if sql_type is SqlType.TEXT:
        if data.dtype != object:
            data = data.astype(object)
        if null is None:
            null = np.fromiter((v is None for v in data), dtype=bool, count=len(data))
        valid = data[~null] if null.any() else data
        if len(valid):
            dictionary, inverse = np.unique(valid, return_inverse=True)
            dictionary = dictionary.astype(object)
        else:
            dictionary = np.empty(0, dtype=object)
            inverse = np.empty(0, dtype=np.int64)
        codes = np.full(len(data), -1, dtype=np.int32)
        if null.any():
            codes[~null] = inverse.astype(np.int32)
        else:
            codes = inverse.astype(np.int32)
        column.codes = codes
        column.dictionary = dictionary
        # code_of stays lazy (built on first text probe)
    elif sql_type is SqlType.BOOLEAN:
        encoded = data.astype(np.int8)
        if null is not None and null.any():
            encoded = np.where(null, np.int8(-1), encoded)
        column.data = encoded
    else:
        dtype = np.int64 if sql_type is SqlType.INTEGER else np.float64
        if null is not None and null.any():
            column.data = np.where(null, dtype(0), data).astype(dtype)
            column.null = null.copy()
        else:
            column.data = data.astype(dtype)
            column.null = np.zeros(len(data), dtype=bool)
    return column


def _merge_many(columns: list[_ColumnData]) -> _ColumnData:
    """Concatenate sealed batches of one column (incremental seal). Text
    dictionaries are merged by ONE sorted union across all batches, with
    every batch's code range remapped -- one pass regardless of how many
    batches accumulated."""
    merged = _ColumnData(columns[0].sql_type)
    if merged.sql_type is SqlType.TEXT:
        dictionaries = [c.dictionary for c in columns if len(c.dictionary)]
        if not dictionaries:
            merged.codes = np.concatenate([c.codes for c in columns])
            merged.dictionary = columns[0].dictionary
            merged.code_of = columns[0].code_of
            return merged
        if len(dictionaries) == 1 or all(
            d is dictionaries[0] for d in dictionaries[1:]
        ):
            # One batch, or every batch shares one dictionary *object* --
            # the sharded AllTables merge appends all its parts against a
            # single global dictionary, so the union (and every remap) is
            # free: the codes just concatenate.
            union = dictionaries[0]
        else:
            union = np.unique(np.concatenate(dictionaries)).astype(object)
        code_chunks = []
        for column in columns:
            if column.dictionary is union or not len(column.dictionary):
                code_chunks.append(column.codes)
            else:
                mapping = np.searchsorted(union, column.dictionary).astype(np.int32)
                code_chunks.append(_remap_codes(column.codes, mapping))
        merged.codes = np.concatenate(code_chunks)
        merged.dictionary = union
        return merged  # code_of stays lazy (built on first text probe)
    merged.data = np.concatenate([c.data for c in columns])
    if columns[0].null is not None:
        merged.null = np.concatenate([c.null for c in columns])
    return merged


def _remap_codes(codes: np.ndarray, mapping: Optional[np.ndarray]) -> np.ndarray:
    """Apply a dictionary remap, passing NULL codes (-1) through.
    ``mapping`` may be None (identity: the codes already target the
    union dictionary)."""
    if mapping is None or not len(mapping):
        return codes
    remapped = mapping[np.maximum(codes, 0)]
    return np.where(codes < 0, np.int32(-1), remapped)


def _segment_values(column: _ColumnData, positions: Optional[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Materialise one sealed segment as ``(data, null_mask)`` -- the
    per-segment half of :meth:`ColumnTable.column_values` (each text
    segment decodes through its *own* dictionary; no union needed for
    materialised strings)."""
    if column.sql_type is SqlType.TEXT:
        codes = column.codes if positions is None else column.codes[positions]
        null = codes < 0
        safe_codes = np.where(null, 0, codes)
        if len(column.dictionary):
            data = column.dictionary[safe_codes]
        else:
            data = np.empty(len(codes), dtype=object)
        data = data.copy()
        data[null] = None
        return data, null
    if column.sql_type is SqlType.BOOLEAN:
        raw = column.data if positions is None else column.data[positions]
        null = raw < 0
        data = raw > 0
        return data, null
    data = column.data if positions is None else column.data[positions]
    null = column.null if positions is None else column.null[positions]
    return data, null.copy()


def _column_length(column: _ColumnData) -> int:
    """Storage length of one sealed column (rows incl. tombstones)."""
    return len(column.codes if column.codes is not None else column.data)


def _storage_isin(column: _ColumnData, values: Iterable[Any]) -> np.ndarray:
    """``column IN values`` over the raw storage arrays (tombstones
    included; callers compress to the live view)."""
    length = _column_length(column)
    if column.sql_type is SqlType.TEXT:
        code_of = column.code_of
        if code_of is None:
            # Built lazily: bulk-ingest chunks skip it (the dict is an
            # O(distinct) build only the text-probe path needs).
            code_of = column.code_of = {
                value: code for code, value in enumerate(column.dictionary)
            }
        wanted = np.array(
            sorted({code_of[v] for v in values if isinstance(v, str) and v in code_of}),
            dtype=np.int32,
        )
        if wanted.size == 0:
            return np.zeros(length, dtype=bool)
        return isin_sorted(column.codes, wanted)
    if column.sql_type is SqlType.BOOLEAN:
        wanted_bools = {int(bool(v)) for v in values if v is not None}
        if not wanted_bools:
            return np.zeros(length, dtype=bool)
        return np.isin(column.data, np.array(sorted(wanted_bools), dtype=np.int8))
    numeric = normalize_numeric_probes(values)
    if not numeric:
        return np.zeros(length, dtype=bool)
    wanted_arr = numeric_probe_array(numeric, column.data.dtype)
    if wanted_arr is None:
        return np.zeros(length, dtype=bool)
    mask = isin_sorted(column.data, wanted_arr)
    if column.null is not None:
        mask &= ~column.null
    return mask


def _index_groups(column: _ColumnData):
    """Yield ``(value, positions)`` postings groups for one column batch,
    positions ascending within each group and relative to the batch.

    The single source of truth for index content: full materialisation
    runs it over the (live view of the) whole column, the incremental
    ``insert_columns`` maintenance runs it over just the appended chunk
    and concatenates -- both produce bit-identical postings because the
    grouping (stable argsort, NULL filtering, bool NULL sentinel skip)
    is the same code path.
    """
    if column.sql_type is SqlType.TEXT:
        codes = column.codes
        if not len(codes):
            return
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        # NULL codes (-1) sort first; drop their whole run up front so
        # the group loop below is branch-free.
        first_live = int(np.searchsorted(sorted_codes, 0))
        order = order[first_live:]
        sorted_codes = sorted_codes[first_live:]
        if not len(order):
            return
        boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(order)]))
        # One gather for the keys, C-level slice views for the posting
        # arrays -- no per-group Python loop beyond the zip.
        keys = column.dictionary[sorted_codes[starts]]
        postings = map(order.__getitem__, map(slice, starts.tolist(), ends.tolist()))
        yield from zip(keys.tolist(), postings)
        return
    data = column.data
    if not len(data):
        return
    order = np.argsort(data, kind="stable")
    sorted_data = data[order]
    boundaries = np.nonzero(np.diff(sorted_data) != 0)[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_data)]))
    null = column.null
    for start, end in zip(starts, ends):
        value = _to_python(sorted_data[start])
        positions = order[start:end]
        if null is not None:
            positions = positions[~null[positions]]
            if positions.size == 0:
                continue
        if column.sql_type is SqlType.BOOLEAN and value == -1:
            continue
        yield value, positions


def _compact_column(column: _ColumnData, positions: np.ndarray) -> _ColumnData:
    """Rebuild one sealed column at *positions*, re-encoding text
    dictionaries down to the surviving values -- the layout a fresh bulk
    load of exactly these rows would produce."""
    rebuilt = _ColumnData(column.sql_type)
    if column.sql_type is SqlType.TEXT:
        codes = column.codes[positions]
        used = np.unique(codes[codes >= 0])
        if not len(used):
            rebuilt.codes = np.full(len(codes), -1, dtype=np.int32)
            rebuilt.dictionary = np.empty(0, dtype=object)
            return rebuilt
        remap = np.full(len(column.dictionary), -1, dtype=np.int32)
        remap[used] = np.arange(len(used), dtype=np.int32)
        rebuilt.codes = _remap_codes(codes, remap)
        rebuilt.dictionary = column.dictionary[used]
        return rebuilt  # code_of stays lazy, as after a fresh ingest
    rebuilt.data = column.data[positions]
    if column.null is not None:
        rebuilt.null = column.null[positions]
    return rebuilt


def normalize_numeric_probes(values: Iterable[Any]) -> set:
    """Distinct numeric probe values of a raw ``IN`` list: NumPy scalars
    (np.integer / np.floating, from vectorised callers) are unwrapped so
    dtype promotion matches plain Python values; bools of either kind
    participate as 0/1 (the engine's bool/int duality -- the row store's
    Python-equality membership treats ``True == 1``). Shared by every
    numeric membership path -- sargable scans, residual vector
    expressions, and batch membership -- so the paths can never drift
    apart again."""
    out = set()
    for v in values:
        if isinstance(v, (bool, np.bool_)):
            out.add(int(v))
        elif isinstance(v, (int, float, np.integer, np.floating)):
            out.add(v.item() if isinstance(v, np.generic) else v)
    return out


def numeric_probe_array(numeric: set, dtype: np.dtype) -> Optional[np.ndarray]:
    """Sorted probe array for an ``IN`` scan over a numeric column of
    *dtype*, or ``None`` when no probe can possibly match.

    Integer columns compare in their own dtype so int64-scale values
    (SuperKeys) stay exact: integral floats are converted, fractional
    probes dropped (they can never equal an integer -- the row backend's
    set-membership agrees), and out-of-range ints dropped rather than
    overflowing the conversion. Float columns compare in float64, with
    ints beyond float64 range dropped for the same reason.
    """
    if dtype.kind in "iu":
        bounds = np.iinfo(dtype)
        integral = set()
        for value in numeric:
            if isinstance(value, float):
                if not value.is_integer():
                    continue
                value = int(value)
            if bounds.min <= value <= bounds.max:
                integral.add(value)
        if not integral:
            return None
        return np.array(sorted(integral), dtype=dtype)
    floats = set()
    for value in numeric:
        try:
            floats.add(float(value))
        except OverflowError:  # int beyond float64 range: cannot match
            continue
    if not floats:
        return None
    return np.array(sorted(floats), dtype=np.float64)


def isin_sorted(data: np.ndarray, sorted_values: np.ndarray) -> np.ndarray:
    """Vectorised membership test against a sorted value array.

    ``searchsorted`` beats ``np.isin`` when the probe side is large and the
    value set is small, which is exactly the seeker-scan shape.
    """
    if sorted_values.size == 0:
        return np.zeros(len(data), dtype=bool)
    idx = np.searchsorted(sorted_values, data)
    idx_clipped = np.minimum(idx, sorted_values.size - 1)
    return sorted_values[idx_clipped] == data


def _to_python(value: Any) -> Any:
    """Convert NumPy scalars to plain Python values for result rows."""
    if isinstance(value, np.generic):
        return value.item()
    return value
