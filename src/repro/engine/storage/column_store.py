"""Columnar storage backend ("the commercial column store" in the paper).

Each column is held as a NumPy array: integers/floats as numeric arrays
with a validity mask, text dictionary-encoded as int32 codes over a sorted
value dictionary, booleans as int8 with ``-1`` for NULL. The vectorised
executor (:mod:`..sql.executor_column`) operates on these arrays directly,
which is what makes BLEND's scan-heavy seeker queries an order of
magnitude faster here than on the row store (paper Figs. 5 and 7).

Inserts are buffered in Python lists and sealed into arrays on first read,
matching the bulk-load-then-query lifecycle of a data-lake index.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

import numpy as np

from ...errors import CatalogError, ExecutionError
from ..types import SqlType, coerce_to_type
from .catalog import TableSchema


class _ColumnData:
    """One sealed column: typed array + null mask (or codes + dictionary)."""

    __slots__ = ("sql_type", "data", "null", "codes", "dictionary", "code_of")

    def __init__(self, sql_type: SqlType) -> None:
        self.sql_type = sql_type
        self.data: Optional[np.ndarray] = None  # numeric / bool storage
        self.null: Optional[np.ndarray] = None
        self.codes: Optional[np.ndarray] = None  # text storage
        self.dictionary: Optional[np.ndarray] = None  # object array of str
        self.code_of: Optional[dict[str, int]] = None


class ColumnTable:
    """Dictionary-encoded, mask-validated columnar table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._pending: list[list[Any]] = [[] for _ in schema.columns]
        self._sealed: Optional[list[_ColumnData]] = None
        self._num_rows = 0
        self._indexes: dict[str, dict[Any, np.ndarray]] = {}

    # -- loading ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Buffer *rows* for columnar sealing; invalidates sealed arrays
        and secondary indexes (they are rebuilt lazily)."""
        types = [column.sql_type for column in self.schema.columns]
        width = len(types)
        inserted = 0
        pending = self._pending
        for row in rows:
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} does not match table "
                    f"{self.schema.name!r} width {width}"
                )
            for position, (value, sql_type) in enumerate(zip(row, types)):
                pending[position].append(coerce_to_type(value, sql_type))
            inserted += 1
        if inserted:
            self._num_rows += inserted
            self._sealed = None
            self._indexes = {}
        return inserted

    def _seal(self) -> list[_ColumnData]:
        """Convert buffered values into typed arrays (idempotent)."""
        if self._sealed is not None:
            return self._sealed
        sealed: list[_ColumnData] = []
        for column_def, values in zip(self.schema.columns, self._pending):
            column = _ColumnData(column_def.sql_type)
            if column_def.sql_type is SqlType.TEXT:
                column.codes, column.dictionary, column.code_of = _encode_text(values)
            elif column_def.sql_type is SqlType.BOOLEAN:
                data = np.empty(len(values), dtype=np.int8)
                for i, value in enumerate(values):
                    data[i] = -1 if value is None else int(value)
                column.data = data
            elif column_def.sql_type is SqlType.INTEGER:
                data = np.zeros(len(values), dtype=np.int64)
                null = np.zeros(len(values), dtype=bool)
                for i, value in enumerate(values):
                    if value is None:
                        null[i] = True
                    else:
                        data[i] = value
                column.data = data
                column.null = null
            else:  # FLOAT
                data = np.zeros(len(values), dtype=np.float64)
                null = np.zeros(len(values), dtype=bool)
                for i, value in enumerate(values):
                    if value is None:
                        null[i] = True
                    else:
                        data[i] = value
                column.data = data
                column.null = null
            sealed.append(column)
        self._sealed = sealed
        return sealed

    # -- vector access (used by the vectorised executor) ------------------------

    def column_values(self, column_name: str, positions: Optional[np.ndarray] = None) -> tuple[np.ndarray, np.ndarray]:
        """Materialise a column as ``(data, null_mask)``.

        Text columns come back as object arrays of ``str`` (gathered from
        the dictionary); integers as int64; floats as float64; booleans as
        int64 0/1. ``positions`` optionally selects a row subset first.
        """
        column = self._column(column_name)
        if column.sql_type is SqlType.TEXT:
            codes = column.codes if positions is None else column.codes[positions]
            null = codes < 0
            safe_codes = np.where(null, 0, codes)
            if len(column.dictionary):
                data = column.dictionary[safe_codes]
            else:
                data = np.empty(len(codes), dtype=object)
            data = data.copy()
            data[null] = None
            return data, null
        if column.sql_type is SqlType.BOOLEAN:
            raw = column.data if positions is None else column.data[positions]
            null = raw < 0
            data = np.where(null, 0, raw).astype(np.int64)
            return data, null
        data = column.data if positions is None else column.data[positions]
        null = column.null if positions is None else column.null[positions]
        return data, null.copy()

    def text_codes(self, column_name: str, positions: Optional[np.ndarray] = None) -> tuple[np.ndarray, np.ndarray]:
        """Dictionary codes (and the dictionary) of a text column."""
        column = self._column(column_name)
        if column.sql_type is not SqlType.TEXT:
            raise CatalogError(f"{column_name!r} is not a text column")
        codes = column.codes if positions is None else column.codes[positions]
        return codes, column.dictionary

    def isin_positions(self, column_name: str, values: Iterable[Any]) -> np.ndarray:
        """Positions where the column equals any of *values*, computed by a
        vectorised dictionary/numeric scan (no secondary index needed)."""
        mask = self.isin_mask(column_name, values)
        return np.nonzero(mask)[0]

    def isin_mask(self, column_name: str, values: Iterable[Any]) -> np.ndarray:
        """Boolean mask over all rows for ``column IN values``."""
        column = self._column(column_name)
        if column.sql_type is SqlType.TEXT:
            code_of = column.code_of
            wanted = np.array(
                sorted({code_of[v] for v in values if isinstance(v, str) and v in code_of}),
                dtype=np.int32,
            )
            if wanted.size == 0:
                return np.zeros(self._num_rows, dtype=bool)
            return _isin_sorted(column.codes, wanted)
        if column.sql_type is SqlType.BOOLEAN:
            wanted_bools = {int(bool(v)) for v in values if v is not None}
            if not wanted_bools:
                return np.zeros(self._num_rows, dtype=bool)
            return np.isin(column.data, np.array(sorted(wanted_bools), dtype=np.int8))
        numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if not numeric:
            return np.zeros(self._num_rows, dtype=bool)
        wanted_arr = np.array(sorted(set(numeric)))
        mask = _isin_sorted(column.data, wanted_arr.astype(column.data.dtype, copy=False))
        if column.null is not None:
            mask &= ~column.null
        return mask

    def gather_rows(self, positions: np.ndarray) -> list[tuple]:
        """Materialise full tuples at *positions* (row-store interop and
        result sets)."""
        materialised = [
            self.column_values(column.name, positions) for column in self.schema.columns
        ]
        rows: list[tuple] = []
        for i in range(len(positions)):
            row = tuple(
                None if null[i] else _to_python(data[i])
                for data, null in materialised
            )
            rows.append(row)
        return rows

    # -- indexes -----------------------------------------------------------------

    def create_index(self, column_name: str) -> None:
        """Build a hash index value -> ndarray of positions (idempotent)."""
        key = column_name.lower()
        if key in self._indexes:
            return
        column = self._column(column_name)
        index: dict[Any, np.ndarray] = {}
        if self._num_rows == 0:
            self._indexes[key] = index
            return
        if column.sql_type is SqlType.TEXT:
            order = np.argsort(column.codes, kind="stable")
            sorted_codes = column.codes[order]
            boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_codes)]))
            for start, end in zip(starts, ends):
                code = sorted_codes[start]
                if code < 0:
                    continue
                index[column.dictionary[code]] = order[start:end]
        else:
            data = column.data
            order = np.argsort(data, kind="stable")
            sorted_data = data[order]
            boundaries = np.nonzero(np.diff(sorted_data) != 0)[0] + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_data)]))
            null = column.null
            for start, end in zip(starts, ends):
                value = _to_python(sorted_data[start])
                positions = order[start:end]
                if null is not None:
                    positions = positions[~null[positions]]
                    if positions.size == 0:
                        continue
                if column.sql_type is SqlType.BOOLEAN and value == -1:
                    continue
                index[value] = positions
        self._indexes[key] = index

    def has_index(self, column_name: str) -> bool:
        return column_name.lower() in self._indexes

    def index_lookup(self, column_name: str, values: Iterable[Any]) -> np.ndarray:
        """Positions (ascending) whose column equals any of *values*."""
        key = column_name.lower()
        if key not in self._indexes:
            raise CatalogError(f"no index on {self.schema.name}.{column_name}")
        index = self._indexes[key]
        chunks = [index[v] for v in set(values) if v is not None and v in index]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate(chunks)
        merged.sort()
        return merged

    # -- storage accounting --------------------------------------------------------

    def storage_bytes(self) -> int:
        """Resident bytes of sealed arrays, dictionaries, and indexes."""
        total = 0
        for column in self._seal():
            if column.codes is not None:
                total += column.codes.nbytes
                total += sum(49 + len(v) for v in column.dictionary) if len(column.dictionary) else 0
                total += len(column.dictionary) * 16  # dict slots
            if column.data is not None:
                total += column.data.nbytes
            if column.null is not None:
                total += column.null.nbytes
        for index in self._indexes.values():
            total += len(index) * 16
            total += sum(positions.nbytes for positions in index.values())
        return total

    # -- internals ---------------------------------------------------------------

    def _column(self, column_name: str) -> _ColumnData:
        position = self.schema.position_of(column_name)
        return self._seal()[position]


def _encode_text(values: list[Any]) -> tuple[np.ndarray, np.ndarray, dict[str, int]]:
    """Dictionary-encode a text column: codes, sorted dictionary, lookup."""
    distinct = sorted({v for v in values if v is not None})
    code_of = {value: code for code, value in enumerate(distinct)}
    codes = np.empty(len(values), dtype=np.int32)
    for i, value in enumerate(values):
        codes[i] = -1 if value is None else code_of[value]
    dictionary = np.array(distinct, dtype=object)
    return codes, dictionary, code_of


def _isin_sorted(data: np.ndarray, sorted_values: np.ndarray) -> np.ndarray:
    """Vectorised membership test against a sorted value array.

    ``searchsorted`` beats ``np.isin`` when the probe side is large and the
    value set is small, which is exactly the seeker-scan shape.
    """
    if sorted_values.size == 0:
        return np.zeros(len(data), dtype=bool)
    idx = np.searchsorted(sorted_values, data)
    idx_clipped = np.minimum(idx, sorted_values.size - 1)
    return sorted_values[idx_clipped] == data


def _to_python(value: Any) -> Any:
    """Convert NumPy scalars to plain Python values for result rows."""
    if isinstance(value, np.generic):
        return value.item()
    return value
