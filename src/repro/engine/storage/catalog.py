"""Schema catalog for the embedded engine.

The catalog maps table names to storage objects (row- or column-oriented)
and tracks secondary hash indexes. BLEND's offline phase creates the
``AllTables`` relation here together with its two in-database indexes on
``CellValue`` and ``TableId`` (paper §V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from ...errors import CatalogError
from ..types import SqlType


@dataclass(frozen=True)
class ColumnDef:
    """A declared column: name plus SQL type."""

    name: str
    sql_type: SqlType


class TableSchema:
    """Ordered column definitions with case-insensitive lookup."""

    __slots__ = ("name", "columns", "_positions")

    def __init__(self, name: str, columns: Iterable[ColumnDef]) -> None:
        self.name = name
        self.columns = list(columns)
        self._positions: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._positions:
                raise CatalogError(f"duplicate column {column.name!r} in table {name!r}")
            self._positions[key] = position

    def __len__(self) -> int:
        return len(self.columns)

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def position_of(self, column_name: str) -> int:
        try:
            return self._positions[column_name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {column_name!r}"
            ) from None

    def type_of(self, column_name: str) -> SqlType:
        return self.columns[self.position_of(column_name)].sql_type


class StoredTable(Protocol):
    """Interface both storage backends implement (structural typing)."""

    schema: TableSchema
    cluster_keys: tuple[str, ...]
    compact_threshold: float
    compactions: int

    @property
    def num_rows(self) -> int: ...

    def insert_rows(self, rows: Iterable[tuple]) -> int: ...

    def delete_rows(self, column_name: str, values: Iterable) -> int: ...

    def compact(self) -> None: ...

    def create_index(self, column_name: str) -> None: ...

    def has_index(self, column_name: str) -> bool: ...

    def storage_bytes(self) -> int: ...


class Catalog:
    """Name -> stored-table registry."""

    def __init__(self) -> None:
        self._tables: dict[str, StoredTable] = {}

    def register(self, table: StoredTable) -> None:
        key = table.schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.schema.name!r} already exists")
        self._tables[key] = table

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[key]

    def get(self, name: str) -> StoredTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def exists(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return [table.schema.name for table in self._tables.values()]
