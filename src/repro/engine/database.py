"""Embedded database facade.

``Database`` is the single entry point BLEND uses for its in-database
execution: it owns a catalog of stored tables (row- or column-oriented,
selected per database), parses and plans SQL, and dispatches to the
matching executor. The two backends mirror the paper's deployment on
PostgreSQL (row store) and a commercial column store.

Example
-------
>>> db = Database(backend="column")
>>> db.create_table("t", [("a", "integer"), ("b", "text")])
>>> db.insert("t", [(1, "x"), (2, "y"), (2, "z")])
3
>>> db.execute("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a").rows
[(1, 1), (2, 2)]
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..errors import CatalogError, EngineError
from .sql import ast
from .sql.executor_column import Batch, ColumnExecutor
from .sql.executor_row import QueryStats, RowExecutor
from .sql.parser import parse
from .sql.planner import (
    PlanNode,
    TableResolver,
    param_shapes,
    plan_select,
    rebind_plan,
)
from .storage.catalog import Catalog, ColumnDef, TableSchema
from .storage.column_store import ColumnTable
from .storage.row_store import RowTable
from .types import SqlType

BACKENDS = ("row", "column")


@dataclass
class ResultSet:
    """Query result: ordered column names plus row tuples."""

    columns: list[str]
    rows: list[tuple]
    stats: QueryStats = field(default_factory=QueryStats)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise EngineError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, index: int = 0) -> list[Any]:
        """All values of one output column."""
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


@functools.lru_cache(maxsize=512)
def _parse_cached(sql: str) -> ast.Select:
    """AST cache -- seeker SQL templates repeat across executions with only
    parameters changing, so parsing is amortised away."""
    return parse(sql)


class Database:
    """An embedded single-process database with pluggable storage layout.

    ``execute`` keeps an LRU **plan cache** keyed on ``(sql, backend,
    parameter shapes)``: repeated statements (the four seeker templates,
    notably) are planned once and merely *rebound* to fresh parameter
    values on later calls. Hit counters are exposed via
    :meth:`plan_cache_stats` and per-query on ``ResultSet.stats``.
    """

    PLAN_CACHE_SIZE = 256

    def __init__(self, backend: str = "column") -> None:
        if backend not in BACKENDS:
            raise EngineError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.backend = backend
        self._catalog = Catalog()
        self.last_stats = QueryStats()
        self._plan_cache: OrderedDict[tuple, PlanNode] = OrderedDict()
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0

    # -- schema ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, Union[str, SqlType]]],
    ) -> None:
        """Create a table. *columns* is a list of (name, type) pairs where
        type is a :class:`SqlType` or a SQL type name string."""
        defs = [
            ColumnDef(col_name, t if isinstance(t, SqlType) else SqlType.from_name(t))
            for col_name, t in columns
        ]
        schema = TableSchema(name, defs)
        if self.backend == "row":
            self._catalog.register(RowTable(schema))
        else:
            self._catalog.register(ColumnTable(schema))
        self._invalidate_plans()

    def drop_table(self, name: str) -> None:
        self._catalog.drop(name)
        self._invalidate_plans()

    def has_table(self, name: str) -> bool:
        return self._catalog.exists(name)

    def table_names(self) -> list[str]:
        return self._catalog.table_names()

    def table(self, name: str):
        """The underlying storage object (RowTable / ColumnTable)."""
        return self._catalog.get(name)

    def create_index(self, table_name: str, column_name: str) -> None:
        """Create a hash index (idempotent), e.g. BLEND's two in-database
        indexes on ``AllTables(CellValue)`` and ``AllTables(TableId)``."""
        self._catalog.get(table_name).create_index(column_name)

    # -- data ---------------------------------------------------------------------

    def insert(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows added."""
        return self._catalog.get(table_name).insert_rows(rows)

    def insert_columns(self, table_name: str, columns: Sequence[tuple]) -> int:
        """Typed bulk-append: *columns* is one ``(data, null_mask)`` pair
        per schema column (``null_mask`` may be ``None``). Bypasses the
        per-cell coercion of :meth:`insert` -- the vectorised ``AllTables``
        ingest path. Returns the number of rows appended."""
        return self._catalog.get(table_name).insert_columns(columns)

    def num_rows(self, table_name: str) -> int:
        return self._catalog.get(table_name).num_rows

    def storage_bytes(self, table_name: Optional[str] = None) -> int:
        """Approximate resident bytes of one table or the whole database."""
        if table_name is not None:
            return self._catalog.get(table_name).storage_bytes()
        return sum(
            self._catalog.get(name).storage_bytes() for name in self._catalog.table_names()
        )

    # -- querying ------------------------------------------------------------------

    def plan(self, sql: str, params: Optional[Mapping[str, Any]] = None) -> PlanNode:
        """Parse and plan *sql* without executing (used by tests and the
        optimizer's cost introspection)."""
        select = _parse_cached(sql)
        resolver = TableResolver(lambda name: self._column_names(name))
        return plan_select(select, resolver, params)

    def execute(self, sql: str, params: Optional[Mapping[str, Any]] = None) -> ResultSet:
        """Run a SELECT and return its result set.

        ``params`` binds ``:name`` placeholders; sequence-valued parameters
        may appear in ``IN`` lists (this is how BLEND passes query columns
        and rewritten intermediate results). Plans come from the LRU plan
        cache when the (sql, backend, parameter-shape) key has been seen
        before; only parameter values are rebound.
        """
        plan, cache_hit = self._cached_plan(sql, params)
        stats = QueryStats()
        stats.plan_cache_hit = cache_hit
        if self.backend == "row":
            executor = RowExecutor(self._catalog, params, stats)
            rows = executor.execute(plan)
        else:
            executor = ColumnExecutor(self._catalog, params, stats)
            batch = executor.execute(plan)
            rows = batch.to_rows()
        self.last_stats = stats
        return ResultSet(columns=plan.schema.names(), rows=rows, stats=stats)

    def plan_cache_stats(self) -> dict[str, int]:
        """Plan-cache effectiveness counters (hits / misses / entries)."""
        return {
            "hits": self._plan_cache_hits,
            "misses": self._plan_cache_misses,
            "size": len(self._plan_cache),
        }

    # -- internals --------------------------------------------------------------------

    def _cached_plan(
        self, sql: str, params: Optional[Mapping[str, Any]]
    ) -> tuple[PlanNode, bool]:
        """The cached plan for (sql, backend, param shapes), rebound to
        *params* -- or a freshly planned (and cached) one."""
        key = (sql, self.backend, param_shapes(params))
        plan = self._plan_cache.get(key)
        if plan is not None:
            self._plan_cache.move_to_end(key)
            self._plan_cache_hits += 1
            rebind_plan(plan, params)
            return plan, True
        plan = self.plan(sql, params)
        self._plan_cache_misses += 1
        self._plan_cache[key] = plan
        if len(self._plan_cache) > self.PLAN_CACHE_SIZE:
            self._plan_cache.popitem(last=False)
        return plan, False

    def _invalidate_plans(self) -> None:
        """Schema changed: cached plans may embed stale column layouts."""
        self._plan_cache.clear()

    def _column_names(self, table_name: str) -> list[str]:
        if table_name == "__dual__":
            return []
        return self._catalog.get(table_name).schema.column_names()
